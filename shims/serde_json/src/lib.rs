//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`], over the value
//! tree of the vendored `serde` shim.
//!
//! The emitted text is plain JSON. Object keys keep insertion order, so
//! repeated serializations of equal data are byte-identical — the
//! determinism guarantee the scheduler reports rely on. Floats print via
//! Rust's shortest-round-trip `Display`, integers as integers; `NaN` and
//! infinities are rejected (JSON has no encoding for them).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .or_else(|| text.parse::<f64>().ok().map(Value::F64))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let value = vec![(1u64, -2i64), (3, 4)];
        let compact = to_string(&value).unwrap();
        assert_eq!(compact, "[[1,-2],[3,4]]");
        let back: Vec<(u64, i64)> = from_str(&compact).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, i64)> = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "say \"hi\"\nüñî".to_owned();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let uni: String = from_str(r#""Aé""#).unwrap();
        assert_eq!(uni, "Aé");
    }

    #[test]
    fn floats_survive() {
        let xs = vec![1.0f64, -0.25, 633.4, 1e-9];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("nul").is_err());
    }
}
