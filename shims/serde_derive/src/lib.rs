//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` shim.
//!
//! This environment has no access to crates.io, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be used. This macro
//! parses the item's token stream directly and emits impls of the shim's
//! value-tree traits (`serde::Serialize::serialize(&self) -> Value` and
//! `serde::Deserialize::deserialize(&Value) -> Result<Self, DeError>`).
//!
//! Supported shapes — everything this workspace derives on:
//! - structs with named fields,
//! - tuple structs (including `#[serde(transparent)]` newtypes),
//! - unit structs,
//! - enums with unit, named-field, newtype and tuple variants
//!   (externally tagged, matching serde's default representation).
//!
//! Generic items are intentionally unsupported and produce a compile
//! error; the workspace does not serialize any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` trait. Honors `#[serde(transparent)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the shim's `Deserialize` trait. Honors `#[serde(transparent)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments, #[serde(...)], #[repr(...)], ...).
    while i + 1 < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let TokenTree::Group(g) = &tokens[i + 1] {
                    if attr_is_serde_transparent(g.stream()) {
                        transparent = true;
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }

    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemKind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum {name} has no body"),
        },
        other => panic!("serde shim derive supports struct/enum, got `{other}`"),
    };

    Item {
        name,
        transparent,
        kind,
    }
}

fn attr_is_serde_transparent(stream: TokenStream) -> bool {
    let inner: Vec<TokenTree> = stream.into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "transparent"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => *i += 2,
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Consumes tokens up to (and including) the next comma that sits outside
/// any `<...>` nesting. Delimited groups are single tokens, so only angle
/// brackets need explicit depth tracking.
fn skip_past_toplevel_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        // Skip the `:` and the type, up to the field separator.
        skip_past_toplevel_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_past_toplevel_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        skip_past_toplevel_comma(&tokens, &mut i);
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!("::serde::Serialize::serialize(&self.{})", fields[0])
            } else {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    s.push_str(&format!(
                        "fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(fields)");
                s
            }
        }
        ItemKind::TupleStruct(len) => {
            if item.transparent && *len == 1 {
                "::serde::Serialize::serialize(&self.0)".to_owned()
            } else {
                let elems: Vec<String> = (0..*len)
                    .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_owned(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(::std::string::String::from(\
                             \"{vname}\"), ::serde::Value::Object(inner))])\n}}\n"
                        ));
                    }
                    VariantFields::Tuple(len) => {
                        let bindings: Vec<String> = (0..*len).map(|k| format!("f{k}")).collect();
                        let inner = if *len == 1 {
                            "::serde::Serialize::serialize(f0)".to_owned()
                        } else {
                            let elems: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::deserialize(v)? }})",
                    fields[0]
                )
            } else {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::get_field(obj, \
                         \"{f}\"))?,\n"
                    ));
                }
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
                     \"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
        }
        ItemKind::TupleStruct(len) => {
            if item.transparent && *len == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
            } else {
                let elems: Vec<String> = (0..*len)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::deserialize(arr.get({k}).unwrap_or(\
                             &::serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "let arr = v.as_array().ok_or_else(|| ::serde::DeError::new(\
                     \"expected array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::get_field(\
                                 obj, \"{f}\"))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let obj = inner.as_object().ok_or_else(|| ::serde::DeError::new(\
                             \"expected object for {name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n"
                        ));
                    }
                    VariantFields::Tuple(len) => {
                        if *len == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::deserialize(inner)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*len)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::deserialize(arr.get({k})\
                                         .unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected array for \
                                 {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                                elems.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{\n{body}\n}}\n}}\n"
    )
}
