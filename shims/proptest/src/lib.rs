//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the `proptest!` test modules
//! source-compatible: range strategies, `any::<T>()`,
//! `prop::collection::vec`, tuple strategies, `prop_assert*!` and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for this environment:
//!
//! - **Deterministic sampling**: each test's RNG is seeded from a hash of
//!   the test's name, so runs are reproducible and CI is stable. There is
//!   no `PROPTEST_*` environment handling and no persistence; the
//!   `*.proptest-regressions` files in the tree are ignored.
//! - **No shrinking**: a failing case reports its inputs but is not
//!   minimized.
//! - Default case count is 64 (the real crate's 256 is dominated by
//!   simulator runtime here; tests that need fewer set
//!   `with_cases` explicitly, as before).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// The deterministic RNG driving sampling: SplitMix64 seeded from a hash
/// of the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound == 0` means the full 2^64
    /// domain. Lemire rejection keeps it unbiased.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let m = u128::from(r) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Produces one random value per case. (The real crate's `Strategy` also
/// shrinks; this shim only samples.)
pub trait Strategy {
    /// The type of the values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.below(span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                // Span may be the full 2^64 domain, which `below` encodes as 0.
                let span =
                    (*self.end() as i128 - *self.start() as i128 + 1) as u128 as u64;
                let offset = rng.below(span);
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Whole-domain uniform sampling, for [`any`].
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing any value of `T`, uniformly.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies, `[lo, hi]` inclusive.
    /// Plain integer ranges convert, as in the real crate, so
    /// `vec(elem, 1..200)` works with an unsuffixed (i32) literal.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    macro_rules! impl_size_range_from {
        ($($t:ty),*) => {$(
            impl From<Range<$t>> for SizeRange {
                fn from(r: Range<$t>) -> Self {
                    assert!(r.start < r.end, "empty length range");
                    SizeRange { lo: r.start as usize, hi: (r.end - 1) as usize }
                }
            }
            impl From<RangeInclusive<$t>> for SizeRange {
                fn from(r: RangeInclusive<$t>) -> Self {
                    assert!(r.start() <= r.end(), "empty length range");
                    SizeRange { lo: *r.start() as usize, hi: *r.end() as usize }
                }
            }
        )*};
    }

    impl_size_range_from!(i32, u32, u64, usize);

    /// A strategy for `Vec`s with sampled length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    /// A `Vec` strategy: length drawn uniformly from `length`, elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.length.hi - self.length.lo) as u64 + 1;
            let len = self.length.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the test modules import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Declares property tests. Source-compatible with the real crate's
/// macro for the forms used in this workspace:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            described,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1usize..=8).sample(&mut rng);
            assert!((1..=8).contains(&y));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let s = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = prop::collection::vec(0u64..4, 2..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 100);
        }
    }
}
