//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `serde`
//! cannot be fetched. This shim keeps the workspace's source unchanged —
//! `use serde::{Serialize, Deserialize}` and the derive attributes work
//! as before — by routing everything through an owned JSON-like value
//! tree ([`Value`]) instead of serde's visitor machinery:
//!
//! - [`Serialize`] renders a type into a [`Value`],
//! - [`Deserialize`] rebuilds a type from a [`Value`],
//! - the derive macros (from the sibling `serde_derive` shim) implement
//!   both for structs and enums, honoring `#[serde(transparent)]` and
//!   serde's default externally-tagged enum representation.
//!
//! The `serde_json` shim provides the text encoding on top of this.
//!
//! Object fields preserve insertion order (a `Vec` of pairs, not a map),
//! so serialized output is deterministic — a property the scheduler's
//! byte-identical-reports guarantee relies on.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the serialization intermediate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives parse as [`Value::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

/// Looks up `name` in an object's entries, yielding `Null` when absent
/// (so `Option` fields deserialize to `None`, as with real serde).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL_VALUE)
}

/// Deserialization failure: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`]. The derive macro implements this for
/// structs and enums; primitives and containers are implemented here.
pub trait Serialize {
    /// The value-tree rendering of `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v`, with a descriptive error on shape mismatch.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// Identity conversions, so callers can work with raw value trees (e.g.
// schema validators parsing arbitrary JSON documents).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide = match *v {
                    Value::U64(u) => u,
                    Value::I64(i) if i >= 0 => i as u64,
                    _ => {
                        return Err(DeError::new(concat!(
                            "expected unsigned integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 {
                    Value::U64(wide as u64)
                } else {
                    Value::I64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::U64(u) => i64::try_from(u).map_err(|_| {
                        DeError::new(concat!("integer out of range for ", stringify!($t)))
                    })?,
                    Value::I64(i) => i,
                    _ => {
                        return Err(DeError::new(concat!(
                            "expected integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    DeError::new(concat!("expected number for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object for map"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected array for tuple"))?;
                Ok(($($name::deserialize(arr.get($idx).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u64.serialize(), Value::U64(42));
        assert_eq!((-3i64).serialize(), Value::I64(-3));
        assert_eq!(u64::deserialize(&Value::U64(7)), Ok(7));
        assert_eq!(i32::deserialize(&Value::I64(-9)), Ok(-9));
        assert_eq!(f64::deserialize(&Value::U64(3)), Ok(3.0));
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3].serialize();
        assert_eq!(Vec::<u64>::deserialize(&v).unwrap(), vec![1, 2, 3]);
        let t = (1u64, -2i64).serialize();
        assert_eq!(<(u64, i64)>::deserialize(&t).unwrap(), (1, -2));
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Some(5u64).serialize(), Value::U64(5));
    }

    #[test]
    fn missing_fields_read_as_null() {
        let obj = vec![("a".to_owned(), Value::U64(1))];
        assert_eq!(get_field(&obj, "a"), &Value::U64(1));
        assert_eq!(get_field(&obj, "b"), &Value::Null);
    }
}
