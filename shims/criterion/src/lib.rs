//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the bench targets source-compatible
//! (`benchmark_group`, `sample_size`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) and reports simple
//! wall-clock statistics instead of criterion's full analysis: each
//! benchmark runs `sample_size` timed samples after a short warm-up and
//! prints min/mean/max per iteration.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A fresh instance (the `criterion_main!` harness builds one).
    pub fn new() -> Self {
        Criterion { _private: () }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_samples(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (statistics were printed per benchmark).
    pub fn finish(self) {}
}

fn run_samples<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // One untimed warm-up sample so lazy initialization (caches, page
    // faults) doesn't land in the measurements.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);

    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
    }
    if per_iter.is_empty() {
        println!("  {label}: no iterations recorded");
        return;
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {label}: min {} / mean {} / max {}  ({} samples)",
        format_secs(min),
        format_secs(mean),
        format_secs(max),
        per_iter.len()
    );
}

fn format_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` once, accumulating its wall-clock time into this sample.
    /// (The real criterion chooses iteration counts adaptively; one
    /// iteration per sample is enough for the millisecond-scale
    /// simulator runs benchmarked here.)
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(param)) => write!(f, "{func}/{param}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(param)) => write!(f, "{param}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Bundles benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_closures() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("base").to_string(), "base");
    }
}
