//! # mpsoc
//!
//! Meta-crate for the `mpsoc-offload` workspace: a from-scratch Rust
//! reproduction of *"Optimizing Offload Performance in Heterogeneous
//! MPSoCs"* (Colagrande & Benini, DATE 2024).
//!
//! This crate simply re-exports the public API of every workspace member
//! under one roof so that examples and downstream users can depend on a
//! single crate:
//!
//! - [`sim`]: deterministic discrete-event simulation kernel,
//! - [`mem`]: main memory and banked TCDM models,
//! - [`noc`]: host-to-cluster interconnect with the multicast extension,
//! - [`isa`]: micro-op ISA and in-order accelerator core timing model,
//! - [`soc`]: the assembled Manticore-class heterogeneous MPSoC,
//! - [`kernels`]: the data-parallel kernel zoo and golden references,
//! - [`offload`]: the paper's contribution — co-designed offload runtime,
//!   analytic runtime model (Eq. 1), MAPE validation (Eq. 2) and offload
//!   decision solver (Eq. 3),
//! - [`lint`]: static verifier for offload programs and job descriptors
//!   — dataflow, SSR-protocol and address-interval checks with stable
//!   diagnostic codes,
//! - [`sched`]: multi-tenant offload scheduling on top of the decision
//!   model — admission control (optionally lint-gated), spatial
//!   partitioning, pluggable policies and a deterministic discrete-event
//!   engine,
//! - [`serve`]: the sharded serving front-end — binary job protocol,
//!   deterministic session daemon, load-balanced shard fleet with work
//!   stealing, and fleet SLO telemetry,
//! - [`telemetry`]: typed-event traces, per-phase cycle attribution with
//!   Eq. 1 residual audits, and Chrome trace-event (Perfetto) export.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete offload round-trip, or run:
//!
//! ```text
//! cargo run --example quickstart
//! ```

pub use mpsoc_isa as isa;
pub use mpsoc_kernels as kernels;
pub use mpsoc_lint as lint;
pub use mpsoc_mem as mem;
pub use mpsoc_noc as noc;
pub use mpsoc_offload as offload;
pub use mpsoc_sched as sched;
pub use mpsoc_serve as serve;
pub use mpsoc_sim as sim;
pub use mpsoc_soc as soc;
pub use mpsoc_telemetry as telemetry;
