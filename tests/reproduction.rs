//! End-to-end reproduction smoke tests: the paper's qualitative claims,
//! asserted on the full 32-cluster calibrated SoC.

use mpsoc::offload::decision::min_clusters;
use mpsoc::offload::{mape, OffloadStrategy, RuntimeModel};
use mpsoc_bench::{Harness, MAPE_N, PAPER_M};

#[test]
fn headline_speedup_improvement_matches_the_paper() {
    let mut harness = Harness::new().expect("harness");
    let h = harness.headline().expect("headline");
    // Paper: 47.9% at N=1024, M=32. Absolute numbers need not match, but
    // the factor should be in the same ballpark.
    assert!(
        (40.0..=55.0).contains(&h.improvement_pct),
        "improvement {:.1}% out of the expected band",
        h.improvement_pct
    );
    // Paper: "more than 300 cycles difference in the 32-clusters
    // configuration".
    assert!(
        h.gap_cycles > 250,
        "gap {} cycles, expected the paper's >300-cycle ballpark",
        h.gap_cycles
    );
}

#[test]
fn fig1_left_shapes_hold() {
    let mut harness = Harness::new().expect("harness");
    let rows = harness.fig1_left().expect("fig1_left");

    // Extended runtime decreases monotonically through M=32.
    assert!(
        rows.windows(2).all(|w| w[1].extended <= w[0].extended),
        "extended runtime must decrease with more clusters"
    );

    // Baseline has an interior global minimum: better than both ends.
    let min = rows.iter().min_by_key(|r| r.baseline).expect("rows");
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    assert!(
        min.m > first.m && min.m < last.m,
        "baseline minimum must be interior"
    );
    assert!(
        last.baseline > min.baseline,
        "baseline overhead must dominate at M=32"
    );

    // Extended wins at every cluster count.
    for r in &rows {
        assert!(r.extended < r.baseline, "extended must win at M={}", r.m);
    }
}

#[test]
fn fig1_right_shapes_hold() {
    let mut harness = Harness::new().expect("harness");
    let rows = harness.fig1_right().expect("fig1_right");

    // Speedup strictly above 1 everywhere.
    assert!(rows.iter().all(|r| r.speedup > 1.0));

    // For fixed M, speedup decreases with N (small tolerance for the
    // baseline's polling quantization).
    for &m in &PAPER_M {
        let series: Vec<f64> = rows
            .iter()
            .filter(|r| r.m == m)
            .map(|r| r.speedup)
            .collect();
        assert!(
            series.windows(2).all(|w| w[1] <= w[0] + 0.02),
            "speedup must decrease with N at M={m}: {series:?}"
        );
    }

    // The largest speedup is at the smallest N and the largest M.
    let max = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("rows");
    assert_eq!((max.n, max.m), (1024, 32));
}

#[test]
fn eq1_fit_recovers_the_papers_structure() {
    let mut harness = Harness::new().expect("harness");
    let fit = harness.model_fit().expect("fit");
    // The constant lands near the paper's 367 cycles...
    assert!(
        (fit.fitted.c0 - 367.0).abs() < 25.0,
        "constant {} too far from 367",
        fit.fitted.c0
    );
    // ...the serial data term near N/4...
    assert!(
        (fit.fitted.c_mem - 0.25).abs() < 0.01,
        "c_mem {} too far from 0.25",
        fit.fitted.c_mem
    );
    // ...and the parallel term is positive and dominates c_mem/M scaling.
    assert!(fit.fitted.c_comp > 0.2);
    assert!(fit.r_squared > 0.999, "fit r² {}", fit.r_squared);
}

#[test]
fn eq2_mape_below_one_percent_out_of_sample() {
    let mut harness = Harness::new().expect("harness");
    let (_, rows) = harness.mape_table().expect("mape");
    assert_eq!(rows.len(), MAPE_N.len());
    for row in rows {
        assert!(
            row.mape_pct < 1.0,
            "MAPE {}% at N={} (paper: consistently below 1%)",
            row.mape_pct,
            row.n
        );
    }
}

#[test]
fn eq3_decisions_are_confirmed_by_simulation() {
    let mut harness = Harness::new().expect("harness");
    let (_, rows) = harness.decision_table(1.0).expect("decision");
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(
            row.confirmed,
            "decision at N={} t_max={:.0} not confirmed: {row:?}",
            row.n, row.t_max
        );
    }
}

#[test]
fn paper_eq3_closed_form_agrees_with_solver() {
    // Sanity: the generic inversion with the paper's coefficients equals
    // the paper's printed closed form.
    let model = RuntimeModel::paper();
    let n = 1024u64;
    let t_max = 700.0;
    let m = min_clusters(&model, n, t_max).expect("feasible");
    let closed_form = ((2.6 * n as f64) / (8.0 * (t_max - 367.0 - n as f64 / 4.0))).ceil();
    assert_eq!(m, closed_form as u64);
}

#[test]
fn ablation_each_ingredient_helps_at_scale() {
    let mut harness = Harness::new().expect("harness");
    let rows = harness.ablation().expect("ablation");
    let at32 = |s: &str| {
        rows.iter()
            .find(|r| r.strategy == s && r.m == 32)
            .expect("grid")
            .cycles
    };
    let base = at32("sequential+software-barrier");
    let mc = at32("multicast+software-barrier");
    let credit = at32("sequential+credit-counter");
    let both = at32("multicast+credit-counter");
    // Multicast helps under either sync scheme.
    assert!(
        mc < base,
        "multicast must help under the barrier: {mc} !< {base}"
    );
    assert!(
        both < credit,
        "multicast must help under the credit counter"
    );
    // The credit counter helps once completions arrive together
    // (i.e. with multicast dispatch); with sequential dispatch the
    // completions are staggered anyway, so its benefit there is within
    // polling noise — a genuine co-design interaction.
    assert!(
        both < mc,
        "credit counter must help under multicast: {both} !< {mc}"
    );
    assert!(
        both < mc && both < credit && both < base,
        "the combination must be the best configuration"
    );
}

#[test]
fn model_validation_against_perfect_synthetic_data_is_exact() {
    // Meta-check of the Eq. 2 implementation itself.
    let model = RuntimeModel::paper();
    let samples: Vec<_> = PAPER_M
        .iter()
        .map(|&m| mpsoc::offload::Sample {
            m: m as u64,
            n: 512,
            cycles: model.predict(m as u64, 512),
        })
        .collect();
    assert!(mape(&model, &samples) < 1e-12);
}

#[test]
fn strategies_do_not_change_results_only_timing() {
    let mut harness = Harness::new().expect("harness");
    let base = harness
        .measure_daxpy(777, 32, OffloadStrategy::baseline())
        .expect("baseline");
    let ext = harness
        .measure_daxpy(777, 32, OffloadStrategy::extended())
        .expect("extended");
    // measure_daxpy verifies numerics internally (debug_assert); here we
    // only check the timing relation for an awkward (non-divisible) N.
    assert!(ext < base);
}
