//! Cross-crate correctness: every kernel × strategy × geometry offload
//! must produce results identical to the golden references.

use mpsoc::kernels::{Axpby, Daxpy, Dot, Kernel, Memset, Scale, Sum, VecAdd};
use mpsoc::offload::{OffloadStrategy, Offloader};
use mpsoc::sim::rng::SplitMix64;
use mpsoc::soc::SocConfig;

fn operands(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    rng.fill_f64(&mut x, -8.0, 8.0);
    rng.fill_f64(&mut y, -8.0, 8.0);
    (x, y)
}

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Daxpy::new(2.5)),
        Box::new(Axpby::new(-1.0, 0.5)),
        Box::new(Scale::new(7.0)),
        Box::new(VecAdd::new()),
        Box::new(Memset::new(-3.25)),
        Box::new(Dot::new()),
        Box::new(Sum::new()),
    ]
}

#[test]
fn every_kernel_and_strategy_verifies_on_the_full_soc() {
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    let (x, y) = operands(1024, 1);
    for kernel in zoo() {
        for strategy in OffloadStrategy::all() {
            let run = off
                .offload(kernel.as_ref(), &x, &y, 32, strategy)
                .unwrap_or_else(|e| panic!("{} under {strategy}: {e}", kernel.name()));
            let report = run.verify(kernel.as_ref(), &x, &y);
            assert!(
                report.passed(),
                "{} under {strategy}: {report}",
                kernel.name()
            );
        }
    }
}

#[test]
fn awkward_sizes_and_cluster_counts_verify() {
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    let kernel = Daxpy::new(0.125);
    // Deliberately awkward: primes, off-by-ones, non-powers of two.
    for &n in &[1usize, 2, 9, 10, 11, 17, 63, 64, 65, 241, 1000, 1021, 2047] {
        for &m in &[1usize, 3, 5, 7, 12, 31, 32] {
            let (x, y) = operands(n, (n * 1000 + m) as u64);
            let run = off
                .offload(&kernel, &x, &y, m, OffloadStrategy::extended())
                .unwrap_or_else(|e| panic!("n={n} m={m}: {e}"));
            let report = run.verify(&kernel, &x, &y);
            assert!(report.passed(), "n={n} m={m}: {report}");
        }
    }
}

#[test]
fn special_values_round_trip() {
    // Negative zero, subnormals, infinities and huge magnitudes survive
    // the DMA + FPU path bit-exactly where the reference does.
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    let kernel = VecAdd::new();
    let x = vec![
        0.0,
        -0.0,
        f64::MIN_POSITIVE / 2.0,
        1e300,
        -1e300,
        1.5,
        f64::INFINITY,
        42.0,
    ];
    let y = vec![1.0, 2.0, 0.0, 1e300, 1e300, -1.5, 1.0, -42.0];
    let run = off
        .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
        .expect("offload");
    let report = run.verify(&kernel, &x, &y);
    assert!(report.passed(), "{report}");
}

#[test]
fn reductions_match_within_reassociation_tolerance() {
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    let (x, y) = operands(4096, 7);
    for m in [1usize, 8, 32] {
        let dot = Dot::new();
        let run = off
            .offload(&dot, &x, &y, m, OffloadStrategy::extended())
            .expect("offload");
        assert!(run.verify(&dot, &x, &y).passed(), "dot m={m}");
        let sum = Sum::new();
        let run = off
            .offload(&sum, &x, &y, m, OffloadStrategy::extended())
            .expect("offload");
        assert!(run.verify(&sum, &x, &y).passed(), "sum m={m}");
    }
}

#[test]
fn small_soc_geometries_work() {
    // 1 cluster and 2 clusters with a reduced core count.
    for clusters in [1usize, 2] {
        let mut cfg = SocConfig::with_clusters(clusters);
        cfg.cores_per_cluster = 4;
        let mut off = Offloader::new(cfg).expect("soc");
        let kernel = Daxpy::new(1.0);
        let (x, y) = operands(100, 5);
        let run = off
            .offload(&kernel, &x, &y, clusters, OffloadStrategy::extended())
            .expect("offload");
        assert!(run.verify(&kernel, &x, &y).passed());
    }
}

#[test]
fn gemv_round_trips_through_the_full_stack() {
    use mpsoc::kernels::Gemv;
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    for k in [1usize, 3, 8] {
        let kernel = Gemv::new((0..k).map(|j| 1.0 + j as f64 * 0.5).collect());
        let n = 257usize;
        let (a_flat, _) = operands(n * k, (n * k) as u64);
        let y = vec![0.0; n];
        for m in [1usize, 7, 32] {
            let run = off
                .offload(&kernel, &a_flat, &y, m, OffloadStrategy::extended())
                .unwrap_or_else(|e| panic!("gemv k={k} m={m}: {e}"));
            let report = run.verify(&kernel, &a_flat, &y);
            assert!(report.passed(), "gemv k={k} m={m}: {report}");
        }
    }
}

#[test]
fn gemv_rejects_misshapen_matrices() {
    use mpsoc::kernels::Gemv;
    use mpsoc::offload::OffloadError;
    let mut off = Offloader::new(SocConfig::with_clusters(2)).expect("soc");
    let kernel = Gemv::new(vec![1.0, 2.0]);
    // 10 outputs require 20 matrix words; give 10.
    let (x, y) = operands(10, 1);
    assert!(matches!(
        off.offload(&kernel, &x, &y, 2, OffloadStrategy::extended()),
        Err(OffloadError::OperandMismatch { .. })
    ));
}

#[test]
fn masked_offloads_use_exactly_the_selected_clusters() {
    use mpsoc::noc::ClusterMask;
    let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
    let kernel = Daxpy::new(1.5);
    let (x, y) = operands(512, 21);
    // Upper half of the machine only.
    let mask: ClusterMask = [4usize, 5, 6, 7].into_iter().collect();
    let run = off
        .offload_to(&kernel, &x, &y, mask, OffloadStrategy::extended())
        .expect("offload");
    assert!(run.verify(&kernel, &x, &y).passed());
    assert_eq!(run.m, 4);
    let used: Vec<usize> = run.outcome.clusters.iter().map(|&(c, _)| c).collect();
    assert_eq!(used, vec![4, 5, 6, 7]);

    // A mask has the same cost as the same-sized prefix (symmetric SoC).
    let prefix = off
        .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
        .expect("offload");
    assert_eq!(run.cycles(), prefix.cycles());
}

#[test]
fn masked_offload_rejects_out_of_range_clusters() {
    use mpsoc::noc::ClusterMask;
    use mpsoc::offload::OffloadError;
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    let kernel = Daxpy::new(1.0);
    let (x, y) = operands(64, 2);
    assert!(matches!(
        off.offload_to(
            &kernel,
            &x,
            &y,
            ClusterMask::single(5),
            OffloadStrategy::extended()
        ),
        Err(OffloadError::TooManyClusters { .. })
    ));
    assert!(matches!(
        off.offload_to(
            &kernel,
            &x,
            &y,
            ClusterMask::EMPTY,
            OffloadStrategy::extended()
        ),
        Err(OffloadError::NoClusters)
    ));
}

#[test]
fn stencil_halos_cross_cluster_boundaries_correctly() {
    use mpsoc::kernels::Stencil3;
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    let kernel = Stencil3::new(0.25, 0.5, 0.25);
    // Sizes that put cluster boundaries in awkward places.
    for &n in &[1usize, 2, 3, 33, 256, 1000] {
        for &m in &[1usize, 2, 7, 32] {
            let (x, _) = operands(n, (n * 31 + m) as u64);
            let y = vec![0.0; n];
            let run = off
                .offload(&kernel, &x, &y, m, OffloadStrategy::extended())
                .unwrap_or_else(|e| panic!("stencil n={n} m={m}: {e}"));
            let report = run.verify(&kernel, &x, &y);
            assert!(report.passed(), "stencil n={n} m={m}: {report}");
        }
    }
}

#[test]
fn stencil_halo_zero_fill_survives_stale_tcdm_data() {
    use mpsoc::kernels::{Memset, Stencil3};
    // Poison the TCDMs with a prior kernel whose data fills the same
    // regions, then check the stencil's edge halos still read zero.
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    let poison = Memset::new(777.0);
    let (xp, yp) = operands(512, 99);
    off.offload(&poison, &xp, &yp, 4, OffloadStrategy::extended())
        .expect("poison run");

    let kernel = Stencil3::new(1.0, 0.0, 1.0); // reads both neighbours only
    let (x, _) = operands(512, 100);
    let y = vec![0.0; 512];
    let run = off
        .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
        .expect("stencil run");
    let report = run.verify(&kernel, &x, &y);
    assert!(report.passed(), "{report}");
}

#[test]
fn stencil_runs_on_the_host_too() {
    use mpsoc::kernels::Stencil3;
    use mpsoc::offload::OffloadResult;
    let mut off = Offloader::new(SocConfig::with_clusters(2)).expect("soc");
    let kernel = Stencil3::new(0.5, 1.0, -0.5);
    let (x, _) = operands(200, 55);
    let y = vec![0.0; 200];
    let (cycles, result) = off.run_on_host(&kernel, &x, &y).expect("host run");
    assert!(cycles > 0);
    match (kernel.golden(&x, &y), result) {
        (mpsoc::kernels::GoldenOutput::Vector(want), OffloadResult::Vector(got)) => {
            assert_eq!(got, want);
        }
        _ => panic!("unexpected result shape"),
    }
}

#[test]
fn stencil_rejects_pipelining() {
    use mpsoc::kernels::Stencil3;
    use mpsoc::offload::OffloadError;
    let mut off = Offloader::new(SocConfig::with_clusters(2)).expect("soc");
    let (x, y) = operands(64, 3);
    let err = off
        .offload_pipelined(
            &Stencil3::new(1.0, 1.0, 1.0),
            &x,
            &y,
            2,
            OffloadStrategy::extended(),
            2,
        )
        .unwrap_err();
    assert!(matches!(err, OffloadError::PipelineUnsupported { .. }));
}

#[test]
fn host_execution_matches_goldens_and_is_slower_per_element() {
    use mpsoc::offload::OffloadResult;
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    for kernel in zoo() {
        let (x, y) = operands(300, 13);
        let (cycles, result) = off
            .run_on_host(kernel.as_ref(), &x, &y)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        assert!(cycles > 0);
        match (kernel.golden(&x, &y), result) {
            (mpsoc::kernels::GoldenOutput::Vector(want), OffloadResult::Vector(got)) => {
                assert_eq!(got, want, "{}", kernel.name());
            }
            (mpsoc::kernels::GoldenOutput::Scalar(want), OffloadResult::Scalar(got)) => {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{}",
                    kernel.name()
                );
            }
            _ => panic!("result shape mismatch for {}", kernel.name()),
        }
    }

    // The scalar host is meaningfully slower per element than a Snitch
    // worker: DAXPY at ~4 vs ~2.6 cycles/element.
    let kernel = Daxpy::new(2.0);
    let (x1, y1) = operands(1000, 14);
    let (t1000, _) = off.run_on_host(&kernel, &x1, &y1).expect("host run");
    let (x2, y2) = operands(2000, 14);
    let (t2000, _) = off.run_on_host(&kernel, &x2, &y2).expect("host run");
    let per_elem = (t2000 - t1000) as f64 / 1000.0;
    assert!(
        (3.2..5.5).contains(&per_elem),
        "host DAXPY marginal cost {per_elem} cycles/element out of band"
    );
}

#[test]
fn back_to_back_offloads_do_not_leak_state() {
    let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
    // Alternate kernels and strategies on one SoC; every result must
    // still verify and timing must be reproducible when repeated.
    let (x, y) = operands(512, 11);
    let mut first_pass = Vec::new();
    for round in 0..2 {
        for (i, kernel) in zoo().iter().enumerate() {
            let strategy = OffloadStrategy::all()[i % 4];
            let run = off
                .offload(kernel.as_ref(), &x, &y, 8, strategy)
                .expect("offload");
            assert!(run.verify(kernel.as_ref(), &x, &y).passed());
            if round == 0 {
                first_pass.push(run.cycles());
            } else {
                assert_eq!(
                    run.cycles(),
                    first_pass[i],
                    "timing must be reproducible across rounds for {}",
                    kernel.name()
                );
            }
        }
    }
}
