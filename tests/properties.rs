//! Property-based tests spanning the whole stack: random workloads
//! through the full offload pipeline, and algebraic invariants of the
//! model/decision layer.

use proptest::prelude::*;

use mpsoc::kernels::{Axpby, Daxpy, Dot, Kernel, Memset, Scale, Sum, VecAdd};
use mpsoc::noc::ClusterMask;
use mpsoc::offload::decision::{max_problem_size, min_clusters};
use mpsoc::offload::{OffloadStrategy, Offloader, RuntimeModel, Sample, SessionStep};
use mpsoc::sim::rng::SplitMix64;
use mpsoc::sim::Cycle;
use mpsoc::soc::SocConfig;

fn operands(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    rng.fill_f64(&mut x, -16.0, 16.0);
    rng.fill_f64(&mut y, -16.0, 16.0);
    (x, y)
}

fn kernel_by_index(i: u8) -> Box<dyn Kernel> {
    match i % 6 {
        0 => Box::new(Daxpy::new(1.75)),
        1 => Box::new(Axpby::new(-0.25, 2.0)),
        2 => Box::new(Scale::new(3.5)),
        3 => Box::new(VecAdd::new()),
        4 => Box::new(Dot::new()),
        _ => Box::new(Sum::new()),
    }
}

/// The concurrent-session contract: a *single* job routed through the
/// submit/advance path is cycle-identical to the legacy blocking
/// `offload` path — for every zoo kernel under every dispatch × sync
/// combination. This is what licenses `run_offload` (and every
/// fig1/eq1/eq2 artifact built on it) to be a thin wrapper over the
/// multi-tenant substrate.
#[test]
fn session_path_is_cycle_identical_to_blocking_path_for_the_zoo() {
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(Daxpy::new(1.75)),
        Box::new(Axpby::new(-0.25, 2.0)),
        Box::new(Scale::new(3.5)),
        Box::new(VecAdd::new()),
        Box::new(Memset::new(7.5)),
        Box::new(Dot::new()),
        Box::new(Sum::new()),
    ];
    let (x, y) = operands(257, 0xC0FFEE);
    for kernel in &kernels {
        for strategy in OffloadStrategy::all() {
            let mut legacy = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
            let want = legacy
                .offload(kernel.as_ref(), &x, &y, 4, strategy)
                .expect("blocking offload");

            let mut session = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
            session.begin_jobs();
            session
                .submit_at(
                    kernel.as_ref(),
                    &x,
                    &y,
                    ClusterMask::first(4),
                    strategy,
                    Cycle::ZERO,
                )
                .expect("submit");
            let got = loop {
                match session.advance_jobs(Cycle::MAX).expect("advance") {
                    SessionStep::Completed(t) => break t,
                    SessionStep::Horizon => continue,
                    SessionStep::Idle => panic!("session drained without a completion"),
                }
            };
            let tag = format!("{} {strategy}", kernel.name());
            assert_eq!(got.run.cycles(), want.cycles(), "total: {tag}");
            assert_eq!(got.run.outcome.phases, want.outcome.phases, "phases: {tag}");
            assert_eq!(
                got.run.outcome.host_busy_cycles, want.outcome.host_busy_cycles,
                "host busy: {tag}"
            );
            assert_eq!(got.run.result, want.result, "result: {tag}");
            assert_eq!(got.host_wait_cycles, 0, "solo tenant never queues: {tag}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random workload offloaded to any cluster count verifies
    /// against its golden reference, under both runtimes.
    #[test]
    fn random_offloads_always_verify(
        n in 1usize..700,
        m in 1usize..=8,
        kernel_idx in 0u8..6,
        seed in any::<u64>(),
    ) {
        let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
        let kernel = kernel_by_index(kernel_idx);
        let (x, y) = operands(n, seed);
        for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
            let run = off.offload(kernel.as_ref(), &x, &y, m, strategy).expect("offload");
            let report = run.verify(kernel.as_ref(), &x, &y);
            prop_assert!(report.passed(), "{} n={n} m={m} {strategy}: {report}", kernel.name());
        }
    }

    /// The extended runtime never meaningfully loses to the baseline:
    /// the baseline's completion detection is quantized by its polling
    /// period (~46 cycles), so a lucky poll can land within one period
    /// of the extended runtime — but never beat it by more than that.
    #[test]
    fn extended_never_meaningfully_loses(
        n in 64usize..1500,
        m in 1usize..=8,
    ) {
        let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
        let kernel = Daxpy::new(2.0);
        let (x, y) = operands(n, n as u64);
        let base = off.offload(&kernel, &x, &y, m, OffloadStrategy::baseline()).expect("offload");
        let ext = off.offload(&kernel, &x, &y, m, OffloadStrategy::extended()).expect("offload");
        let poll_period = 46;
        prop_assert!(ext.cycles() <= base.cycles() + poll_period,
            "extended {} > baseline {} + period at n={n} m={m}", ext.cycles(), base.cycles());
    }

    /// Model fitting recovers arbitrary (well-posed) coefficients from
    /// noiseless synthetic samples.
    #[test]
    fn fit_recovers_arbitrary_coefficients(
        c0 in 50.0f64..2000.0,
        c_mem in 0.01f64..2.0,
        c_comp in 0.01f64..4.0,
    ) {
        let truth = RuntimeModel { c0, c_mem, c_comp };
        let mut samples = Vec::new();
        for &n in &[128u64, 512, 2048] {
            for &m in &[1u64, 2, 4, 8, 16, 32] {
                samples.push(Sample { m, n, cycles: truth.predict(m, n) });
            }
        }
        let fit = RuntimeModel::fit(&samples).expect("fit");
        prop_assert!((fit.model.c0 - c0).abs() < 1e-4 * c0.max(1.0));
        prop_assert!((fit.model.c_mem - c_mem).abs() < 1e-6);
        prop_assert!((fit.model.c_comp - c_comp).abs() < 1e-6);
    }

    /// Eq. 3 minimality: the returned M meets the deadline and M−1 does
    /// not, for any well-posed model and feasible deadline.
    #[test]
    fn decision_is_minimal_and_feasible(
        c0 in 100.0f64..500.0,
        c_mem in 0.05f64..0.5,
        c_comp in 0.05f64..1.0,
        n in 64u64..8192,
        slack in 1.0f64..2000.0,
    ) {
        let model = RuntimeModel { c0, c_mem, c_comp };
        let t_max = c0 + c_mem * n as f64 + slack;
        let m = min_clusters(&model, n, t_max).expect("feasible by construction");
        prop_assert!(model.predict(m, n) <= t_max + 1e-6);
        if m > 1 {
            prop_assert!(model.predict(m - 1, n) > t_max);
        }
    }

    /// Inverting in N: the returned problem size meets the deadline and
    /// one more element does not.
    #[test]
    fn max_problem_size_is_tight(
        m in 1u64..=32,
        t_max in 500.0f64..10_000.0,
    ) {
        let model = RuntimeModel::paper();
        if let Some(n) = max_problem_size(&model, m, t_max) {
            prop_assert!(model.predict(m, n) <= t_max + 1e-6);
            prop_assert!(model.predict(m, n + 1) > t_max);
        }
    }

    /// Runtime is monotone: more clusters never slow the extended
    /// configuration down (fixed N, the paper's Fig. 1 left shape).
    #[test]
    fn extended_runtime_monotone_in_clusters(
        n in 256usize..2000,
    ) {
        let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
        let kernel = Daxpy::new(2.0);
        let (x, y) = operands(n, 3);
        let mut prev = u64::MAX;
        for m in [1usize, 2, 4, 8] {
            let run = off.offload(&kernel, &x, &y, m, OffloadStrategy::extended()).expect("offload");
            // Tolerance of a few cycles for DMA burst rounding.
            prop_assert!(run.cycles() <= prev.saturating_add(4),
                "n={n}: t({m}) = {} > t(prev) = {prev}", run.cycles());
            prev = run.cycles();
        }
    }
}
