//! Integration tests for the pipelined (double-buffered) offload
//! extension: correctness under overlap and the expected performance
//! shape.

use mpsoc::kernels::{Daxpy, Dot, Gemv, Scale};
use mpsoc::offload::{OffloadError, OffloadStrategy, Offloader};
use mpsoc::sim::rng::SplitMix64;
use mpsoc::soc::SocConfig;

fn operands(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    rng.fill_f64(&mut x, -5.0, 5.0);
    rng.fill_f64(&mut y, -5.0, 5.0);
    (x, y)
}

#[test]
fn pipelined_results_are_bit_exact_for_many_stage_counts() {
    let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
    let kernel = Daxpy::new(1.25);
    let (x, y) = operands(2048, 3);
    for stages in [1usize, 2, 3, 4, 7, 8] {
        let run = off
            .offload_pipelined(&kernel, &x, &y, 8, OffloadStrategy::extended(), stages)
            .unwrap_or_else(|e| panic!("stages={stages}: {e}"));
        let report = run.verify(&kernel, &x, &y);
        assert!(report.passed(), "stages={stages}: {report}");
    }
}

#[test]
fn buffer_reuse_hazard_is_respected() {
    // Many stages with tiny sub-slices maximize buffer turnover; any
    // missing hazard gate corrupts the output. Run across awkward sizes.
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    let kernel = Scale::new(-2.0);
    for n in [33usize, 100, 257, 1023] {
        let (x, y) = operands(n, n as u64);
        let run = off
            .offload_pipelined(&kernel, &x, &y, 4, OffloadStrategy::extended(), 6)
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(run.verify(&kernel, &x, &y).passed(), "n={n}");
    }
}

#[test]
fn pipelining_hides_data_movement_at_scale() {
    // With two stages, each cluster's DMA overlaps its compute, so the
    // parallel term shrinks; at large N/M this is a clear win.
    let mut off = Offloader::new(SocConfig::manticore()).expect("soc");
    let kernel = Daxpy::new(2.0);
    let (x, y) = operands(8192, 9);
    let single = off
        .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
        .expect("offload");
    let double = off
        .offload_pipelined(&kernel, &x, &y, 4, OffloadStrategy::extended(), 2)
        .expect("offload");
    assert!(double.verify(&kernel, &x, &y).passed());
    assert!(
        double.cycles() < single.cycles(),
        "double buffering must win at N=8192/M=4: {} !< {}",
        double.cycles(),
        single.cycles()
    );
}

#[test]
fn one_stage_is_exactly_the_classic_offload() {
    let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
    let kernel = Daxpy::new(0.5);
    let (x, y) = operands(1024, 4);
    let classic = off
        .offload(&kernel, &x, &y, 8, OffloadStrategy::extended())
        .expect("offload");
    let staged = off
        .offload_pipelined(&kernel, &x, &y, 8, OffloadStrategy::extended(), 1)
        .expect("offload");
    assert_eq!(classic.cycles(), staged.cycles());
}

#[test]
fn gemv_pipelines_too() {
    let mut off = Offloader::new(SocConfig::with_clusters(8)).expect("soc");
    let kernel = Gemv::new(vec![1.0, -2.0, 0.5]);
    let n = 600usize;
    let (a_flat, _) = operands(n * 3, 77);
    let y = vec![0.0; n];
    let run = off
        .offload_pipelined(&kernel, &a_flat, &y, 8, OffloadStrategy::extended(), 3)
        .expect("offload");
    assert!(run.verify(&kernel, &a_flat, &y).passed());
}

#[test]
fn reductions_reject_pipelining() {
    let mut off = Offloader::new(SocConfig::with_clusters(2)).expect("soc");
    let (x, y) = operands(128, 5);
    let err = off
        .offload_pipelined(&Dot::new(), &x, &y, 2, OffloadStrategy::extended(), 2)
        .unwrap_err();
    assert!(matches!(err, OffloadError::PipelineUnsupported { .. }));
    assert!(err.to_string().contains("dot"));
}

#[test]
fn pipelined_baseline_strategy_also_works() {
    // Pipelining is orthogonal to the dispatch/sync co-design.
    let mut off = Offloader::new(SocConfig::with_clusters(4)).expect("soc");
    let kernel = Daxpy::new(3.0);
    let (x, y) = operands(1024, 6);
    let run = off
        .offload_pipelined(&kernel, &x, &y, 4, OffloadStrategy::baseline(), 2)
        .expect("offload");
    assert!(run.verify(&kernel, &x, &y).passed());
}
