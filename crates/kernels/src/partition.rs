//! Work partitioning across clusters and cores.
//!
//! A job of `n` elements offloaded to `m` clusters of `c` worker cores is
//! split into contiguous, balanced chunks: first across clusters, then —
//! inside each cluster — across cores. Chunk sizes differ by at most one
//! element, and the union of all chunks tiles `0..n` exactly (an invariant
//! the property tests pin down).

use serde::{Deserialize, Serialize};

/// A contiguous range of job elements, `[start, start + count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chunk {
    /// First element index.
    pub start: u64,
    /// Number of elements.
    pub count: u64,
}

impl Chunk {
    /// One-past-the-end element index.
    pub fn end(&self) -> u64 {
        self.start + self.count
    }

    /// `true` when the chunk holds no elements.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Splits `total` elements into `parts` balanced contiguous chunks.
///
/// The first `total % parts` chunks receive one extra element, so sizes
/// differ by at most one and larger chunks come first.
///
/// # Panics
///
/// Panics if `parts` is zero.
///
/// # Example
///
/// ```
/// use mpsoc_kernels::partition::split_even;
///
/// let chunks = split_even(10, 3);
/// let sizes: Vec<u64> = chunks.iter().map(|c| c.count).collect();
/// assert_eq!(sizes, vec![4, 3, 3]);
/// assert_eq!(chunks[0].start, 0);
/// assert_eq!(chunks[2].end(), 10);
/// ```
pub fn split_even(total: u64, parts: usize) -> Vec<Chunk> {
    assert!(parts > 0, "cannot split into zero parts");
    let parts64 = parts as u64;
    let base = total / parts64;
    let extra = total % parts64;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts64 {
        let count = base + u64::from(i < extra);
        chunks.push(Chunk { start, count });
        start += count;
    }
    chunks
}

/// The full two-level partition of a job: one chunk per cluster, one
/// chunk per core inside each cluster (core chunks are relative to the
/// job, not the cluster).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobPartition {
    clusters: Vec<Chunk>,
    cores: Vec<Vec<Chunk>>,
}

impl JobPartition {
    /// Partitions `total` elements over `clusters` clusters of
    /// `cores_per_cluster` worker cores each.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `cores_per_cluster` is zero.
    pub fn new(total: u64, clusters: usize, cores_per_cluster: usize) -> Self {
        assert!(cores_per_cluster > 0, "need at least one core per cluster");
        let cluster_chunks = split_even(total, clusters);
        let core_chunks = cluster_chunks
            .iter()
            .map(|cc| {
                split_even(cc.count, cores_per_cluster)
                    .into_iter()
                    .map(|k| Chunk {
                        start: cc.start + k.start,
                        count: k.count,
                    })
                    .collect()
            })
            .collect();
        JobPartition {
            clusters: cluster_chunks,
            cores: core_chunks,
        }
    }

    /// Per-cluster chunks, in cluster order.
    pub fn clusters(&self) -> &[Chunk] {
        &self.clusters
    }

    /// Chunks of the cores of `cluster`, in core order.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cores(&self, cluster: usize) -> &[Chunk] {
        &self.cores[cluster]
    }

    /// The largest per-core element count across the whole job — the
    /// compute-critical path.
    pub fn max_core_elems(&self) -> u64 {
        self.cores
            .iter()
            .flatten()
            .map(|c| c.count)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let chunks = split_even(12, 4);
        assert!(chunks.iter().all(|c| c.count == 3));
        assert_eq!(chunks[3].end(), 12);
    }

    #[test]
    fn remainder_goes_to_leading_chunks() {
        let chunks = split_even(11, 4);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.count).collect();
        assert_eq!(sizes, vec![3, 3, 3, 2]);
    }

    #[test]
    fn zero_total_gives_empty_chunks() {
        let chunks = split_even(0, 3);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(Chunk::is_empty));
    }

    #[test]
    fn more_parts_than_elements() {
        let chunks = split_even(2, 5);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.count).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn chunks_tile_the_range() {
        let chunks = split_even(1024, 7);
        let mut cursor = 0;
        for c in &chunks {
            assert_eq!(c.start, cursor);
            cursor = c.end();
        }
        assert_eq!(cursor, 1024);
    }

    #[test]
    fn job_partition_two_levels() {
        let p = JobPartition::new(1024, 4, 8);
        assert_eq!(p.clusters().len(), 4);
        // 1024 / 4 = 256 per cluster, 256 / 8 = 32 per core.
        assert!(p.clusters().iter().all(|c| c.count == 256));
        for cluster in 0..4 {
            assert_eq!(p.cores(cluster).len(), 8);
            assert!(p.cores(cluster).iter().all(|c| c.count == 32));
        }
        assert_eq!(p.max_core_elems(), 32);
    }

    #[test]
    fn job_partition_core_chunks_are_absolute_and_tile() {
        let p = JobPartition::new(100, 3, 4);
        let mut cursor = 0;
        for cluster in 0..3 {
            for chunk in p.cores(cluster) {
                assert_eq!(chunk.start, cursor);
                cursor = chunk.end();
            }
        }
        assert_eq!(cursor, 100);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_panics() {
        split_even(4, 0);
    }
}
