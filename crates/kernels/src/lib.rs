//! # mpsoc-kernels
//!
//! The data-parallel kernel zoo of the `mpsoc-offload` reproduction:
//! kernel definitions ([`Kernel`]), per-core code generation onto the
//! [`mpsoc_isa`] micro-ISA, golden reference implementations, and the
//! work [`partition`]ing used to split a job across clusters and cores.
//!
//! The paper's workload is **DAXPY** (`y = a·x + y`); [`Daxpy`] carries
//! the hand-scheduled, software-pipelined inner loop that sustains the
//! calibrated 2.6 cycles/element/core. The rest of the zoo ([`Axpby`],
//! [`Scale`], [`VecAdd`], [`Memset`], [`Dot`], [`Sum`]) exercises the same
//! offload machinery with different compute/data-movement ratios, which
//! the model-generality experiment (`kernel_sweep`) uses to refit Eq. 1
//! per kernel.
//!
//! # Example
//!
//! ```
//! use mpsoc_kernels::{CoreSlice, Daxpy, GoldenOutput, Kernel};
//! use mpsoc_isa::{Interpreter, VecPort};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = Daxpy::new(2.0);
//!
//! // One core processing 4 elements laid out in a toy TCDM:
//! //   x at bytes 0..32, y at 32..64, scalar args at 64.
//! let slice = CoreSlice { elems: 4, x_base: 0, y_base: 32, out_base: 32, args_base: 64, core_index: 0 };
//! let program = kernel.codegen(&slice)?;
//!
//! let mut tcdm = VecPort::new(vec![0.0; 16]);
//! tcdm.data_mut()[0..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]); // x
//! tcdm.data_mut()[4..8].copy_from_slice(&[10.0, 10.0, 10.0, 10.0]); // y
//! tcdm.data_mut()[8] = 2.0; // a
//! Interpreter::new().run(&program, &mut tcdm)?;
//! assert_eq!(&tcdm.data()[4..8], &[12.0, 14.0, 16.0, 18.0]);
//!
//! // The golden reference agrees:
//! match kernel.golden(&[1.0, 2.0, 3.0, 4.0], &[10.0; 4]) {
//!     GoldenOutput::Vector(v) => assert_eq!(v, vec![12.0, 14.0, 16.0, 18.0]),
//!     _ => unreachable!("daxpy is a map kernel"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daxpy;
mod daxpy_ssr;
mod gemv;
mod kernel;
pub mod partition;
mod stencil;
mod zoo;

pub use daxpy::Daxpy;
pub use daxpy_ssr::DaxpySsr;
pub use gemv::Gemv;
pub use kernel::{ByteRange, CoreSlice, GoldenOutput, Kernel, KernelKind};
pub use stencil::Stencil3;
pub use zoo::{Axpby, Dot, Memset, Scale, Sum, VecAdd};
