//! Dense matrix–vector product (`y = A·v`).

use mpsoc_isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};

use crate::{CoreSlice, GoldenOutput, Kernel, KernelKind};

/// `y[i] = Σ_j A[i][j] · v[j]` for a row-major `N×K` matrix `A`.
///
/// GEMV stresses the offload machinery differently from the vector zoo:
/// its `x` operand carries `K` words per output element (the matrix row),
/// so the DMA volume grows `K`-fold while the output stays `N` — a much
/// higher data-to-output ratio. The small dense vector `v` travels in the
/// scalar-argument area and is resident in every cluster's TCDM, like a
/// kernel constant table.
///
/// # Example
///
/// ```
/// use mpsoc_kernels::{Gemv, Kernel, GoldenOutput};
///
/// // 2×3 matrix times v = [1, 10, 100].
/// let gemv = Gemv::new(vec![1.0, 10.0, 100.0]);
/// let a = [1.0, 2.0, 3.0, /* row 1 */ 4.0, 5.0, 6.0];
/// match gemv.golden(&a, &[0.0, 0.0]) {
///     GoldenOutput::Vector(y) => assert_eq!(y, vec![321.0, 654.0]),
///     _ => unreachable!(),
/// }
/// assert_eq!(gemv.x_words_per_elem(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gemv {
    v: Vec<f64>,
}

impl Gemv {
    /// Creates a GEMV with the dense vector `v` (its length is `K`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is empty.
    pub fn new(v: Vec<f64>) -> Self {
        assert!(!v.is_empty(), "gemv vector must be non-empty");
        Gemv { v }
    }

    /// The inner dimension `K`.
    pub fn k(&self) -> usize {
        self.v.len()
    }

    /// The dense vector.
    pub fn v(&self) -> &[f64] {
        &self.v
    }
}

impl Kernel for Gemv {
    fn name(&self) -> &str {
        "gemv"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn uses_y(&self) -> bool {
        false // y is pure output
    }

    fn x_words_per_elem(&self) -> u64 {
        self.v.len() as u64
    }

    fn scalar_args(&self) -> Vec<f64> {
        self.v.clone()
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        let mut b = ProgramBuilder::new();
        let a_ptr = IntReg::new(1);
        let out_ptr = IntReg::new(2);
        let rows = IntReg::new(3);
        let args = IntReg::new(4);
        let v_ptr = IntReg::new(5);
        let cols = IntReg::new(6);
        let av = FpReg::new(0);
        let vv = FpReg::new(1);
        let acc = FpReg::new(2);
        let k = self.v.len() as i64;

        b.li(a_ptr, slice.x_base as i64);
        b.li(out_ptr, slice.y_base as i64);
        b.li(args, slice.args_base as i64);
        if slice.elems > 0 {
            b.li(rows, slice.elems as i64);
            let row_top = b.label();
            b.bind(row_top);
            // acc <- 0.0 (the zero word after the v table).
            b.fld(acc, args, k * 8);
            b.addi(v_ptr, args, 0);
            b.li(cols, k);
            let col_top = b.label();
            b.bind(col_top);
            b.fld(av, a_ptr, 0);
            b.fld(vv, v_ptr, 0);
            b.fmadd(acc, av, vv, acc);
            b.addi(a_ptr, a_ptr, 8);
            b.addi(v_ptr, v_ptr, 8);
            b.addi(cols, cols, -1);
            b.bnez(cols, col_top);
            b.fsd(acc, out_ptr, 0);
            b.addi(out_ptr, out_ptr, 8);
            b.addi(rows, rows, -1);
            b.bnez(rows, row_top);
        }
        b.halt();
        b.build()
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        let k = self.v.len();
        let n = y.len();
        assert_eq!(x.len(), n * k, "matrix shape mismatch");
        let out = (0..n)
            .map(|i| {
                x[i * k..(i + 1) * k]
                    .iter()
                    .zip(&self.v)
                    .fold(0.0, |acc, (&a, &v)| a.mul_add(v, acc))
            })
            .collect();
        GoldenOutput::Vector(out)
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        7.0 * self.v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, VecPort};

    fn run_single_core(gemv: &Gemv, a: &[f64], n: usize) -> Vec<f64> {
        let k = gemv.k();
        assert_eq!(a.len(), n * k);
        // Layout: A at 0, out at n*k, args (v + zero) after.
        let out_word = n * k;
        let args_word = out_word + n;
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 0,
            y_base: (out_word * 8) as u64,
            out_base: (out_word * 8) as u64,
            args_base: (args_word * 8) as u64,
            core_index: 0,
        };
        let program = gemv.codegen(&slice).expect("codegen");
        let mut data = vec![0.0; args_word + k + 1];
        data[..n * k].copy_from_slice(a);
        data[args_word..args_word + k].copy_from_slice(gemv.v());
        let mut port = VecPort::new(data);
        Interpreter::new().run(&program, &mut port).expect("run");
        port.data()[out_word..out_word + n].to_vec()
    }

    #[test]
    fn small_gemv_matches_golden() {
        let gemv = Gemv::new(vec![2.0, -1.0, 0.5]);
        let a = [1.0, 2.0, 4.0, 3.0, 0.0, -2.0];
        let got = run_single_core(&gemv, &a, 2);
        let want = gemv.golden(&a, &[0.0, 0.0]).unwrap_vector();
        assert_eq!(got, want);
        assert_eq!(got, vec![2.0, 5.0]);
    }

    #[test]
    fn k_equals_one_degenerates_to_scale() {
        let gemv = Gemv::new(vec![3.0]);
        let a = [1.0, 2.0, 3.0];
        let got = run_single_core(&gemv, &a, 3);
        assert_eq!(got, vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn zero_rows_is_fine() {
        let gemv = Gemv::new(vec![1.0, 1.0]);
        let got = run_single_core(&gemv, &[], 0);
        assert!(got.is_empty());
    }

    #[test]
    fn dma_volume_scales_with_k() {
        let gemv = Gemv::new(vec![0.0; 5]);
        assert_eq!(gemv.x_words_per_elem(), 5);
        assert_eq!(gemv.dma_in_words(100), 500); // A only; y not streamed
        assert_eq!(gemv.dma_out_words(100, 8), 100);
    }

    #[test]
    fn accessors() {
        let gemv = Gemv::new(vec![1.0, 2.0]);
        assert_eq!(gemv.k(), 2);
        assert_eq!(gemv.v(), &[1.0, 2.0]);
        assert_eq!(gemv.name(), "gemv");
        assert_eq!(gemv.kind(), KernelKind::Map);
        assert_eq!(gemv.scalar_args(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vector_panics() {
        let _ = Gemv::new(vec![]);
    }
}
