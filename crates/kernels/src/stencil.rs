//! A 3-point stencil kernel with halo exchange.

use mpsoc_isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};

use crate::{CoreSlice, GoldenOutput, Kernel, KernelKind};

/// `y[i] = a·x[i−1] + b·x[i] + c·x[i+1]` with zero boundaries
/// (`x[−1] = x[N] = 0`).
///
/// Unlike the elementwise zoo, a stencil's slices are *not* independent:
/// each cluster needs one extra `x` element on either side of its chunk
/// (the **halo**). The offload runtime fetches the halo words from the
/// neighbouring slices' data in main memory and zero-fills them at the
/// job edges, so the kernel exercises a data-decomposition pattern —
/// ghost cells — that DAXPY and friends never touch.
///
/// # Example
///
/// ```
/// use mpsoc_kernels::{GoldenOutput, Kernel, Stencil3};
///
/// let blur = Stencil3::new(0.25, 0.5, 0.25);
/// match blur.golden(&[0.0, 4.0, 0.0], &[0.0; 3]) {
///     GoldenOutput::Vector(y) => assert_eq!(y, vec![1.0, 2.0, 1.0]),
///     _ => unreachable!(),
/// }
/// assert_eq!(blur.x_halo(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stencil3 {
    a: f64,
    b: f64,
    c: f64,
}

impl Stencil3 {
    /// Creates the stencil with taps `(a, b, c)` on `(x[i−1], x[i], x[i+1])`.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        Stencil3 { a, b, c }
    }

    /// The taps.
    pub fn taps(&self) -> (f64, f64, f64) {
        (self.a, self.b, self.c)
    }
}

impl Kernel for Stencil3 {
    fn name(&self) -> &str {
        "stencil3"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn uses_y(&self) -> bool {
        false // y is pure output
    }

    fn x_halo(&self) -> u64 {
        1
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a, self.b, self.c]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        let mut b = ProgramBuilder::new();
        let xp = IntReg::new(1); // points at x[i]
        let yp = IntReg::new(2);
        let cnt = IntReg::new(3);
        let args = IntReg::new(4);
        let (xm1, x0, xp1, acc) = (FpReg::new(3), FpReg::new(4), FpReg::new(5), FpReg::new(6));
        let (ta, tb, tc) = (FpReg::new(31), FpReg::new(30), FpReg::new(29));

        b.li(xp, slice.x_base as i64);
        b.li(yp, slice.y_base as i64);
        b.li(args, slice.args_base as i64);
        b.fld(ta, args, 0);
        b.fld(tb, args, 8);
        b.fld(tc, args, 16);
        if slice.elems > 0 {
            b.li(cnt, slice.elems as i64);
            let top = b.label();
            b.bind(top);
            b.fld(xm1, xp, -8); // the halo slot for the first element
            b.fld(x0, xp, 0);
            b.fld(xp1, xp, 8);
            b.fmul(acc, tc, xp1);
            b.fmadd(acc, tb, x0, acc);
            b.fmadd(acc, ta, xm1, acc);
            b.fsd(acc, yp, 0);
            b.addi(xp, xp, 8);
            b.addi(yp, yp, 8);
            b.addi(cnt, cnt, -1);
            b.bnez(cnt, top);
        }
        b.halt();
        b.build()
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        let n = y.len();
        assert_eq!(x.len(), n, "stencil operands must have equal length");
        let at = |i: isize| -> f64 {
            if i < 0 || i as usize >= n {
                0.0
            } else {
                x[i as usize]
            }
        };
        // Same op order as the codegen: c·x[i+1], then fmadd b, then fmadd a.
        let out = (0..n as isize)
            .map(|i| {
                self.a
                    .mul_add(at(i - 1), self.b.mul_add(at(i), self.c * at(i + 1)))
            })
            .collect();
        GoldenOutput::Vector(out)
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        11.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, VecPort};

    /// Single-core run with an explicit halo layout: x at words
    /// `1..n+1` (zeros at 0 and n+1), output after, args after that.
    fn run_one_core(kernel: &Stencil3, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        let y_word = n + 2;
        let args_word = y_word + n;
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 8, // first element, halo at word 0
            y_base: (y_word * 8) as u64,
            out_base: (y_word * 8) as u64,
            args_base: (args_word * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice).expect("codegen");
        let args = kernel.scalar_args();
        let mut data = vec![0.0; args_word + args.len() + 1];
        data[1..1 + n].copy_from_slice(x);
        data[args_word..args_word + args.len()].copy_from_slice(&args);
        let mut port = VecPort::new(data);
        Interpreter::new().run(&program, &mut port).expect("run");
        port.data()[y_word..y_word + n].to_vec()
    }

    #[test]
    fn blur_matches_golden() {
        let kernel = Stencil3::new(0.25, 0.5, 0.25);
        let x = [0.0, 4.0, 0.0, 8.0];
        let got = run_one_core(&kernel, &x);
        let want = kernel.golden(&x, &[0.0; 4]).unwrap_vector();
        assert_eq!(got, want);
        // Hand-checked: y1 = 0.5·4, y2 = 0.25·4 + 0.25·8, y3 = 0.5·8.
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn boundaries_read_zero_halo() {
        // Identity-on-left-neighbour stencil exposes the halo directly.
        let kernel = Stencil3::new(1.0, 0.0, 0.0);
        let x = [5.0, 6.0, 7.0];
        let got = run_one_core(&kernel, &x);
        assert_eq!(got, vec![0.0, 5.0, 6.0]);
        // And on the right.
        let kernel = Stencil3::new(0.0, 0.0, 1.0);
        let got = run_one_core(&kernel, &x);
        assert_eq!(got, vec![6.0, 7.0, 0.0]);
    }

    #[test]
    fn single_element_job() {
        let kernel = Stencil3::new(1.0, 2.0, 3.0);
        let got = run_one_core(&kernel, &[10.0]);
        assert_eq!(got, vec![20.0]); // both neighbours are boundary zeros
    }

    #[test]
    fn accessors() {
        let k = Stencil3::new(1.0, 2.0, 3.0);
        assert_eq!(k.taps(), (1.0, 2.0, 3.0));
        assert_eq!(k.name(), "stencil3");
        assert_eq!(k.x_halo(), 1);
        assert!(!k.uses_y());
        assert_eq!(k.scalar_args().len(), 3);
    }
}
