//! The calibrated DAXPY kernel (`y = a·x + y`).

use mpsoc_isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};

use crate::{CoreSlice, GoldenOutput, Kernel, KernelKind};

/// Double-precision `y = a·x + y`, the paper's workload.
///
/// The generated inner loop is software-pipelined and unrolled by 10:
/// 20 `fld`s, 10 `fmadd`s dual-issued on the FPU pipe, 5 paired 128-bit
/// stores and the loop bookkeeping fold into a steady-state initiation
/// interval of **26 cycles per 10 elements** on the
/// [`CoreTiming::snitch`](mpsoc_isa::CoreTiming::snitch) core — the
/// 2.6 cycles/element/core coefficient of the paper's Eq. 1. A simple
/// one-element-per-iteration remainder loop handles `elems % 10`.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Daxpy {
    a: f64,
}

impl Daxpy {
    /// Elements retired per main-loop iteration.
    pub const UNROLL: u64 = 10;
    /// Steady-state cycles per main-loop iteration.
    pub const STEADY_CYCLES_PER_ITER: u64 = 26;

    /// Creates a DAXPY kernel with scale factor `a`.
    pub fn new(a: f64) -> Self {
        Daxpy { a }
    }

    /// The scale factor.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Reference implementation on plain slices. Uses `mul_add` so the
    /// rounding matches the accelerator's fused multiply-add bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn reference(a: f64, x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), y.len(), "operand lengths must match");
        x.iter()
            .zip(y)
            .map(|(&xi, &yi)| a.mul_add(xi, yi))
            .collect()
    }
}

impl Kernel for Daxpy {
    fn name(&self) -> &str {
        "daxpy"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1); // x pointer
        let x2 = IntReg::new(2); // y pointer
        let x3 = IntReg::new(3); // trip counter
        let x4 = IntReg::new(4); // args base
        let a_reg = FpReg::new(31);

        let trips = slice.elems / Self::UNROLL;
        let rem = slice.elems % Self::UNROLL;

        b.li(x1, slice.x_base as i64);
        b.li(x2, slice.y_base as i64);
        b.li(x4, slice.args_base as i64);
        b.fld(a_reg, x4, 0); // a
        if trips > 0 {
            b.li(x3, trips as i64);
            let top = b.label();
            b.bind(top);
            // Warm-up: first three x/y pairs.
            for i in 0..3i64 {
                b.fld(FpReg::new(i as u8), x1, i * 8);
                b.fld(FpReg::new(10 + i as u8), x2, i * 8);
            }
            // Pipelined middle: fmadd_i overlaps the loads of pair i+3.
            for i in 0..7u8 {
                b.fmadd(FpReg::new(10 + i), a_reg, FpReg::new(i), FpReg::new(10 + i));
                let j = i64::from(i) + 3;
                b.fld(FpReg::new(3 + i), x1, j * 8);
                b.fld(FpReg::new(13 + i), x2, j * 8);
            }
            // Drain: remaining fmadds interleaved with paired stores.
            b.addi(x1, x1, 80);
            b.fmadd(FpReg::new(17), a_reg, FpReg::new(7), FpReg::new(17));
            b.fsd_pair(FpReg::new(10), FpReg::new(11), x2, 0);
            b.addi(x3, x3, -1);
            b.fmadd(FpReg::new(18), a_reg, FpReg::new(8), FpReg::new(18));
            b.fsd_pair(FpReg::new(12), FpReg::new(13), x2, 16);
            b.fmadd(FpReg::new(19), a_reg, FpReg::new(9), FpReg::new(19));
            b.fsd_pair(FpReg::new(14), FpReg::new(15), x2, 32);
            b.fsd_pair(FpReg::new(16), FpReg::new(17), x2, 48);
            b.fsd_pair(FpReg::new(18), FpReg::new(19), x2, 64);
            b.addi(x2, x2, 80);
            b.bnez(x3, top);
        }
        if rem > 0 {
            // Straight-line remainder: no loop, so the marginal cost per
            // element stays close to the steady-state 2.6 cycles and the
            // total compute time remains linear in the element count —
            // which the <1% MAPE of the Eq. 1 model validation relies on.
            let rem = rem as u8;
            for i in 0..rem {
                b.fld(FpReg::new(i), x1, i64::from(i) * 8);
                b.fld(FpReg::new(10 + i), x2, i64::from(i) * 8);
            }
            for i in 0..rem {
                b.fmadd(FpReg::new(10 + i), a_reg, FpReg::new(i), FpReg::new(10 + i));
            }
            let mut i = 0u8;
            while i + 1 < rem {
                b.fsd_pair(FpReg::new(10 + i), FpReg::new(11 + i), x2, i64::from(i) * 8);
                i += 2;
            }
            if i < rem {
                b.fsd(FpReg::new(10 + i), x2, i64::from(i) * 8);
            }
        }
        b.halt();
        b.build()
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(Self::reference(self.a, x, y))
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        Self::STEADY_CYCLES_PER_ITER as f64 / Self::UNROLL as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, VecPort};

    /// Lays out x at word 0, y at word `n`, args at word `2n`, runs the
    /// kernel on one core, returns (result y, finish cycle).
    fn run_one_core(a: f64, x: &[f64], y: &[f64]) -> (Vec<f64>, u64) {
        let n = x.len();
        let kernel = Daxpy::new(a);
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 0,
            y_base: (n * 8) as u64,
            out_base: (n * 8) as u64,
            args_base: (2 * n * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice).expect("codegen");
        let mut data = Vec::with_capacity(2 * n + 1);
        data.extend_from_slice(x);
        data.extend_from_slice(y);
        data.push(a);
        let mut port = VecPort::new(data);
        let report = Interpreter::new().run(&program, &mut port).expect("run");
        (port.data()[n..2 * n].to_vec(), report.finish.as_u64())
    }

    #[test]
    fn matches_golden_for_assorted_sizes() {
        for n in [0usize, 1, 4, 9, 10, 11, 25, 40, 100, 128] {
            let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 + 1.0).collect();
            let y: Vec<f64> = (0..n).map(|i| 100.0 - i as f64).collect();
            let (got, _) = run_one_core(-1.5, &x, &y);
            let want = Daxpy::reference(-1.5, &x, &y);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn steady_state_is_26_cycles_per_10_elements() {
        let finish = |n: usize| {
            let x = vec![1.0; n];
            let y = vec![2.0; n];
            run_one_core(3.0, &x, &y).1
        };
        let f40 = finish(40);
        let f50 = finish(50);
        let f140 = finish(140);
        assert_eq!(
            f50 - f40,
            Daxpy::STEADY_CYCLES_PER_ITER,
            "one extra unrolled iteration must cost exactly 26 cycles"
        );
        assert_eq!(f140 - f40, 10 * Daxpy::STEADY_CYCLES_PER_ITER);
    }

    #[test]
    fn cycles_per_element_approaches_2_6() {
        let n = 1000;
        let x = vec![1.0; n];
        let y = vec![0.0; n];
        let (_, finish) = run_one_core(2.0, &x, &y);
        let per_elem = finish as f64 / n as f64;
        assert!(
            (per_elem - 2.6).abs() < 0.1,
            "expected ~2.6 cycles/element, measured {per_elem:.3}"
        );
    }

    #[test]
    fn remainder_only_jobs_work() {
        let x = vec![2.0; 7];
        let y = vec![1.0; 7];
        let (got, _) = run_one_core(0.5, &x, &y);
        assert_eq!(got, vec![2.0; 7]);
    }

    #[test]
    fn accessors_and_hint() {
        let k = Daxpy::new(4.0);
        assert_eq!(k.a(), 4.0);
        assert_eq!(k.name(), "daxpy");
        assert_eq!(k.kind(), KernelKind::Map);
        assert_eq!(k.scalar_args(), vec![4.0]);
        assert!((k.cycles_per_elem_hint() - 2.6).abs() < 1e-12);
        // DAXPY streams both x and y in, writes y out: 3 words/element.
        assert_eq!(k.dma_in_words(100), 200);
        assert_eq!(k.dma_out_words(100, 8), 100);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn reference_length_mismatch_panics() {
        Daxpy::reference(1.0, &[1.0], &[]);
    }
}
