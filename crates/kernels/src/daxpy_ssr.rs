//! DAXPY using stream semantic registers and a hardware loop.

use mpsoc_isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};

use crate::{CoreSlice, Daxpy, GoldenOutput, Kernel, KernelKind};

/// `y = a·x + y` compiled for the Snitch cores' SSR + FREP extensions:
/// the x and y operands stream through `f0`/`f1`, the result streams out
/// through `f2`, and a single `fmadd` repeats under a zero-overhead
/// hardware loop — **one element per cycle**, no explicit loads, stores
/// or branches.
///
/// Compared to [`Daxpy`]'s software-pipelined scalar loop (2.6
/// cycles/element), this drops the compute coefficient of the Eq. 1
/// model from `2.6/8` to `1/8` cycles per element per cluster; the
/// `codegen_ablation` experiment quantifies the end-to-end effect.
///
/// # Example
///
/// ```
/// use mpsoc_kernels::{DaxpySsr, Kernel};
///
/// let kernel = DaxpySsr::new(2.0);
/// assert_eq!(kernel.name(), "daxpy-ssr");
/// assert!((kernel.cycles_per_elem_hint() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaxpySsr {
    a: f64,
}

impl DaxpySsr {
    /// Creates an SSR DAXPY with scale factor `a`.
    pub fn new(a: f64) -> Self {
        DaxpySsr { a }
    }

    /// The scale factor.
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl Kernel for DaxpySsr {
    fn name(&self) -> &str {
        "daxpy-ssr"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        let x2 = IntReg::new(2);
        let x4 = IntReg::new(4);
        let a_reg = FpReg::new(31);

        b.li(x1, slice.x_base as i64);
        b.li(x2, slice.y_base as i64);
        b.li(x4, slice.args_base as i64);
        b.fld(a_reg, x4, 0);
        if slice.elems > 0 {
            b.ssr_cfg(0, x1, 8, slice.elems, false); // x in
            b.ssr_cfg(1, x2, 8, slice.elems, false); // y in
            b.ssr_cfg(2, x2, 8, slice.elems, true); // y out
            b.ssr_enable();
            b.frep(slice.elems, 1);
            b.fmadd(FpReg::new(2), a_reg, FpReg::new(0), FpReg::new(1));
            b.ssr_disable();
        }
        b.halt();
        b.build()
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(Daxpy::reference(self.a, x, y))
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, VecPort};

    fn run_one_core(a: f64, x: &[f64], y: &[f64]) -> (Vec<f64>, u64) {
        let n = x.len();
        let kernel = DaxpySsr::new(a);
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 0,
            y_base: (n * 8) as u64,
            out_base: (n * 8) as u64,
            args_base: (2 * n * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice).expect("codegen");
        let mut data = Vec::with_capacity(2 * n + 1);
        data.extend_from_slice(x);
        data.extend_from_slice(y);
        data.push(a);
        let mut port = VecPort::new(data);
        let report = Interpreter::new().run(&program, &mut port).expect("run");
        (port.data()[n..2 * n].to_vec(), report.finish.as_u64())
    }

    #[test]
    fn matches_scalar_daxpy_bit_for_bit() {
        for n in [0usize, 1, 7, 64, 250] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let (got, _) = run_one_core(-2.5, &x, &y);
            assert_eq!(got, Daxpy::reference(-2.5, &x, &y), "n={n}");
        }
    }

    #[test]
    fn sustains_one_cycle_per_element() {
        let cost = |n: usize| {
            let x = vec![1.0; n];
            let y = vec![2.0; n];
            run_one_core(3.0, &x, &y).1
        };
        assert_eq!(
            cost(300) - cost(100),
            200,
            "marginal cost must be 1 cycle/element"
        );
    }

    #[test]
    fn is_faster_than_the_scalar_kernel() {
        let n = 400;
        let x = vec![1.0; n];
        let y = vec![2.0; n];
        let (_, ssr_cycles) = run_one_core(2.0, &x, &y);

        // The scalar kernel on the same data.
        let kernel = Daxpy::new(2.0);
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 0,
            y_base: (n * 8) as u64,
            out_base: (n * 8) as u64,
            args_base: (2 * n * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice).unwrap();
        let mut data = Vec::new();
        data.extend_from_slice(&x);
        data.extend_from_slice(&y);
        data.push(2.0);
        let mut port = VecPort::new(data);
        let scalar_cycles = Interpreter::new()
            .run(&program, &mut port)
            .unwrap()
            .finish
            .as_u64();
        assert!(
            (ssr_cycles as f64) < scalar_cycles as f64 * 0.5,
            "SSR ({ssr_cycles}) should be >2x faster than scalar ({scalar_cycles})"
        );
    }

    #[test]
    fn accessors() {
        let k = DaxpySsr::new(4.5);
        assert_eq!(k.a(), 4.5);
        assert_eq!(k.kind(), KernelKind::Map);
        assert_eq!(k.scalar_args(), vec![4.5]);
        assert_eq!(k.dma_in_words(64), 128);
    }
}
