//! The rest of the kernel zoo: map and reduce kernels with different
//! compute intensities and data-movement ratios.
//!
//! These kernels share a simple (not software-pipelined) loop shape; they
//! exist to exercise the offload machinery and the analytic model across
//! workloads, not to chase peak FPU utilization like [`Daxpy`](crate::Daxpy).
//!
//! # Argument-area convention
//!
//! Scalar arguments are materialized by the cluster controller at
//! `args_base`, one word each, **followed by one zero word** that reduce
//! kernels load to initialize their accumulator.

use mpsoc_isa::{BuildError, FpReg, IntReg, Program, ProgramBuilder};

use crate::{CoreSlice, GoldenOutput, Kernel, KernelKind};

const X_PTR: IntReg = IntReg::new(1);
const Y_PTR: IntReg = IntReg::new(2);
const COUNT: IntReg = IntReg::new(3);
const ARGS: IntReg = IntReg::new(4);
const OUT_PTR: IntReg = IntReg::new(5);

const XV: FpReg = FpReg::new(0);
const YV: FpReg = FpReg::new(1);
const ACC: FpReg = FpReg::new(2);
const S0: FpReg = FpReg::new(31);
const S1: FpReg = FpReg::new(30);

/// Emits the shared map-kernel scaffold: pointer setup, the per-element
/// loop around `body`, and `halt`. `body` sees `XV` (if `load_x`) and
/// `YV` (if `load_y`) populated and must leave the result in `YV`.
fn emit_map(
    slice: &CoreSlice,
    scalars: usize,
    load_x: bool,
    load_y: bool,
    body: impl Fn(&mut ProgramBuilder),
) -> Result<Program, BuildError> {
    let mut b = ProgramBuilder::new();
    if load_x {
        b.li(X_PTR, slice.x_base as i64);
    }
    b.li(Y_PTR, slice.y_base as i64);
    if scalars >= 1 {
        b.li(ARGS, slice.args_base as i64);
        b.fld(S0, ARGS, 0);
    }
    if scalars >= 2 {
        b.fld(S1, ARGS, 8);
    }
    if slice.elems > 0 {
        b.li(COUNT, slice.elems as i64);
        let top = b.label();
        b.bind(top);
        if load_x {
            b.fld(XV, X_PTR, 0);
        }
        if load_y {
            b.fld(YV, Y_PTR, 0);
        }
        body(&mut b);
        b.fsd(YV, Y_PTR, 0);
        if load_x {
            b.addi(X_PTR, X_PTR, 8);
        }
        b.addi(Y_PTR, Y_PTR, 8);
        b.addi(COUNT, COUNT, -1);
        b.bnez(COUNT, top);
    }
    b.halt();
    b.build()
}

/// Emits the shared reduce-kernel scaffold: the accumulator starts from
/// the zero word after the scalar args, `body` folds one element into
/// `ACC`, and the final partial is stored to `out_base`.
fn emit_reduce(
    slice: &CoreSlice,
    scalars: usize,
    load_y: bool,
    body: impl Fn(&mut ProgramBuilder),
) -> Result<Program, BuildError> {
    let mut b = ProgramBuilder::new();
    b.li(X_PTR, slice.x_base as i64);
    if load_y {
        b.li(Y_PTR, slice.y_base as i64);
    }
    b.li(ARGS, slice.args_base as i64);
    b.li(OUT_PTR, slice.out_base as i64);
    if scalars >= 1 {
        b.fld(S0, ARGS, 0);
    }
    // Accumulator <- the zero word after the scalars.
    b.fld(ACC, ARGS, (scalars as i64) * 8);
    if slice.elems > 0 {
        b.li(COUNT, slice.elems as i64);
        let top = b.label();
        b.bind(top);
        b.fld(XV, X_PTR, 0);
        if load_y {
            b.fld(YV, Y_PTR, 0);
        }
        body(&mut b);
        b.addi(X_PTR, X_PTR, 8);
        if load_y {
            b.addi(Y_PTR, Y_PTR, 8);
        }
        b.addi(COUNT, COUNT, -1);
        b.bnez(COUNT, top);
    }
    b.fsd(ACC, OUT_PTR, 0);
    b.halt();
    b.build()
}

/// `y = a·x + b·y`: DAXPY's two-scalar sibling (one extra FP op per
/// element).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Axpby {
    a: f64,
    b: f64,
}

impl Axpby {
    /// Creates the kernel with scale factors `a` (on `x`) and `b` (on `y`).
    pub fn new(a: f64, b: f64) -> Self {
        Axpby { a, b }
    }
}

impl Kernel for Axpby {
    fn name(&self) -> &str {
        "axpby"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a, self.b]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        emit_map(slice, 2, true, true, |b| {
            b.fmul(YV, S1, YV); // y <- b*y
            b.fmadd(YV, S0, XV, YV); // y <- a*x + b*y
        })
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(
            x.iter()
                .zip(y)
                .map(|(&xi, &yi)| self.a.mul_add(xi, self.b * yi))
                .collect(),
        )
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        9.0
    }
}

/// `y = a·x`: streams only `x` in (2 words/element of traffic instead of
/// DAXPY's 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    a: f64,
}

impl Scale {
    /// Creates the kernel with scale factor `a`.
    pub fn new(a: f64) -> Self {
        Scale { a }
    }
}

impl Kernel for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn uses_y(&self) -> bool {
        false
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.a]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        emit_map(slice, 1, true, false, |b| {
            b.fmul(YV, S0, XV);
        })
    }

    fn golden(&self, x: &[f64], _y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(x.iter().map(|&xi| self.a * xi).collect())
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        8.0
    }
}

/// `y = x + y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VecAdd;

impl VecAdd {
    /// Creates the kernel.
    pub fn new() -> Self {
        VecAdd
    }
}

impl Kernel for VecAdd {
    fn name(&self) -> &str {
        "vecadd"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        emit_map(slice, 0, true, true, |b| {
            b.fadd(YV, XV, YV);
        })
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(x.iter().zip(y).map(|(&a, &b)| a + b).collect())
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        8.0
    }
}

/// `y = v`: pure output bandwidth, no input streams at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Memset {
    value: f64,
}

impl Memset {
    /// Creates the kernel writing `value` to every element.
    pub fn new(value: f64) -> Self {
        Memset { value }
    }
}

impl Kernel for Memset {
    fn name(&self) -> &str {
        "memset"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Map
    }

    fn uses_x(&self) -> bool {
        false
    }

    fn uses_y(&self) -> bool {
        false
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![self.value]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        // Custom loop: no input streams, just store the scalar.
        let mut b = ProgramBuilder::new();
        b.li(Y_PTR, slice.y_base as i64);
        b.li(ARGS, slice.args_base as i64);
        b.fld(S0, ARGS, 0);
        if slice.elems > 0 {
            b.li(COUNT, slice.elems as i64);
            let top = b.label();
            b.bind(top);
            b.fsd(S0, Y_PTR, 0);
            b.addi(Y_PTR, Y_PTR, 8);
            b.addi(COUNT, COUNT, -1);
            b.bnez(COUNT, top);
        }
        b.halt();
        b.build()
    }

    fn golden(&self, x: &[f64], _y: &[f64]) -> GoldenOutput {
        GoldenOutput::Vector(vec![self.value; x.len()])
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        5.0
    }
}

/// `partials[core] = Σ xᵢ·yᵢ`: dot product with per-core partials,
/// combined by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Dot;

impl Dot {
    /// Creates the kernel.
    pub fn new() -> Self {
        Dot
    }
}

impl Kernel for Dot {
    fn name(&self) -> &str {
        "dot"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Reduce
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        emit_reduce(slice, 0, true, |b| {
            b.fmadd(ACC, XV, YV, ACC);
        })
    }

    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput {
        GoldenOutput::Scalar(
            x.iter()
                .zip(y)
                .fold(0.0, |acc, (&xi, &yi)| xi.mul_add(yi, acc)),
        )
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        7.0
    }
}

/// `partials[core] = Σ xᵢ`: plain sum reduction over `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sum;

impl Sum {
    /// Creates the kernel.
    pub fn new() -> Self {
        Sum
    }
}

impl Kernel for Sum {
    fn name(&self) -> &str {
        "sum"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Reduce
    }

    fn uses_y(&self) -> bool {
        false
    }

    fn scalar_args(&self) -> Vec<f64> {
        vec![]
    }

    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError> {
        emit_reduce(slice, 0, false, |b| {
            b.fadd(ACC, ACC, XV);
        })
    }

    fn golden(&self, x: &[f64], _y: &[f64]) -> GoldenOutput {
        GoldenOutput::Scalar(x.iter().sum())
    }

    fn cycles_per_elem_hint(&self) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, VecPort};

    /// Runs a kernel on one core with x at 0, y at n, out right after y,
    /// args after out (+ trailing zero word).
    fn run(kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> (Vec<f64>, f64) {
        let n = x.len();
        let y_words = n.max(1);
        let out_word = n + y_words;
        let args_word = out_word + 1;
        let slice = CoreSlice {
            elems: n as u64,
            x_base: 0,
            y_base: (n * 8) as u64,
            out_base: (out_word * 8) as u64,
            args_base: (args_word * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice).expect("codegen");
        let args = kernel.scalar_args();
        let mut data = vec![0.0; args_word + args.len() + 1];
        data[..n].copy_from_slice(x);
        data[n..n + y.len()].copy_from_slice(y);
        data[args_word..args_word + args.len()].copy_from_slice(&args);
        let mut port = VecPort::new(data);
        Interpreter::new().run(&program, &mut port).expect("run");
        (port.data()[n..n + y.len()].to_vec(), port.data()[out_word])
    }

    #[test]
    fn axpby_matches_golden() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let k = Axpby::new(2.0, -1.0);
        let (got, _) = run(&k, &x, &y);
        assert_eq!(got, k.golden(&x, &y).unwrap_vector());
    }

    #[test]
    fn scale_matches_golden_and_skips_y_input() {
        let x = [1.5, -2.0, 0.25, 8.0];
        let y = [0.0; 4];
        let k = Scale::new(4.0);
        let (got, _) = run(&k, &x, &y);
        assert_eq!(got, vec![6.0, -8.0, 1.0, 32.0]);
        assert!(!k.uses_y());
        assert_eq!(k.dma_in_words(100), 100);
    }

    #[test]
    fn vecadd_matches_golden() {
        let x = [1.0, 2.0];
        let y = [10.0, 20.0];
        let (got, _) = run(&VecAdd::new(), &x, &y);
        assert_eq!(got, vec![11.0, 22.0]);
    }

    #[test]
    fn memset_fills_with_value() {
        let x = [0.0; 5];
        let y = [9.0; 5];
        let k = Memset::new(3.25);
        let (got, _) = run(&k, &x, &y);
        assert_eq!(got, vec![3.25; 5]);
        assert_eq!(k.dma_in_words(100), 0);
        assert_eq!(k.dma_out_words(100, 8), 100);
    }

    #[test]
    fn dot_partial_matches_sequential_golden() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 6.0, 7.0, 8.0];
        let k = Dot::new();
        let (_, partial) = run(&k, &x, &y);
        assert_eq!(partial, k.golden(&x, &y).unwrap_scalar());
        assert_eq!(partial, 70.0);
        assert_eq!(k.dma_out_words(100, 8), 8);
    }

    #[test]
    fn sum_partial_matches_golden() {
        let x = [1.0, -2.0, 3.5];
        let k = Sum::new();
        let (_, partial) = run(&k, &x, &[0.0; 3]);
        assert_eq!(partial, 2.5);
        assert_eq!(k.dma_in_words(10), 10);
    }

    #[test]
    fn reductions_write_zero_partial_for_empty_slices() {
        let k = Dot::new();
        let (_, partial) = run(&k, &[], &[]);
        assert_eq!(partial, 0.0);
    }

    #[test]
    fn kind_classification() {
        assert_eq!(Axpby::new(1.0, 1.0).kind(), KernelKind::Map);
        assert_eq!(Dot::new().kind(), KernelKind::Reduce);
        assert_eq!(Sum::new().kind(), KernelKind::Reduce);
    }
}
