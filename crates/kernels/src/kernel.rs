//! The kernel abstraction.

use mpsoc_isa::{BuildError, Program};

/// Whether a kernel produces an elementwise vector or per-core partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Elementwise: the output overwrites the `y` slice (`y' = f(x, y)`).
    Map,
    /// Reduction: each core writes one partial; the host combines them.
    Reduce,
}

/// The parameters a single worker core needs to run its share of a job.
///
/// All addresses are byte offsets local to the executing cluster's TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSlice {
    /// Number of elements this core processes.
    pub elems: u64,
    /// Local base of this core's `x` slice.
    pub x_base: u64,
    /// Local base of this core's `y` slice.
    pub y_base: u64,
    /// Local base of this core's output (equals `y_base` for map kernels;
    /// the core's partial slot for reductions).
    pub out_base: u64,
    /// Local base of the scalar-argument area shared by the cluster.
    pub args_base: u64,
    /// This core's index within the cluster (0-based).
    pub core_index: usize,
}

/// A half-open byte range `[start, end)` in cluster-local TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
}

impl ByteRange {
    /// The range of `len` bytes starting at `start`.
    pub fn new(start: u64, len: u64) -> Self {
        ByteRange {
            start,
            end: start + len,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` when the range covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// `true` when the two ranges share at least one byte.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }
}

impl CoreSlice {
    /// The TCDM byte ranges this core's program may *read* when running
    /// `kernel`: its `x` slice including any halo, its `y` slice when the
    /// kernel streams `y` in, and the cluster-shared scalar-argument area
    /// (arguments plus the trailing zero word).
    pub fn read_ranges(&self, kernel: &dyn Kernel) -> Vec<ByteRange> {
        let mut ranges = Vec::with_capacity(3);
        if kernel.uses_x() {
            let halo = kernel.x_halo();
            ranges.push(ByteRange::new(
                self.x_base - 8 * halo,
                8 * (self.elems * kernel.x_words_per_elem() + 2 * halo),
            ));
        }
        if kernel.uses_y() {
            ranges.push(ByteRange::new(self.y_base, 8 * self.elems));
        }
        ranges.push(ByteRange::new(
            self.args_base,
            8 * (kernel.scalar_args().len() as u64 + 1),
        ));
        ranges.retain(|r| !r.is_empty());
        ranges
    }

    /// The TCDM byte ranges this core's program *writes* when running
    /// `kernel`: its `y` slice for map kernels, its single partial slot
    /// for reductions.
    pub fn write_ranges(&self, kernel: &dyn Kernel) -> Vec<ByteRange> {
        let range = match kernel.kind() {
            KernelKind::Map => ByteRange::new(self.out_base, 8 * self.elems),
            KernelKind::Reduce => ByteRange::new(self.out_base, 8),
        };
        if range.is_empty() {
            vec![]
        } else {
            vec![range]
        }
    }
}

/// The expected result of a kernel, from the golden reference.
#[derive(Debug, Clone, PartialEq)]
pub enum GoldenOutput {
    /// Expected full `y` vector after a map kernel.
    Vector(Vec<f64>),
    /// Expected scalar after combining a reduction's partials.
    Scalar(f64),
}

impl GoldenOutput {
    /// The vector payload.
    ///
    /// # Panics
    ///
    /// Panics if this is a [`GoldenOutput::Scalar`].
    pub fn unwrap_vector(self) -> Vec<f64> {
        match self {
            GoldenOutput::Vector(v) => v,
            GoldenOutput::Scalar(_) => panic!("expected vector output, found scalar"),
        }
    }

    /// The scalar payload.
    ///
    /// # Panics
    ///
    /// Panics if this is a [`GoldenOutput::Vector`].
    pub fn unwrap_scalar(self) -> f64 {
        match self {
            GoldenOutput::Scalar(s) => s,
            GoldenOutput::Vector(_) => panic!("expected scalar output, found vector"),
        }
    }
}

/// A data-parallel kernel that can be offloaded to the accelerator.
///
/// A kernel bundles four things:
///
/// 1. its **shape** ([`Kernel::kind`], [`Kernel::uses_x`] /
///    [`Kernel::uses_y`]) — which operand vectors it streams in,
/// 2. its **scalar arguments** (copied into each cluster's TCDM arg area),
/// 3. **code generation** ([`Kernel::codegen`]) — the micro-op program one
///    worker core runs over its [`CoreSlice`],
/// 4. a **golden reference** ([`Kernel::golden`]) the integration tests
///    compare every offloaded result against.
///
/// Implementations live in this crate ([`Daxpy`](crate::Daxpy) and the
/// [zoo](crate::Axpby)); downstream users can implement the trait for
/// custom workloads.
pub trait Kernel {
    /// Kernel name, for reports.
    fn name(&self) -> &str;

    /// Map or reduce.
    fn kind(&self) -> KernelKind;

    /// `true` when the kernel streams the `x` operand in.
    fn uses_x(&self) -> bool {
        true
    }

    /// `true` when the kernel streams the `y` vector in.
    fn uses_y(&self) -> bool {
        true
    }

    /// Words of `x` per output element (1 for vector kernels; `K` for a
    /// GEMV whose `x` is an `N×K` row-major matrix).
    fn x_words_per_elem(&self) -> u64 {
        1
    }

    /// Halo words needed on *each* side of a slice's `x` data (stencils).
    /// The runtime fetches neighbouring elements into the halo slots and
    /// zero-fills them at the job boundaries; codegen may then address
    /// `x_base - 8·halo .. x_base + 8·(elems + halo)`. Only supported for
    /// kernels with [`Kernel::x_words_per_elem`] `== 1`.
    fn x_halo(&self) -> u64 {
        0
    }

    /// Scalar arguments, in arg-area order.
    fn scalar_args(&self) -> Vec<f64>;

    /// Words DMA'd into a cluster for a slice of `elems` elements.
    fn dma_in_words(&self, elems: u64) -> u64 {
        u64::from(self.uses_x()) * elems * self.x_words_per_elem()
            + u64::from(self.uses_y()) * elems
    }

    /// Words DMA'd out of a cluster after computing a slice of `elems`
    /// elements with `cores` worker cores.
    fn dma_out_words(&self, elems: u64, cores: u64) -> u64 {
        match self.kind() {
            KernelKind::Map => elems,
            KernelKind::Reduce => cores,
        }
    }

    /// Emits the micro-op program for one core's slice.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from program construction (should not
    /// happen for well-formed kernels; surfaced for custom implementors).
    fn codegen(&self, slice: &CoreSlice) -> Result<Program, BuildError>;

    /// Computes the expected result on the host, in plain Rust.
    fn golden(&self, x: &[f64], y: &[f64]) -> GoldenOutput;

    /// Approximate steady-state compute cost in cycles per element per
    /// core, used by seeding heuristics (the fitted model supersedes it).
    fn cycles_per_elem_hint(&self) -> f64 {
        2.6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl Kernel for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn kind(&self) -> KernelKind {
            KernelKind::Map
        }
        fn scalar_args(&self) -> Vec<f64> {
            vec![]
        }
        fn codegen(&self, _: &CoreSlice) -> Result<Program, BuildError> {
            let mut b = mpsoc_isa::ProgramBuilder::new();
            b.halt();
            b.build()
        }
        fn golden(&self, _x: &[f64], y: &[f64]) -> GoldenOutput {
            GoldenOutput::Vector(y.to_vec())
        }
    }

    #[test]
    fn byte_range_overlap() {
        let a = ByteRange::new(0, 64);
        let b = ByteRange::new(56, 64);
        let c = ByteRange::new(64, 64);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        assert!(ByteRange::new(8, 0).is_empty());
        assert!(!ByteRange::new(8, 0).overlaps(&a));
    }

    #[test]
    fn footprints_of_a_map_kernel() {
        let k = Fake; // uses x and y, no scalars
        let slice = CoreSlice {
            elems: 16,
            x_base: 0,
            y_base: 512,
            out_base: 512,
            args_base: 1024,
            core_index: 0,
        };
        let reads = slice.read_ranges(&k);
        assert_eq!(
            reads,
            vec![
                ByteRange::new(0, 128),   // x
                ByteRange::new(512, 128), // y (streamed in)
                ByteRange::new(1024, 8),  // args: zero word only
            ]
        );
        assert_eq!(slice.write_ranges(&k), vec![ByteRange::new(512, 128)]);
    }

    #[test]
    fn empty_slice_has_no_data_footprint() {
        let k = Fake;
        let slice = CoreSlice {
            elems: 0,
            x_base: 0,
            y_base: 0,
            out_base: 0,
            args_base: 64,
            core_index: 3,
        };
        // Only the shared args area remains readable; nothing is written.
        assert_eq!(slice.read_ranges(&k), vec![ByteRange::new(64, 8)]);
        assert!(slice.write_ranges(&k).is_empty());
    }

    #[test]
    fn default_dma_volumes() {
        let k = Fake;
        assert_eq!(k.dma_in_words(100), 200); // x + y
        assert_eq!(k.dma_out_words(100, 8), 100); // map: y back
    }

    #[test]
    fn golden_output_unwrap() {
        assert_eq!(GoldenOutput::Vector(vec![1.0]).unwrap_vector(), vec![1.0]);
        assert_eq!(GoldenOutput::Scalar(2.0).unwrap_scalar(), 2.0);
    }

    #[test]
    #[should_panic(expected = "expected scalar")]
    fn unwrap_scalar_on_vector_panics() {
        GoldenOutput::Vector(vec![]).unwrap_scalar();
    }

    #[test]
    #[should_panic(expected = "expected vector")]
    fn unwrap_vector_on_scalar_panics() {
        GoldenOutput::Scalar(0.0).unwrap_vector();
    }
}
