//! Property tests for the streaming kernels (SSR DAXPY and GEMV):
//! numerical equivalence with their scalar counterparts and linearity of
//! their cost models.

use proptest::prelude::*;

use mpsoc_isa::{Interpreter, VecPort};
use mpsoc_kernels::{CoreSlice, Daxpy, DaxpySsr, Gemv, GoldenOutput, Kernel};
use mpsoc_sim::rng::SplitMix64;

/// Runs a map kernel on one simulated core; returns `(y_out, cycles)`.
fn run_map(kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> (Vec<f64>, u64) {
    let n = y.len();
    let x_words = x.len();
    let args_word = x_words + n;
    let slice = CoreSlice {
        elems: n as u64,
        x_base: 0,
        y_base: (x_words * 8) as u64,
        out_base: (x_words * 8) as u64,
        args_base: (args_word * 8) as u64,
        core_index: 0,
    };
    let program = kernel.codegen(&slice).expect("codegen");
    let args = kernel.scalar_args();
    let mut data = vec![0.0; args_word + args.len() + 1];
    data[..x_words].copy_from_slice(x);
    data[x_words..x_words + n].copy_from_slice(y);
    data[args_word..args_word + args.len()].copy_from_slice(&args);
    let mut port = VecPort::new(data);
    let report = Interpreter::new().run(&program, &mut port).expect("run");
    (
        port.data()[x_words..x_words + n].to_vec(),
        report.finish.as_u64(),
    )
}

proptest! {
    /// The SSR codegen and the scalar codegen compute bit-identical
    /// results for any operands.
    #[test]
    fn ssr_equals_scalar_daxpy(
        a in -50.0f64..50.0,
        n in 0usize..300,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        rng.fill_f64(&mut x, -20.0, 20.0);
        rng.fill_f64(&mut y, -20.0, 20.0);
        let (scalar, _) = run_map(&Daxpy::new(a), &x, &y);
        let (ssr, _) = run_map(&DaxpySsr::new(a), &x, &y);
        prop_assert_eq!(scalar, ssr);
    }

    /// SSR cost is exactly linear: elems + constant.
    #[test]
    fn ssr_cost_is_exactly_linear(n in 10usize..400, delta in 1usize..100) {
        let cost = |n: usize| {
            let x = vec![1.0; n];
            let y = vec![0.5; n];
            run_map(&DaxpySsr::new(2.0), &x, &y).1
        };
        prop_assert_eq!(cost(n + delta) - cost(n), delta as u64);
    }

    /// GEMV matches the golden reference for arbitrary shapes.
    #[test]
    fn gemv_matches_golden(
        n in 0usize..60,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut v = vec![0.0; k];
        rng.fill_f64(&mut v, -3.0, 3.0);
        let mut a = vec![0.0; n * k];
        rng.fill_f64(&mut a, -3.0, 3.0);
        let y = vec![0.0; n];
        let kernel = Gemv::new(v);
        let (got, _) = run_map(&kernel, &a, &y);
        match kernel.golden(&a, &y) {
            GoldenOutput::Vector(want) => prop_assert_eq!(got, want),
            GoldenOutput::Scalar(_) => prop_assert!(false, "gemv is a map kernel"),
        }
    }

    /// GEMV cost grows linearly in rows for fixed K.
    #[test]
    fn gemv_cost_linear_in_rows(k in 1usize..6) {
        let cost = |n: usize, k: usize| {
            let a = vec![1.0; n * k];
            let y = vec![0.0; n];
            run_map(&Gemv::new(vec![1.0; k]), &a, &y).1
        };
        let t20 = cost(20, k);
        let t40 = cost(40, k);
        let t60 = cost(60, k);
        // Equal marginal cost per 20 rows.
        prop_assert_eq!(t40 - t20, t60 - t40);
    }
}
