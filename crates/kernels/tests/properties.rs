//! Property tests for the kernel zoo: partitioning invariants and
//! numerical equivalence with the golden references.

use proptest::prelude::*;

use mpsoc_isa::{Interpreter, VecPort};
use mpsoc_kernels::partition::{split_even, JobPartition};
use mpsoc_kernels::{Axpby, CoreSlice, Daxpy, GoldenOutput, Kernel, Scale, Sum, VecAdd};

/// Runs a kernel on a single simulated core over a toy TCDM and returns
/// `(map output, reduce partial)`.
fn run_single_core(kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> (Vec<f64>, f64) {
    let n = x.len();
    let out_word = 2 * n;
    let args_word = out_word + 1;
    let slice = CoreSlice {
        elems: n as u64,
        x_base: 0,
        y_base: (n * 8) as u64,
        out_base: (out_word * 8) as u64,
        args_base: (args_word * 8) as u64,
        core_index: 0,
    };
    let program = kernel.codegen(&slice).expect("codegen");
    let args = kernel.scalar_args();
    let mut data = vec![0.0; args_word + args.len() + 1];
    data[..n].copy_from_slice(x);
    data[n..2 * n].copy_from_slice(y);
    data[args_word..args_word + args.len()].copy_from_slice(&args);
    let mut port = VecPort::new(data);
    Interpreter::new().run(&program, &mut port).expect("run");
    (port.data()[n..2 * n].to_vec(), port.data()[out_word])
}

proptest! {
    /// `split_even` tiles `0..total` exactly with balanced chunk sizes.
    #[test]
    fn split_even_tiles_exactly(total in 0u64..100_000, parts in 1usize..300) {
        let chunks = split_even(total, parts);
        prop_assert_eq!(chunks.len(), parts);
        let mut cursor = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, cursor);
            cursor = c.end();
        }
        prop_assert_eq!(cursor, total);
        let max = chunks.iter().map(|c| c.count).max().unwrap();
        let min = chunks.iter().map(|c| c.count).min().unwrap();
        prop_assert!(max - min <= 1, "chunk sizes must differ by at most one");
        // Larger chunks come first.
        prop_assert!(chunks.windows(2).all(|w| w[0].count >= w[1].count));
    }

    /// The two-level job partition also tiles exactly, and its critical
    /// path (max core chunk) is within one of the ideal balance.
    #[test]
    fn job_partition_tiles_and_balances(
        total in 0u64..50_000,
        clusters in 1usize..=64,
        cores in 1usize..=16,
    ) {
        let p = JobPartition::new(total, clusters, cores);
        let mut cursor = 0;
        for cluster in 0..clusters {
            for chunk in p.cores(cluster) {
                prop_assert_eq!(chunk.start, cursor);
                cursor = chunk.end();
            }
        }
        prop_assert_eq!(cursor, total);
        let ideal = total.div_ceil(clusters as u64).div_ceil(cores as u64);
        prop_assert!(p.max_core_elems() <= ideal + 1);
    }

    /// DAXPY on the simulated core equals the golden reference bit-for-bit
    /// for arbitrary sizes and operands.
    #[test]
    fn daxpy_matches_reference(
        a in -100.0f64..100.0,
        n in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = mpsoc_sim::rng::SplitMix64::new(seed);
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        rng.fill_f64(&mut x, -50.0, 50.0);
        rng.fill_f64(&mut y, -50.0, 50.0);
        let kernel = Daxpy::new(a);
        let (got, _) = run_single_core(&kernel, &x, &y);
        let want = Daxpy::reference(a, &x, &y);
        prop_assert_eq!(got, want);
    }

    /// Each map kernel in the zoo equals its golden reference.
    #[test]
    fn map_zoo_matches_goldens(
        n in 1usize..120,
        seed in any::<u64>(),
        pick in 0u8..3,
    ) {
        let mut rng = mpsoc_sim::rng::SplitMix64::new(seed);
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        rng.fill_f64(&mut x, -10.0, 10.0);
        rng.fill_f64(&mut y, -10.0, 10.0);
        let kernel: Box<dyn Kernel> = match pick {
            0 => Box::new(Axpby::new(0.5, -2.0)),
            1 => Box::new(Scale::new(-3.0)),
            _ => Box::new(VecAdd::new()),
        };
        let (got, _) = run_single_core(kernel.as_ref(), &x, &y);
        match kernel.golden(&x, &y) {
            GoldenOutput::Vector(want) => prop_assert_eq!(got, want),
            GoldenOutput::Scalar(_) => prop_assert!(false, "map kernel produced scalar"),
        }
    }

    /// Sum's single-core partial equals sequential summation exactly
    /// (same association order on one core).
    #[test]
    fn sum_single_core_partial_is_exact(
        values in prop::collection::vec(-100.0f64..100.0, 0..150),
    ) {
        let y = vec![0.0; values.len()];
        let (_, partial) = run_single_core(&Sum::new(), &values, &y);
        let expected: f64 = values.iter().sum();
        prop_assert_eq!(partial, expected);
    }

    /// DAXPY compute time is linear in the element count: marginal cost
    /// per element stays within [2.4, 3.4] cycles once past the prologue.
    #[test]
    fn daxpy_cost_is_linear(n in 20usize..400) {
        let cost = |n: usize| {
            let x = vec![1.0; n];
            let y = vec![2.0; n];
            let kernel = Daxpy::new(2.0);
            let slice = CoreSlice {
                elems: n as u64,
                x_base: 0,
                y_base: (n * 8) as u64,
                out_base: (n * 8) as u64,
                args_base: (2 * n * 8) as u64,
                core_index: 0,
            };
            let program = kernel.codegen(&slice).unwrap();
            let mut data = Vec::new();
            data.extend_from_slice(&x);
            data.extend_from_slice(&y);
            data.push(2.0);
            let mut port = VecPort::new(data);
            Interpreter::new().run(&program, &mut port).unwrap().finish.as_u64()
        };
        let t0 = cost(n);
        let t1 = cost(n + 10);
        let marginal = (t1 as f64 - t0 as f64) / 10.0;
        prop_assert!((2.4..=3.4).contains(&marginal),
            "marginal cost {marginal} cycles/element at n={n}");
    }
}
