//! The self-healing layer's no-op guarantee at fleet scope: a
//! co-simulated fleet with a zero-fault [`FaultPlan`] installed (any
//! seed, every site disarmed) must quarantine nothing and produce
//! **byte-identical** reports to the same fleet with no plan installed
//! at all. Any randomness consumed or branch flipped by a disarmed
//! fault hook — or any health-machinery side effect on a healthy
//! fleet — shows up here as a serialization diff.

use mpsoc_offload::Offloader;
use mpsoc_sched::{KernelId, ModelTable, ServiceBackend};
use mpsoc_serve::{Fleet, FleetConfig, FleetSlo, PlacementPolicy};
use mpsoc_soc::{FaultPlan, SocConfig};
use proptest::prelude::*;

/// One co-simulated fleet run serialized to its report bytes. The SLO
/// summary and the full resolution log both go into the artifact, so a
/// divergence anywhere — placement, timing, retries, health counters —
/// fails the byte comparison.
fn run_bytes(
    plan: Option<FaultPlan>,
    seed: u64,
    jobs: u64,
    redirect_budget: u32,
    failover: bool,
) -> String {
    let config = FleetConfig {
        shards: 2,
        clusters_per_shard: 2,
        // Generous: backpressure never fires here, so a nonzero
        // redirect budget has nothing to act on and must change nothing.
        queue_limit: 64,
        placement: PlacementPolicy::ModelGuided,
        steal: true,
        redirect_budget,
        failover,
    };
    let table = ModelTable::paper_defaults();
    let backends = (0..config.shards)
        .map(|i| {
            let mut off = Offloader::new(SocConfig::with_clusters(config.clusters_per_shard))
                .expect("offloader");
            if let Some(plan) = &plan {
                off.install_faults(plan.clone());
            }
            ServiceBackend::co_simulated(off, seed ^ i as u64)
        })
        .collect();
    let mut fleet = Fleet::with_backends(config, &table, backends);
    for k in 0..jobs {
        let n = 256 << (k % 3);
        fleet
            .submit(KernelId::Daxpy, n, 500_000, k * 400)
            .expect("submit");
    }
    fleet.drain().expect("drain");
    let slo = FleetSlo::from_fleet(&fleet);
    assert_eq!(slo.quarantined_clusters, 0, "zero faults, zero quarantine");
    assert_eq!(slo.dead_shards, 0);
    assert_eq!(slo.failovers, 0);
    assert!(slo.per_shard.iter().all(|s| s.state == "healthy"));
    serde_json::to_string(&(slo, fleet.completed().to_vec())).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Zero-fault plans are observationally invisible to the serving
    /// stack, whatever their seed, and flipping the self-healing knobs
    /// (redirect budget, failover) changes nothing on a healthy fleet.
    #[test]
    fn zero_fault_fleets_report_byte_identically(
        seed in any::<u64>(),
        jobs in 1u64..10,
        redirect_budget in 0u32..2,
        failover in any::<bool>(),
    ) {
        let clean = run_bytes(None, seed, jobs, 0, false);
        let planned = run_bytes(
            Some(FaultPlan::with_seed(seed)),
            seed,
            jobs,
            0,
            false,
        );
        prop_assert_eq!(&clean, &planned, "a zero-fault plan perturbed the fleet");
        // The recovery machinery must be pure overheadless bookkeeping
        // while every shard is healthy: same bytes with it armed.
        let armed = run_bytes(None, seed, jobs, redirect_budget, failover);
        prop_assert_eq!(&clean, &armed, "health machinery perturbed a healthy fleet");
    }
}
