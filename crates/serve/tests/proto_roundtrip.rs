//! Property tests for the wire codec: encode→decode identity over
//! randomized protocol messages, under randomized delivery chunking,
//! plus a no-panic property on adversarial byte streams. The targeted
//! adversarial cases (bad magic, bad version, oversized, truncated,
//! malformed JSON) are unit-tested in `wire.rs`; these properties cover
//! the combinatorial space around them.

use mpsoc_sched::{KernelId, RejectReason};
use mpsoc_serve::{encode, Decoder, FleetSlo, Request, Response, ShardSlo, StatsReport};
use proptest::prelude::*;

/// Deterministically maps free u64 dice onto a `Request`. Every 5th
/// roll of `kernel` becomes a `GetStats` poll instead of a submission.
fn request_from(dice: (u64, u64, u64, u64)) -> Request {
    let (client_job, kernel, n, deadline) = dice;
    if kernel % 5 == 4 {
        return Request::GetStats;
    }
    Request::SubmitJob {
        client_job,
        kernel: KernelId::ALL[(kernel % KernelId::ALL.len() as u64) as usize],
        n: 1 + n % 1_000_000,
        deadline: 1 + deadline % 10_000_000,
    }
}

/// Deterministically maps free u64 dice onto a `StatsReport`,
/// exercising `None`/`Some` quantiles, empty and populated shard lists,
/// and the counter vectors.
fn stats_report_from(dice: (u64, u64, u64)) -> StatsReport {
    let (a, b, c) = dice;
    let shards = a % 4;
    let per_shard = (0..shards)
        .map(|i| ShardSlo {
            shard: i as u32,
            accepted: b.rotate_left(i as u32) % 1000,
            rejected: c % 100,
            queue_full: c % 10,
            offloaded: b % 500,
            host_runs: b % 7,
            steals_out: a % 5,
            steals_in: c % 5,
            state: ["healthy", "degraded", "dead"][((a ^ i) % 3) as usize].to_owned(),
            quarantined_clusters: c % 4,
            failovers: b % 6,
            redirects: a % 6,
            p50: if (b ^ i) % 2 == 0 {
                Some(b % 100_000)
            } else {
                None
            },
            p99: if (c ^ i) % 2 == 0 {
                Some(c % 900_000)
            } else {
                None
            },
            utilization: (b % 8) as f64 / 8.0,
        })
        .collect();
    let slo = FleetSlo {
        placement: ["round_robin", "least_loaded", "model_guided"][(a % 3) as usize].to_owned(),
        shards,
        clusters_per_shard: 1 + b % 16,
        submitted: a % 10_000,
        completed: b % 10_000,
        offloaded: b % 5_000,
        host_runs: b % 11,
        rejected: c % 1_000,
        queue_full: c % 100,
        steals: a % 50,
        retries: a % 3,
        quarantined_clusters: c % 16,
        dead_shards: a % 4,
        failovers: b % 40,
        redirects: c % 40,
        deadline_met: b % 9_000,
        attainment: (a % 9) as f64 / 8.0,
        p50: if a % 2 == 0 { Some(a % 70_000) } else { None },
        p99: if b % 2 == 0 { Some(b % 800_000) } else { None },
        mean_latency: (c % 100_000) as f64 / 4.0,
        makespan: c % 10_000_000,
        per_shard,
    };
    StatsReport {
        time: a,
        slo,
        reject_reasons: [
            "degraded_machine",
            "infeasible",
            "not_enough_clusters",
            "program_lint",
            "queue_full",
        ]
        .iter()
        .take((b % 6) as usize)
        .map(|k| ((*k).to_owned(), c % 77))
        .collect(),
        counters: (0..a % 5)
            .map(|i| (format!("serve.counter_{i}"), b.wrapping_add(i)))
            .collect(),
    }
}

/// Deterministically maps free u64 dice onto a `Response`, exercising
/// every variant and every `RejectReason`.
fn response_from(dice: (u64, u64, u64, u64, u64)) -> Response {
    let (variant, client_job, a, b, c) = dice;
    match variant % 3 {
        0 => Response::JobAccepted {
            client_job,
            shard: (a % 64) as u32,
        },
        1 => Response::JobRejected {
            client_job,
            reason: match a % 5 {
                0 => RejectReason::Infeasible,
                1 => RejectReason::NotEnoughClusters { required: b },
                2 => RejectReason::ProgramLint {
                    errors: (b % 100) as u32,
                },
                3 => RejectReason::DegradedMachine {
                    required: b,
                    healthy: c,
                },
                _ => RejectReason::QueueFull { depth: b },
            },
        },
        _ => Response::JobComplete {
            client_job,
            shard: (a % 64) as u32,
            start: b,
            finish: b + c % 1_000_000,
            on_host: c % 2 == 0,
            deadline_met: b % 2 == 0,
            retries: (c % 4) as u32,
        },
    }
}

proptest! {
    /// One encoded request decodes back to itself.
    #[test]
    fn request_round_trips(
        client_job in any::<u64>(),
        kernel in any::<u64>(),
        n in any::<u64>(),
        deadline in any::<u64>(),
    ) {
        let msg = request_from((client_job, kernel, n, deadline));
        let mut dec = Decoder::new();
        dec.push(&encode(&msg));
        let got = dec.next_message::<Request>().unwrap();
        prop_assert_eq!(got, Some(msg));
        prop_assert_eq!(dec.next_message::<Request>().unwrap(), None);
        prop_assert!(dec.finish().is_ok());
    }

    /// One encoded response decodes back to itself, across all variants
    /// and reject reasons.
    #[test]
    fn response_round_trips(
        variant in any::<u64>(),
        client_job in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let msg = response_from((variant, client_job, a, b, c));
        let mut dec = Decoder::new();
        dec.push(&encode(&msg));
        let got = dec.next_message::<Response>().unwrap();
        prop_assert_eq!(got, Some(msg));
        prop_assert!(dec.finish().is_ok());
    }

    /// A whole stream of messages survives arbitrary re-chunking: the
    /// decoder reassembles exactly the sent sequence no matter how the
    /// bytes are split in transit.
    #[test]
    fn chunked_streams_round_trip(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        chunk in 1usize..32,
    ) {
        let msgs: Vec<Response> = seeds
            .iter()
            .map(|&s| response_from((s, s ^ 0x9e37, s >> 3, s >> 7, s >> 11)))
            .collect();
        let stream: Vec<u8> = msgs.iter().flat_map(encode).collect();
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.push(piece);
            while let Some(m) = dec.next_message::<Response>().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert!(dec.finish().is_ok());
    }

    /// A `Stats` response — the largest, most deeply nested message in
    /// the vocabulary — round-trips across `None`/`Some` quantiles,
    /// empty and populated shard lists, and both counter vectors.
    #[test]
    fn stats_report_round_trips(
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let msg = Response::Stats { report: stats_report_from((a, b, c)) };
        let mut dec = Decoder::new();
        dec.push(&encode(&msg));
        let got = dec.next_message::<Response>().unwrap();
        prop_assert_eq!(got, Some(msg));
        prop_assert!(dec.finish().is_ok());
    }

    /// A well-framed payload of arbitrary bytes — valid magic, version
    /// and length, garbage JSON — never panics typed decoding, for
    /// either direction of the v2 vocabulary. It decodes or it returns
    /// a typed error.
    #[test]
    fn framed_garbage_never_panics_typed_decode(
        payload in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        // Hand-build the frame around the garbage so only the payload
        // is adversarial: 2-byte magic "MJ", version, u32 LE length.
        let mut frame = Vec::with_capacity(7 + payload.len());
        frame.extend_from_slice(b"MJ");
        frame.push(mpsoc_serve::PROTOCOL_VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut dec = Decoder::new();
        dec.push(&frame);
        let _ = dec.next_message::<Request>();
        let mut dec = Decoder::new();
        dec.push(&frame);
        let _ = dec.next_message::<Response>();
    }

    /// Adversarial bytes never panic the decoder: any junk either yields
    /// frames, a typed error, or a truncation report.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        chunk in 1usize..16,
    ) {
        let mut dec = Decoder::new();
        let mut errored = false;
        for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break;
                    }
                }
            }
            if errored {
                break;
            }
        }
        if !errored {
            // Whatever is left is either a clean boundary or a typed
            // truncation — finish() never panics either way.
            let _ = dec.finish();
        }
    }
}
