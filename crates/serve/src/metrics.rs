//! Metrics exposition: a [`StatsReport`] rendered for scrapers.
//!
//! Two formats, both deterministic (name-sorted, fixed field order):
//!
//! - **JSON** — [`StatsReport`] is plain serde data, so
//!   [`stats_json`] is just the canonical serialization.
//! - **Prometheus text** — [`prometheus_text`] renders the classic
//!   `# TYPE` / `name{labels} value` exposition format. Counter names
//!   map `serve.foo` → `mpsoc_serve_foo`; per-shard breakdowns become
//!   `{shard="i"}` labels on the same family instead of distinct names;
//!   rejection kinds become `mpsoc_serve_rejects_by_reason{reason=…}`.
//!
//! Wall-clock throughput ([`ThroughputRow`]) is appended by the caller
//! when available — it lives outside [`StatsReport`] so the protocol
//! stays replay-deterministic — and renders as
//! `mpsoc_throughput_cycles_per_wall_second{component=…}`.

use std::fmt::Write as _;

use crate::proto::StatsReport;
use mpsoc_telemetry::ThroughputRow;

/// Series within one Prometheus family: `(shard label, value)` pairs,
/// `None` for the fleet-global series.
type CounterSeries = Vec<(Option<String>, u64)>;

/// The report as canonical JSON (what a `/stats` endpoint would serve).
pub fn stats_json(report: &StatsReport) -> String {
    serde_json::to_string(report).expect("StatsReport serializes")
}

/// The report in Prometheus-style text exposition format. Deterministic:
/// families appear in a fixed order, series within a family are sorted
/// by label value.
pub fn prometheus_text(report: &StatsReport, throughput: &[ThroughputRow]) -> String {
    let mut out = String::new();
    let slo = &report.slo;

    // SLO gauges first: the numbers an alert would page on.
    gauge(&mut out, "mpsoc_serve_time_cycles", report.time as f64);
    gauge(&mut out, "mpsoc_serve_submitted", slo.submitted as f64);
    gauge(&mut out, "mpsoc_serve_attainment", slo.attainment);
    gauge(&mut out, "mpsoc_serve_makespan_cycles", slo.makespan as f64);
    if let Some(p50) = slo.p50 {
        gauge(&mut out, "mpsoc_serve_latency_p50_cycles", p50 as f64);
    }
    if let Some(p99) = slo.p99 {
        gauge(&mut out, "mpsoc_serve_latency_p99_cycles", p99 as f64);
    }

    // Rejection breakdown by kind.
    writeln!(out, "# TYPE mpsoc_serve_rejects_by_reason counter").expect("write");
    for (reason, count) in &report.reject_reasons {
        writeln!(
            out,
            "mpsoc_serve_rejects_by_reason{{reason=\"{reason}\"}} {count}"
        )
        .expect("write");
    }

    // Counters: global `serve.*` names become bare series, per-shard
    // `shard<i>.serve.*` names fold into the same family with a shard
    // label. `report.counters` is name-sorted, which groups families
    // and orders shard labels numerically up to 10 shards and
    // lexicographically beyond — stable either way.
    let mut families: Vec<(String, CounterSeries)> = Vec::new();
    for (name, value) in &report.counters {
        let (shard, metric) = split_shard(name);
        let family = format!("mpsoc_{}", metric.replace('.', "_"));
        match families.iter_mut().find(|(f, _)| *f == family) {
            Some((_, series)) => series.push((shard, *value)),
            None => families.push((family, vec![(shard, *value)])),
        }
    }
    families.sort_by(|a, b| a.0.cmp(&b.0));
    for (family, mut series) in families {
        writeln!(out, "# TYPE {family} counter").expect("write");
        series.sort_by(|a, b| a.0.cmp(&b.0));
        for (shard, value) in series {
            match shard {
                None => writeln!(out, "{family} {value}").expect("write"),
                Some(s) => writeln!(out, "{family}{{shard=\"{s}\"}} {value}").expect("write"),
            }
        }
    }

    if !throughput.is_empty() {
        writeln!(out, "# TYPE mpsoc_throughput_cycles_per_wall_second gauge").expect("write");
        for row in throughput {
            writeln!(
                out,
                "mpsoc_throughput_cycles_per_wall_second{{component=\"{}\"}} {}",
                row.component, row.cycles_per_wall_second
            )
            .expect("write");
        }
    }
    out
}

fn gauge(out: &mut String, name: &str, value: f64) {
    writeln!(out, "# TYPE {name} gauge").expect("write");
    writeln!(out, "{name} {value}").expect("write");
}

/// Splits `shard3.serve.accepted` into `(Some("3"), "serve.accepted")`;
/// unprefixed names pass through as `(None, name)`.
fn split_shard(name: &str) -> (Option<String>, &str) {
    if let Some(rest) = name.strip_prefix("shard") {
        if let Some(dot) = rest.find('.') {
            let (index, metric) = rest.split_at(dot);
            if !index.is_empty() && index.bytes().all(|b| b.is_ascii_digit()) {
                return (Some(index.to_owned()), &metric[1..]);
            }
        }
    }
    (None, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{ClientScript, Daemon};
    use crate::fleet::{Fleet, FleetConfig, PlacementPolicy};
    use mpsoc_sched::{KernelId, ModelTable};

    fn report() -> StatsReport {
        let fleet = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 2,
                queue_limit: 2,
                placement: PlacementPolicy::LeastLoaded,
                steal: true,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        let mut daemon = Daemon::new(fleet);
        let mut script = ClientScript::new();
        for i in 0..30u64 {
            // A mix of servable jobs, backpressure (tight queue) and
            // infeasible deadlines, so several reject kinds appear.
            let deadline = if i % 7 == 0 { 300 } else { 25_000 };
            script.submit_at(i * 40, i, KernelId::Daxpy, 1024, deadline);
        }
        daemon.run(&[script]).expect("run");
        daemon.stats_report(9_999)
    }

    #[test]
    fn prometheus_text_is_deterministic_and_well_formed() {
        let r = report();
        let a = prometheus_text(&r, &[]);
        let b = prometheus_text(&r, &[]);
        assert_eq!(a, b, "same report renders identically");
        assert!(a.contains("# TYPE mpsoc_serve_attainment gauge"));
        assert!(a.contains("mpsoc_serve_rejects_by_reason{reason=\"infeasible\"}"));
        assert!(a.contains("mpsoc_serve_accepted "));
        assert!(a.contains("mpsoc_serve_accepted{shard=\"0\"}"));
        assert!(a.contains("mpsoc_serve_accepted{shard=\"1\"}"));
        // Every non-comment line is `name value` or `name{labels} value`.
        for line in a.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn reject_reason_counters_serialize_sorted() {
        let r = report();
        assert!(!r.reject_reasons.is_empty(), "mix produces rejections");
        assert!(
            r.reject_reasons.windows(2).all(|w| w[0].0 < w[1].0),
            "reasons are name-sorted"
        );
        let json_a = stats_json(&r);
        let json_b = stats_json(&r);
        assert_eq!(json_a, json_b);
        // The sorted key order is visible in the serialized form too.
        let reject_total: u64 = r.reject_reasons.iter().map(|(_, v)| v).sum();
        let counted = r
            .counters
            .iter()
            .find(|(k, _)| k == "serve.rejected")
            .map_or(0, |(_, v)| *v);
        assert_eq!(reject_total, counted);
    }

    #[test]
    fn every_reject_reason_has_a_distinct_sorted_counter_key() {
        use mpsoc_sched::RejectReason;
        // One instance per variant. The exhaustive match below makes
        // this test fail to *compile* when a variant is added without
        // being listed here — and listing it forces a counter key.
        let all = [
            RejectReason::Infeasible,
            RejectReason::NotEnoughClusters { required: 4 },
            RejectReason::ProgramLint { errors: 2 },
            RejectReason::DegradedMachine {
                required: 8,
                healthy: 3,
            },
            RejectReason::StaticInfeasible { best: 500 },
            RejectReason::QueueFull { depth: 7 },
        ];
        for reason in &all {
            match reason {
                RejectReason::Infeasible
                | RejectReason::NotEnoughClusters { .. }
                | RejectReason::ProgramLint { .. }
                | RejectReason::DegradedMachine { .. }
                | RejectReason::StaticInfeasible { .. }
                | RejectReason::QueueFull { .. } => {}
            }
        }
        let mut keys: Vec<&str> = all.iter().map(RejectReason::counter_key).collect();
        let unsorted = keys.clone();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), all.len(), "counter keys collide: {unsorted:?}");
        assert_eq!(
            keys,
            [
                "degraded_machine",
                "infeasible",
                "not_enough_clusters",
                "program_lint",
                "queue_full",
                "static_infeasible",
            ],
            "stable sorted exposition names"
        );
        // Each key renders as a valid Prometheus label value.
        for key in keys {
            assert!(
                key.bytes().all(|b| b.is_ascii_lowercase() || b == b'_'),
                "{key:?} is not snake_case"
            );
        }
    }

    #[test]
    fn health_counters_fold_into_shard_labeled_families() {
        use mpsoc_noc::ClusterMask;
        let mut fleet = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 2,
                queue_limit: 4,
                placement: PlacementPolicy::LeastLoaded,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        fleet.quarantine_shard(0, ClusterMask::single(0));
        let mut daemon = Daemon::new(fleet);
        let mut script = ClientScript::new();
        script.submit_at(0, 1, KernelId::Daxpy, 1024, 100_000);
        daemon.run(&[script]).expect("run");
        let r = daemon.stats_report(0);
        let text = prometheus_text(&r, &[]);
        // The `serve.health.*` family needs no exposition-side support:
        // the shard-prefix fold gives it `{shard=…}` labels like any
        // other counter.
        assert!(text.contains("mpsoc_serve_health_quarantined_clusters{shard=\"0\"} 1"));
        assert!(text.contains("mpsoc_serve_health_shard_state{shard=\"0\"} 1"));
        assert_eq!(r.slo.quarantined_clusters, 1);
        assert_eq!(r.slo.per_shard[0].state, "degraded");
        assert_eq!(r.slo.per_shard[1].state, "healthy");
        assert_eq!(r.slo.dead_shards, 0);
    }

    #[test]
    fn throughput_rows_render_with_component_labels() {
        let r = report();
        let rows = vec![ThroughputRow {
            component: "sched.engine".to_owned(),
            sim_cycles: 1_000_000,
            wall_seconds: 0.5,
            cycles_per_wall_second: 2_000_000.0,
        }];
        let text = prometheus_text(&r, &rows);
        assert!(text.contains(
            "mpsoc_throughput_cycles_per_wall_second{component=\"sched.engine\"} 2000000"
        ));
    }
}
