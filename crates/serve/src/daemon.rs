//! The serving daemon: one event loop multiplexing many client sessions
//! over in-process duplex pipes onto the shard fleet.
//!
//! A client is a *script* — a list of `(virtual time, Request)` sends,
//! non-decreasing in time — because determinism is the contract: the
//! same scripts against the same fleet seed must produce byte-identical
//! response streams. The loop merges all clients' sends into one global
//! time order (ties broken by session index, then send order), moves the
//! encoded bytes through each session's [`Duplex`], decodes frames
//! incrementally, and drives the fleet:
//!
//! - `SubmitJob` → [`Fleet::submit`] at the send's virtual time; the
//!   verdict returns immediately as `JobAccepted` / `JobRejected`.
//! - Completions surface whenever the fleet advances; each becomes a
//!   `JobComplete` at its finish time, delivered to the session that
//!   submitted the job.
//!
//! Responses are timestamped and globally ordered before framing, so a
//! session's outbound stream is in virtual-time order even though
//! completions are discovered lazily. The daemon never blocks: clients
//! that send garbage get a typed [`ServeError::Decode`] naming their
//! session, not a hang.

use std::collections::BTreeMap;
use std::fmt;

use mpsoc_sched::{JobOutcome, SchedError, ShardDecision};

use crate::fleet::Fleet;
use crate::proto::{Request, Response, StatsReport};
use crate::slo::FleetSlo;
use crate::transport::Duplex;
use crate::wire::{encode, DecodeError, Decoder};

/// One scripted client session: timed protocol sends.
#[derive(Debug, Clone, Default)]
pub struct ClientScript {
    /// `(virtual time, request)` pairs, non-decreasing in time.
    pub sends: Vec<(u64, Request)>,
}

impl ClientScript {
    /// An empty script.
    pub fn new() -> Self {
        ClientScript::default()
    }

    /// Appends a submission at `time`.
    pub fn submit_at(
        &mut self,
        time: u64,
        client_job: u64,
        kernel: mpsoc_sched::KernelId,
        n: u64,
        deadline: u64,
    ) -> &mut Self {
        self.sends.push((
            time,
            Request::SubmitJob {
                client_job,
                kernel,
                n,
                deadline,
            },
        ));
        self
    }

    /// Appends a live-statistics poll at `time`.
    pub fn poll_stats_at(&mut self, time: u64) -> &mut Self {
        self.sends.push((time, Request::GetStats));
        self
    }
}

/// What one serving run produced for one session.
#[derive(Debug, Clone, Default)]
pub struct SessionLog {
    /// The framed response byte stream (decode with
    /// [`SessionLog::responses`]).
    pub outbound: Vec<u8>,
}

impl SessionLog {
    /// Decodes the outbound stream back into typed responses.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the stream is corrupt (a daemon bug, not a
    /// client condition).
    pub fn responses(&self) -> Result<Vec<Response>, DecodeError> {
        let mut dec = Decoder::new();
        dec.push(&self.outbound);
        let mut out = Vec::new();
        while let Some(r) = dec.next_message::<Response>()? {
            out.push(r);
        }
        dec.finish()?;
        Ok(out)
    }
}

/// Daemon failure: a scheduling error or a client's undecodable bytes.
#[derive(Debug)]
pub enum ServeError {
    /// The fleet failed (service backend error, stalled session).
    Sched(SchedError),
    /// A session's inbound byte stream failed to decode.
    Decode {
        /// Which session sent the bytes.
        session: usize,
        /// What was wrong with them.
        error: DecodeError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sched(e) => write!(f, "fleet error: {e}"),
            ServeError::Decode { session, error } => {
                write!(f, "session {session}: {error}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sched(e) => Some(e),
            ServeError::Decode { error, .. } => Some(error),
        }
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

/// The serving daemon: fleet + per-session transports.
pub struct Daemon {
    fleet: Fleet,
}

impl Daemon {
    /// A daemon over `fleet`.
    pub fn new(fleet: Fleet) -> Self {
        Daemon { fleet }
    }

    /// The fleet (for SLO summaries after a run).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Runs the scripts to completion and returns one [`SessionLog`] per
    /// script (same order).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on fleet failures or undecodable client bytes.
    pub fn run(&mut self, scripts: &[ClientScript]) -> Result<Vec<SessionLog>, ServeError> {
        let _prof = mpsoc_sim::profile::scope("serve.daemon.run");
        // Merge all sends into (time, session, send index) order.
        let mut events: Vec<(u64, usize, usize)> = Vec::new();
        for (session, script) in scripts.iter().enumerate() {
            assert!(
                script.sends.windows(2).all(|w| w[0].0 <= w[1].0),
                "client script must be non-decreasing in time"
            );
            for (idx, &(t, _)) in script.sends.iter().enumerate() {
                events.push((t, session, idx));
            }
        }
        events.sort();

        let mut pipes: Vec<Duplex> = scripts.iter().map(|_| Duplex::new()).collect();
        let mut decoders: Vec<Decoder> = scripts.iter().map(|_| Decoder::new()).collect();
        // Fleet job id → (session, client_job): the daemon's private
        // mapping between wire identity and fleet identity.
        let mut origin: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
        // Responses gathered as (virtual time, emit sequence, session).
        let mut responses: Vec<(u64, u64, usize, Response)> = Vec::new();
        let mut emit_seq = 0u64;
        let mut collected = 0usize;

        let emit = |responses: &mut Vec<(u64, u64, usize, Response)>,
                    emit_seq: &mut u64,
                    t: u64,
                    session: usize,
                    r: Response| {
            responses.push((t, *emit_seq, session, r));
            *emit_seq += 1;
        };

        for (t, session, idx) in events {
            // The "wire": the client's encoded frame crosses its pipe
            // now; the daemon drains and decodes incrementally.
            let (_, request) = scripts[session].sends[idx];
            pipes[session].client_send(&encode(&request));
            let inbound = pipes[session].server_drain();
            decoders[session].push(&inbound);
            loop {
                let decoded = decoders[session]
                    .next_message::<Request>()
                    .map_err(|error| ServeError::Decode { session, error })?;
                let Some(decoded) = decoded else {
                    break;
                };
                match decoded {
                    Request::SubmitJob {
                        client_job,
                        kernel,
                        n,
                        deadline,
                    } => {
                        let fleet_job = self.next_fleet_job_id();
                        let (shard, decision) = self.fleet.submit(kernel, n, deadline, t)?;
                        match decision {
                            ShardDecision::Queued { .. } | ShardDecision::Host { .. } => {
                                origin.insert(fleet_job, (session, client_job));
                                emit(
                                    &mut responses,
                                    &mut emit_seq,
                                    t,
                                    session,
                                    Response::JobAccepted { client_job, shard },
                                );
                            }
                            ShardDecision::Rejected { reason } => {
                                emit(
                                    &mut responses,
                                    &mut emit_seq,
                                    t,
                                    session,
                                    Response::JobRejected { client_job, reason },
                                );
                            }
                        }
                        // Completions the submit's advance uncovered.
                        Self::collect_completions(
                            &self.fleet,
                            &mut collected,
                            &origin,
                            |t, session, r| emit(&mut responses, &mut emit_seq, t, session, r),
                        );
                    }
                    // Stats polls are read-only: they snapshot the fleet
                    // *as of the last submission's advance* and never
                    // move virtual time, touch placement state, or
                    // trigger stealing — so a job stream replays
                    // byte-identically with or without polls.
                    Request::GetStats => {
                        let report = self.stats_report(t);
                        emit(
                            &mut responses,
                            &mut emit_seq,
                            t,
                            session,
                            Response::Stats { report },
                        );
                    }
                }
            }
        }

        self.fleet.drain()?;
        Self::collect_completions(&self.fleet, &mut collected, &origin, |t, session, r| {
            emit(&mut responses, &mut emit_seq, t, session, r)
        });

        // Deliver responses in global virtual-time order (stable by
        // emission sequence), so each session's stream is time-sorted.
        responses.sort_by_key(|&(t, seq, _, _)| (t, seq));
        for (_, _, session, response) in responses {
            pipes[session].server_send(&encode(&response));
        }
        Ok(pipes
            .into_iter()
            .map(|mut p| SessionLog {
                outbound: p.client_drain(),
            })
            .collect())
    }

    /// The fleet job id the *next* submission will get (fleet ids are
    /// sequential from 0).
    fn next_fleet_job_id(&self) -> u64 {
        self.fleet.submitted()
    }

    /// A [`StatsReport`] snapshot of the fleet as it stands, stamped
    /// with virtual time `time`. Read-only: building a report never
    /// advances the fleet, so it is safe to call mid-run (it is exactly
    /// what [`Request::GetStats`] gets) or after a drain.
    pub fn stats_report(&self, time: u64) -> StatsReport {
        let slo = FleetSlo::from_fleet(&self.fleet);
        let view = self.fleet.fleet_view();
        let counters: Vec<(String, u64)> = view
            .stats()
            .counters()
            .map(|(name, value)| (name.to_owned(), value))
            .collect();
        let reject_reasons = counters
            .iter()
            .filter_map(|(name, value)| {
                name.strip_prefix("serve.reject.")
                    .map(|kind| (kind.to_owned(), *value))
            })
            .collect();
        StatsReport {
            time,
            slo,
            reject_reasons,
            counters,
        }
    }

    /// Emits `JobComplete` for fleet records not yet reported.
    fn collect_completions(
        fleet: &Fleet,
        collected: &mut usize,
        origin: &BTreeMap<u64, (usize, u64)>,
        mut emit: impl FnMut(u64, usize, Response),
    ) {
        let records = fleet.completed();
        while *collected < records.len() {
            let fr = &records[*collected];
            *collected += 1;
            let (start, finish, on_host) = match fr.record.outcome {
                JobOutcome::Offloaded { start, finish, .. } => (start, finish, false),
                JobOutcome::Host { start, finish } => (start, finish, true),
                // Rejections were answered at submit time.
                JobOutcome::Rejected { .. } => continue,
            };
            let Some(&(session, client_job)) = origin.get(&fr.record.job.id) else {
                continue;
            };
            emit(
                finish,
                session,
                Response::JobComplete {
                    client_job,
                    shard: fr.shard,
                    start,
                    finish,
                    on_host,
                    deadline_met: !fr.record.missed_deadline(),
                    retries: fr.record.retries,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, PlacementPolicy};
    use mpsoc_sched::{KernelId, ModelTable, RejectReason};

    fn daemon(shards: usize, queue_limit: usize) -> Daemon {
        Daemon::new(Fleet::analytic(
            FleetConfig {
                shards,
                clusters_per_shard: 2,
                queue_limit,
                placement: PlacementPolicy::LeastLoaded,
                steal: true,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        ))
    }

    #[test]
    fn one_client_gets_accept_then_complete() {
        let mut script = ClientScript::new();
        script.submit_at(0, 77, KernelId::Daxpy, 1024, 100_000);
        let logs = daemon(2, 8).run(&[script]).expect("run");
        let responses = logs[0].responses().expect("decode");
        assert_eq!(responses.len(), 2);
        assert!(matches!(
            responses[0],
            Response::JobAccepted { client_job: 77, .. }
        ));
        match &responses[1] {
            Response::JobComplete {
                client_job,
                deadline_met,
                on_host,
                finish,
                ..
            } => {
                assert_eq!(*client_job, 77);
                assert!(deadline_met);
                assert!(!on_host);
                assert!(*finish > 0);
            }
            other => panic!("expected JobComplete, got {other:?}"),
        }
    }

    #[test]
    fn sessions_are_isolated_and_complete_in_time_order() {
        let mut a = ClientScript::new();
        a.submit_at(0, 1, KernelId::Daxpy, 4096, 1_000_000);
        a.submit_at(10, 2, KernelId::Daxpy, 1024, 1_000_000);
        let mut b = ClientScript::new();
        b.submit_at(5, 1, KernelId::Daxpy, 256, 1_000_000);
        let logs = daemon(2, 8).run(&[a, b]).expect("run");
        let ra = logs[0].responses().expect("decode");
        let rb = logs[1].responses().expect("decode");
        // Each session sees only its own jobs, accepts and completes.
        assert_eq!(ra.len(), 4);
        assert_eq!(rb.len(), 2);
        assert!(rb.iter().all(|r| r.client_job() == Some(1)));
        // Outbound streams are time-ordered: completions carry finish
        // times; every accept precedes its job's completion.
        let complete_pos = |rs: &[Response], cj: u64| {
            rs.iter()
                .position(
                    |r| matches!(r, Response::JobComplete { client_job, .. } if *client_job == cj),
                )
                .expect("completion present")
        };
        let accept_pos = |rs: &[Response], cj: u64| {
            rs.iter()
                .position(
                    |r| matches!(r, Response::JobAccepted { client_job, .. } if *client_job == cj),
                )
                .expect("accept present")
        };
        assert!(accept_pos(&ra, 1) < complete_pos(&ra, 1));
        assert!(accept_pos(&ra, 2) < complete_pos(&ra, 2));
    }

    #[test]
    fn backpressure_surfaces_as_job_rejected() {
        let mut script = ClientScript::new();
        for i in 0..20 {
            script.submit_at(0, i, KernelId::Daxpy, 4096, 1_000_000);
        }
        let logs = daemon(1, 2).run(&[script]).expect("run");
        let responses = logs[0].responses().expect("decode");
        let rejected = responses
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Response::JobRejected {
                        reason: RejectReason::QueueFull { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(rejected > 0, "saturation must reject over the wire");
        let accepted = responses
            .iter()
            .filter(|r| matches!(r, Response::JobAccepted { .. }))
            .count();
        let completed = responses
            .iter()
            .filter(|r| matches!(r, Response::JobComplete { .. }))
            .count();
        assert_eq!(accepted, completed, "every accepted job completes");
        assert_eq!(accepted + rejected, 20);
    }

    #[test]
    fn daemon_runs_are_byte_identical() {
        let scripts = || {
            let mut a = ClientScript::new();
            let mut b = ClientScript::new();
            for i in 0..30u64 {
                a.submit_at(i * 100, i, KernelId::Daxpy, 256 << (i % 4), 50_000);
                b.submit_at(i * 130, i, KernelId::Daxpy, 512 << (i % 3), 80_000);
            }
            vec![a, b]
        };
        let run = || daemon(3, 4).run(&scripts()).expect("run");
        let x = run();
        let y = run();
        assert_eq!(x.len(), y.len());
        for (lx, ly) in x.iter().zip(&y) {
            assert_eq!(lx.outbound, ly.outbound, "byte-identical replay");
        }
    }

    #[test]
    fn stats_polls_do_not_perturb_virtual_time() {
        // The same job stream, with and without interleaved GetStats
        // polls, must produce byte-identical job responses: polls are
        // read-only and never advance the fleet.
        let script = |with_polls: bool| {
            let mut s = ClientScript::new();
            for i in 0..20u64 {
                s.submit_at(i * 80, i, KernelId::Daxpy, 256 << (i % 4), 40_000);
                if with_polls && i % 3 == 0 {
                    s.poll_stats_at(i * 80);
                }
            }
            s
        };
        let run = |with_polls: bool| {
            let logs = daemon(2, 4).run(&[script(with_polls)]).expect("run");
            logs[0].responses().expect("decode")
        };
        let plain = run(false);
        let polled = run(true);
        let polls = polled
            .iter()
            .filter(|r| matches!(r, Response::Stats { .. }))
            .count();
        assert_eq!(polls, 7, "each GetStats is answered");
        let job_only: Vec<Response> = polled
            .into_iter()
            .filter(|r| r.client_job().is_some())
            .collect();
        // Byte-identity, not just structural equality: re-encode both
        // job-response streams and compare the frames.
        let enc = |rs: &[Response]| -> Vec<u8> { rs.iter().flat_map(encode).collect() };
        assert_eq!(enc(&job_only), enc(&plain));
    }

    #[test]
    fn stats_poll_after_drain_matches_fleet_slo_exactly() {
        use crate::slo::FleetSlo;
        let mut d = daemon(2, 4);
        let mut jobs = ClientScript::new();
        for i in 0..25u64 {
            jobs.submit_at(i * 60, i, KernelId::Daxpy, 512 << (i % 3), 30_000);
        }
        d.run(&[jobs]).expect("first batch");
        // Second batch: a lone poll against the drained fleet. Its
        // report must equal a direct FleetSlo summary, field for field.
        let mut poll = ClientScript::new();
        poll.poll_stats_at(2_000);
        let logs = d.run(&[poll]).expect("poll batch");
        let responses = logs[0].responses().expect("decode");
        assert_eq!(responses.len(), 1);
        let Response::Stats { report } = &responses[0] else {
            panic!("expected Stats, got {:?}", responses[0]);
        };
        let direct = FleetSlo::from_fleet(d.fleet());
        assert_eq!(report.slo, direct);
        assert_eq!(report.slo.p50, direct.p50);
        assert_eq!(report.slo.p99, direct.p99);
        assert_eq!(report.time, 2_000);
        // Counters in the report are name-sorted and include the
        // per-reason rejection family when rejections happened.
        assert!(report.counters.windows(2).all(|w| w[0].0 < w[1].0));
        let rejected = report
            .counters
            .iter()
            .find(|(k, _)| k == "serve.rejected")
            .map_or(0, |(_, v)| *v);
        let by_reason: u64 = report.reject_reasons.iter().map(|(_, v)| v).sum();
        assert_eq!(by_reason, rejected, "reason breakdown sums to total");
    }
}
