//! Fleet SLO accounting: one serializable summary per (fleet, run).
//!
//! The serving SLO here is latency-against-deadline: a job *attains* its
//! SLO when it completes by its submission-relative deadline. Rejected
//! jobs (admission or backpressure) count against attainment — turning
//! work away is a served "no", not a free pass. Quantiles come from the
//! exact merge of per-shard log-bucketed histograms, so fleet p50/p99
//! carry the same 1/16 relative-error bound as any single shard's.

use serde::{Deserialize, Serialize};

use crate::fleet::Fleet;
use mpsoc_sched::JobOutcome;

/// Per-shard slice of the fleet summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSlo {
    /// Shard index.
    pub shard: u32,
    /// Jobs this shard accepted (offload or host).
    pub accepted: u64,
    /// Jobs this shard rejected.
    pub rejected: u64,
    /// Rejections specifically from queue-depth backpressure.
    pub queue_full: u64,
    /// Completed cluster offloads.
    pub offloaded: u64,
    /// Completed host-fallback runs.
    pub host_runs: u64,
    /// Queued jobs stolen *from* this shard.
    pub steals_out: u64,
    /// Queued jobs stolen *into* this shard.
    pub steals_in: u64,
    /// Health at summary time (`"healthy"` / `"degraded"` / `"dead"`).
    pub state: String,
    /// Clusters auto-quarantined (or manually retired) on this shard.
    pub quarantined_clusters: u64,
    /// Queued jobs evacuated from this shard after it died.
    pub failovers: u64,
    /// Queue-full rejections redirected *away* from this shard that
    /// found a taker.
    pub redirects: u64,
    /// Median completion latency (cycles; `None` when nothing
    /// completed — `Some(0)` would be indistinguishable from a real
    /// zero-cycle completion).
    pub p50: Option<u64>,
    /// 99th-percentile completion latency (cycles; `None` when nothing
    /// completed).
    pub p99: Option<u64>,
    /// Busy cluster-cycles over capacity × fleet makespan.
    pub utilization: f64,
}

/// The fleet-wide SLO summary of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSlo {
    /// Placement policy name.
    pub placement: String,
    /// Shard count.
    pub shards: u64,
    /// Clusters per shard.
    pub clusters_per_shard: u64,
    /// Jobs offered to the fleet.
    pub submitted: u64,
    /// Jobs that completed (offload + host).
    pub completed: u64,
    /// Completed cluster offloads.
    pub offloaded: u64,
    /// Completed host-fallback runs.
    pub host_runs: u64,
    /// Jobs rejected (all reasons).
    pub rejected: u64,
    /// Rejections from queue-depth backpressure.
    pub queue_full: u64,
    /// Work-stealing transfers.
    pub steals: u64,
    /// Corruption re-dispatches across the fleet.
    pub retries: u64,
    /// Clusters quarantined across the fleet.
    pub quarantined_clusters: u64,
    /// Shards with every cluster quarantined at summary time.
    pub dead_shards: u64,
    /// Jobs evacuated from dead shards to survivors.
    pub failovers: u64,
    /// Queue-full rejections that found a taker on another shard.
    pub redirects: u64,
    /// Completed jobs that met their deadline.
    pub deadline_met: u64,
    /// `deadline_met / submitted` — rejections count against SLO.
    pub attainment: f64,
    /// Fleet median completion latency (cycles; `None` when nothing
    /// completed anywhere — e.g. every job rejected).
    pub p50: Option<u64>,
    /// Fleet 99th-percentile completion latency (cycles; `None` when
    /// nothing completed anywhere).
    pub p99: Option<u64>,
    /// Mean completion latency (cycles).
    pub mean_latency: f64,
    /// Last completion cycle across the fleet.
    pub makespan: u64,
    /// Per-shard breakdowns.
    pub per_shard: Vec<ShardSlo>,
}

impl FleetSlo {
    /// Summarizes a fleet after (or during) a run.
    pub fn from_fleet(fleet: &Fleet) -> Self {
        let view = fleet.fleet_view();
        let stats = view.stats();
        let config = fleet.config();
        let makespan = fleet
            .completed()
            .iter()
            .filter_map(|fr| match fr.record.outcome {
                JobOutcome::Offloaded { finish, .. } | JobOutcome::Host { finish, .. } => {
                    Some(finish)
                }
                JobOutcome::Rejected { .. } => None,
            })
            .max()
            .unwrap_or(0);
        let deadline_met = fleet
            .completed()
            .iter()
            .filter(|fr| {
                !matches!(fr.record.outcome, JobOutcome::Rejected { .. })
                    && !fr.record.missed_deadline()
            })
            .count() as u64;
        let submitted = fleet.submitted();
        let latency = stats.histogram("serve.latency");
        let per_shard = (0..config.shards)
            .map(|i| {
                let shard_hist = stats.histogram(&format!("shard{i}.serve.latency"));
                let c = |name: &str| stats.counter(&format!("shard{i}.serve.{name}"));
                let capacity = (config.clusters_per_shard as u64) * makespan;
                ShardSlo {
                    shard: i as u32,
                    accepted: c("accepted"),
                    rejected: c("rejected"),
                    queue_full: c("queue_full"),
                    offloaded: c("offloaded"),
                    host_runs: c("host_runs"),
                    steals_out: c("steals_out"),
                    steals_in: c("steals_in"),
                    state: fleet.shard_state(i).name().to_owned(),
                    quarantined_clusters: c("health.quarantined_clusters"),
                    failovers: c("health.failovers"),
                    redirects: c("health.redirects"),
                    p50: shard_hist.p50(),
                    p99: shard_hist.p99(),
                    utilization: if capacity == 0 {
                        0.0
                    } else {
                        fleet.shard(i).busy_cluster_cycles() as f64 / capacity as f64
                    },
                }
            })
            .collect();
        FleetSlo {
            placement: config.placement.name().to_owned(),
            shards: config.shards as u64,
            clusters_per_shard: config.clusters_per_shard as u64,
            submitted,
            completed: stats.counter("serve.offloaded") + stats.counter("serve.host_runs"),
            offloaded: stats.counter("serve.offloaded"),
            host_runs: stats.counter("serve.host_runs"),
            rejected: stats.counter("serve.rejected"),
            queue_full: stats.counter("serve.queue_full"),
            steals: stats.counter("serve.steals_in"),
            retries: stats.counter("serve.retries"),
            quarantined_clusters: stats.counter("serve.health.quarantined_clusters"),
            dead_shards: (0..config.shards)
                .filter(|&i| fleet.shard_state(i) == crate::fleet::ShardState::Dead)
                .count() as u64,
            failovers: stats.counter("serve.health.failovers"),
            redirects: stats.counter("serve.health.redirects"),
            deadline_met,
            attainment: if submitted == 0 {
                1.0
            } else {
                deadline_met as f64 / submitted as f64
            },
            p50: latency.p50(),
            p99: latency.p99(),
            mean_latency: stats.summary("serve.latency").mean().unwrap_or(0.0),
            makespan,
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, PlacementPolicy};
    use mpsoc_sched::{KernelId, ModelTable};

    #[test]
    fn slo_accounting_balances() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 2,
                queue_limit: 2,
                placement: PlacementPolicy::LeastLoaded,
                steal: true,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        for i in 0..40u64 {
            f.submit(KernelId::Daxpy, 2048, 20_000, i * 50)
                .expect("submit");
        }
        f.drain().expect("drain");
        let slo = FleetSlo::from_fleet(&f);
        assert_eq!(slo.submitted, 40);
        assert_eq!(slo.completed + slo.rejected, 40);
        assert_eq!(slo.offloaded + slo.host_runs, slo.completed);
        assert!(slo.attainment <= 1.0);
        assert!(slo.makespan > 0);
        assert_eq!(slo.per_shard.len(), 2);
        let shard_accepts: u64 = slo.per_shard.iter().map(|s| s.accepted).sum();
        assert_eq!(shard_accepts + slo.rejected, 40);
        if slo.completed > 0 {
            assert!(slo.p99.expect("completions imply p99") >= slo.p50.expect("p50"));
            assert!(slo.per_shard.iter().any(|s| s.utilization > 0.0));
        }
    }

    #[test]
    fn empty_shard_merges_as_none_not_zero() {
        // Round-robin over 2 shards with a single job: shard 0 serves
        // it, shard 1 never sees work. The idle shard must report
        // `None` quantiles — not a fake 0-cycle latency — and the
        // fleet-level merge must equal the busy shard's view.
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 4,
                queue_limit: 8,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        f.submit(KernelId::Daxpy, 4096, 50_000, 0).expect("submit");
        f.drain().expect("drain");
        let slo = FleetSlo::from_fleet(&f);
        assert_eq!(slo.completed, 1);
        let busy = &slo.per_shard[0];
        let idle = &slo.per_shard[1];
        assert!(busy.p50.is_some() && busy.p99.is_some());
        assert_eq!(idle.p50, None);
        assert_eq!(idle.p99, None);
        assert_eq!(idle.utilization, 0.0);
        // Merging the empty shard's histogram must not disturb the
        // fleet quantiles.
        assert_eq!(slo.p50, busy.p50);
        assert_eq!(slo.p99, busy.p99);
    }

    #[test]
    fn all_rejections_yield_zero_attainment_and_no_quantiles() {
        // Deadline 300 is below the Daxpy offload floor (c0 + c_mem·N)
        // and the host line, so every job rejects as Infeasible.
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 2,
                queue_limit: 4,
                placement: PlacementPolicy::LeastLoaded,
                steal: true,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        for i in 0..10u64 {
            f.submit(KernelId::Daxpy, 1024, 300, i * 10)
                .expect("submit");
        }
        f.drain().expect("drain");
        let slo = FleetSlo::from_fleet(&f);
        assert_eq!(slo.submitted, 10);
        assert_eq!(slo.completed, 0);
        assert_eq!(slo.rejected, 10);
        // Nothing was served: attainment is a hard 0, not 0/0 = NaN …
        assert_eq!(slo.attainment, 0.0);
        // … and latency quantiles are absent, not zero.
        assert_eq!(slo.p50, None);
        assert_eq!(slo.p99, None);
        assert_eq!(slo.makespan, 0);
        assert!(slo
            .per_shard
            .iter()
            .all(|s| s.p50.is_none() && s.p99.is_none()));
    }
}
