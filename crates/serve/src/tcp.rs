//! Optional real-socket front door (feature `tcp`).
//!
//! CI and every test run on the deterministic in-process transport; this
//! module exists so a human can poke the daemon with a real client. It
//! deliberately trades fidelity for simplicity: connections are served
//! one at a time, each request is submitted at a virtual time equal to
//! its order of arrival times a fixed tick, and the connection's jobs
//! are drained to completion before the responses are written back —
//! request/response over TCP, not a cycle-accurate wire model.
//!
//! Nothing in here is reachable without `--features tcp`, and nothing
//! else in the crate depends on it.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

use crate::daemon::{ClientScript, Daemon, ServeError};
use crate::proto::Request;
use crate::wire::{encode, DecodeError, Decoder};

/// Virtual cycles between consecutive requests on one connection.
const TICK: u64 = 1_000;

/// A blocking one-connection-at-a-time TCP front door over a daemon.
pub struct TcpServer {
    listener: TcpListener,
}

impl TcpServer {
    /// Binds to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves `connections` connections, then returns. Each connection's
    /// request frames are read until EOF, replayed through `daemon` as
    /// one scripted session, and the response frames written back.
    ///
    /// # Errors
    ///
    /// I/O failures; decode failures and fleet errors are reported as
    /// `io::ErrorKind::InvalidData` with the typed error's message.
    pub fn serve(&self, daemon: &mut Daemon, connections: usize) -> std::io::Result<()> {
        for _ in 0..connections {
            let (stream, _) = self.listener.accept()?;
            handle(stream, daemon)?;
        }
        Ok(())
    }
}

fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn handle(mut stream: TcpStream, daemon: &mut Daemon) -> std::io::Result<()> {
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 4096];
    let mut script = ClientScript::new();
    let mut when = 0u64;
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        decoder.push(&buf[..n]);
        while let Some(request) = decoder.next_message::<Request>().map_err(invalid)? {
            let Request::SubmitJob { .. } = request;
            script.sends.push((when, request));
            when += TICK;
        }
    }
    decoder.finish().map_err(invalid)?;
    let logs = daemon.run(&[script]).map_err(|e: ServeError| invalid(e))?;
    stream.write_all(&logs[0].outbound)?;
    Ok(())
}

/// A minimal blocking client for the TCP front door: sends every
/// request, half-closes, and reads all responses.
///
/// # Errors
///
/// I/O failures; undecodable responses surface as
/// `io::ErrorKind::InvalidData`.
pub fn roundtrip(
    addr: impl ToSocketAddrs,
    requests: &[Request],
) -> std::io::Result<Vec<crate::proto::Response>> {
    let mut stream = TcpStream::connect(addr)?;
    for r in requests {
        stream.write_all(&encode(r))?;
    }
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    let mut dec = Decoder::new();
    dec.push(&bytes);
    let mut out = Vec::new();
    while let Some(r) = dec
        .next_message::<crate::proto::Response>()
        .map_err(invalid)?
    {
        out.push(r);
    }
    dec.finish().map_err(|e: DecodeError| invalid(e))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig, PlacementPolicy};
    use crate::proto::Response;
    use mpsoc_sched::{KernelId, ModelTable};

    #[test]
    fn tcp_round_trip_serves_one_connection() {
        let server = TcpServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut daemon = Daemon::new(Fleet::analytic(
                FleetConfig {
                    shards: 2,
                    clusters_per_shard: 2,
                    queue_limit: 8,
                    placement: PlacementPolicy::LeastLoaded,
                    steal: true,
                    redirect_budget: 0,
                    failover: false,
                },
                &ModelTable::paper_defaults(),
            ));
            server.serve(&mut daemon, 1).expect("serve");
        });
        let responses = roundtrip(
            addr,
            &[Request::SubmitJob {
                client_job: 5,
                kernel: KernelId::Daxpy,
                n: 1024,
                deadline: 100_000,
            }],
        )
        .expect("roundtrip");
        handle.join().expect("server thread");
        assert_eq!(responses.len(), 2);
        assert!(matches!(
            responses[0],
            Response::JobAccepted { client_job: 5, .. }
        ));
        assert!(matches!(
            responses[1],
            Response::JobComplete { client_job: 5, .. }
        ));
    }
}
