//! The job protocol: the typed messages clients and the serving daemon
//! exchange, independent of how they are framed onto a byte stream
//! (that is [`crate::wire`]'s job).
//!
//! The vocabulary is deliberately small — one request, three responses —
//! and every message is a plain old datum: no handles, no futures, no
//! borrowed payloads. Job identity on the wire is the *client's* number
//! (`client_job`), scoped to its session; the daemon maps it to fleet
//! job ids internally and never leaks them.

use mpsoc_sched::{KernelId, RejectReason};
use serde::{Deserialize, Serialize};

/// Protocol version carried in every frame header. Bumped on any change
/// to the message vocabulary or field layout; decoders reject frames
/// from other versions with a typed error rather than guessing.
pub const PROTOCOL_VERSION: u8 = 1;

/// Client → daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one offload job for service.
    SubmitJob {
        /// Client-chosen job number, echoed in every response about
        /// this job. Scoped to the client's session.
        client_job: u64,
        /// Which kernel to run.
        kernel: KernelId,
        /// Problem size (elements).
        n: u64,
        /// Relative deadline in cycles from submission.
        deadline: u64,
    },
}

/// Daemon → client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job passed admission on a shard and will be serviced.
    JobAccepted {
        /// Echo of the client's job number.
        client_job: u64,
        /// The shard the job landed on (it may still be stolen by a
        /// sibling before starting; completion reports the final shard).
        shard: u32,
    },
    /// The job was turned away — by the model-guided admission control
    /// or by queue-depth backpressure ([`RejectReason::QueueFull`]).
    JobRejected {
        /// Echo of the client's job number.
        client_job: u64,
        /// Why.
        reason: RejectReason,
    },
    /// The job finished (on clusters or on a shard's host core).
    JobComplete {
        /// Echo of the client's job number.
        client_job: u64,
        /// The shard that executed the job.
        shard: u32,
        /// Cycle execution began.
        start: u64,
        /// Cycle the job finished.
        finish: u64,
        /// True when the job ran on the shard's host core (below
        /// break-even or accelerator-infeasible deadline).
        on_host: bool,
        /// Whether `finish` met the submission-relative deadline.
        deadline_met: bool,
        /// Corruption re-dispatches charged to the job (co-simulated
        /// shards; always 0 on analytic fleets).
        retries: u32,
    },
}

impl Response {
    /// The `client_job` this response is about.
    pub fn client_job(&self) -> u64 {
        match *self {
            Response::JobAccepted { client_job, .. }
            | Response::JobRejected { client_job, .. }
            | Response::JobComplete { client_job, .. } => client_job,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_json() {
        let req = Request::SubmitJob {
            client_job: 7,
            kernel: KernelId::Daxpy,
            n: 1024,
            deadline: 9000,
        };
        let text = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, req);

        let resp = Response::JobRejected {
            client_job: 7,
            reason: RejectReason::QueueFull { depth: 32 },
        };
        let text = serde_json::to_string(&resp).expect("serialize");
        let back: Response = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_echo_the_client_job() {
        let r = Response::JobComplete {
            client_job: 42,
            shard: 1,
            start: 0,
            finish: 10,
            on_host: false,
            deadline_met: true,
            retries: 0,
        };
        assert_eq!(r.client_job(), 42);
    }
}
