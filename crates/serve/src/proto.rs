//! The job protocol: the typed messages clients and the serving daemon
//! exchange, independent of how they are framed onto a byte stream
//! (that is [`crate::wire`]'s job).
//!
//! The vocabulary is deliberately small — two requests, four responses —
//! and every message is a plain old datum: no handles, no futures, no
//! borrowed payloads. Job identity on the wire is the *client's* number
//! (`client_job`), scoped to its session; the daemon maps it to fleet
//! job ids internally and never leaks them.
//!
//! Version 2 adds the observability pair: [`Request::GetStats`] polls a
//! live daemon and [`Response::Stats`] answers with a [`StatsReport`] —
//! the fleet SLO snapshot plus named counters. Stats polls are
//! *read-only*: answering one never advances virtual time or touches
//! placement state, so a job stream replays byte-identically with or
//! without interleaved polls.

use crate::slo::FleetSlo;
use mpsoc_sched::{KernelId, RejectReason};
use serde::{Deserialize, Serialize};

/// Protocol version carried in every frame header. Bumped on any change
/// to the message vocabulary or field layout; decoders reject frames
/// from other versions with a typed error rather than guessing.
///
/// History: 1 = submit/accept/reject/complete; 2 = adds
/// `GetStats`/`Stats` and `Option`-typed SLO quantiles; 3 = adds the
/// self-healing fields (shard state, quarantined clusters, failovers,
/// redirects) to the SLO summary inside [`Response::Stats`].
pub const PROTOCOL_VERSION: u8 = 3;

/// Client → daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit one offload job for service.
    SubmitJob {
        /// Client-chosen job number, echoed in every response about
        /// this job. Scoped to the client's session.
        client_job: u64,
        /// Which kernel to run.
        kernel: KernelId,
        /// Problem size (elements).
        n: u64,
        /// Relative deadline in cycles from submission.
        deadline: u64,
    },
    /// Poll the daemon's live statistics. Answered immediately (at the
    /// poll's virtual time) with a [`Response::Stats`] snapshot; never
    /// advances the fleet.
    GetStats,
}

/// The daemon's live statistics snapshot: everything an operator's
/// scrape needs in one deterministic, cycle-domain message. Wall-clock
/// rates (cycles per wall-second) deliberately live *outside* this
/// frame — see `mpsoc_telemetry::ThroughputMeter` — so replaying a
/// session, polls included, stays byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Virtual time of the poll (cycles).
    pub time: u64,
    /// The fleet-wide SLO summary at poll time.
    pub slo: FleetSlo,
    /// Per-kind rejection counters, name-sorted:
    /// `(RejectReason::counter_key(), count)` pairs for every kind seen
    /// so far.
    ///
    /// [`RejectReason::counter_key()`]: mpsoc_sched::RejectReason::counter_key
    pub reject_reasons: Vec<(String, u64)>,
    /// Every fleet-level counter, name-sorted — accepted / rejected /
    /// queue_full / offloaded / host_runs / steals / retries /
    /// deadline_missed and the `serve.reject.*` family, plus the
    /// `shard<i>.`-prefixed per-shard breakdowns.
    pub counters: Vec<(String, u64)>,
}

/// Daemon → client.
// `Stats` dominates the enum size, but responses are transient (decoded,
// matched, dropped) and never stored in bulk; boxing would complicate
// the vendored-serde derive for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job passed admission on a shard and will be serviced.
    JobAccepted {
        /// Echo of the client's job number.
        client_job: u64,
        /// The shard the job landed on (it may still be stolen by a
        /// sibling before starting; completion reports the final shard).
        shard: u32,
    },
    /// The job was turned away — by the model-guided admission control
    /// or by queue-depth backpressure ([`RejectReason::QueueFull`]).
    JobRejected {
        /// Echo of the client's job number.
        client_job: u64,
        /// Why.
        reason: RejectReason,
    },
    /// The job finished (on clusters or on a shard's host core).
    JobComplete {
        /// Echo of the client's job number.
        client_job: u64,
        /// The shard that executed the job.
        shard: u32,
        /// Cycle execution began.
        start: u64,
        /// Cycle the job finished.
        finish: u64,
        /// True when the job ran on the shard's host core (below
        /// break-even or accelerator-infeasible deadline).
        on_host: bool,
        /// Whether `finish` met the submission-relative deadline.
        deadline_met: bool,
        /// Corruption re-dispatches charged to the job (co-simulated
        /// shards; always 0 on analytic fleets).
        retries: u32,
    },
    /// Answer to [`Request::GetStats`].
    Stats {
        /// The snapshot.
        report: StatsReport,
    },
}

impl Response {
    /// The `client_job` this response is about; `None` for responses
    /// (like [`Response::Stats`]) that are not about a job.
    pub fn client_job(&self) -> Option<u64> {
        match self {
            Response::JobAccepted { client_job, .. }
            | Response::JobRejected { client_job, .. }
            | Response::JobComplete { client_job, .. } => Some(*client_job),
            Response::Stats { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_json() {
        let req = Request::SubmitJob {
            client_job: 7,
            kernel: KernelId::Daxpy,
            n: 1024,
            deadline: 9000,
        };
        let text = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, req);

        let resp = Response::JobRejected {
            client_job: 7,
            reason: RejectReason::QueueFull { depth: 32 },
        };
        let text = serde_json::to_string(&resp).expect("serialize");
        let back: Response = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, resp);
    }

    #[test]
    fn responses_echo_the_client_job() {
        let r = Response::JobComplete {
            client_job: 42,
            shard: 1,
            start: 0,
            finish: 10,
            on_host: false,
            deadline_met: true,
            retries: 0,
        };
        assert_eq!(r.client_job(), Some(42));
    }

    #[test]
    fn get_stats_round_trips() {
        let req = Request::GetStats;
        let text = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, req);
    }

    #[test]
    fn stats_responses_have_no_client_job() {
        use crate::fleet::{Fleet, FleetConfig, PlacementPolicy};
        use mpsoc_sched::ModelTable;
        let f = Fleet::analytic(
            FleetConfig {
                shards: 1,
                clusters_per_shard: 1,
                queue_limit: 1,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        let r = Response::Stats {
            report: StatsReport {
                time: 0,
                slo: FleetSlo::from_fleet(&f),
                reject_reasons: Vec::new(),
                counters: Vec::new(),
            },
        };
        assert_eq!(r.client_job(), None);
        let text = serde_json::to_string(&r).expect("serialize");
        let back: Response = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, r);
    }
}
