//! Length-prefixed binary framing for the job protocol.
//!
//! Frame grammar (all multi-byte integers little-endian):
//!
//! ```text
//! frame   := magic version length payload
//! magic   := 0x4D 0x4A                ; "MJ"
//! version := u8                       ; PROTOCOL_VERSION (currently 1)
//! length  := u32                      ; payload byte count, ≤ MAX_PAYLOAD
//! payload := length bytes of UTF-8 JSON (one Request or Response)
//! ```
//!
//! The codec is *incremental*: a [`Decoder`] accepts arbitrary byte
//! slices (as a stream transport would deliver them), buffers partial
//! frames, and yields complete messages as they materialize. Every
//! malformed input maps to a typed [`DecodeError`] — bad magic, unknown
//! version, oversized length, truncated stream, undecodable payload —
//! so a serving daemon can tell a confused client apart from a torn
//! connection.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::proto::PROTOCOL_VERSION;

/// Frame preamble: "MJ" (MPSoC Job).
pub const MAGIC: [u8; 2] = *b"MJ";

/// Header size: magic (2) + version (1) + length (4).
pub const HEADER_LEN: usize = 7;

/// Upper bound on one frame's payload. Protocol messages are a few
/// hundred bytes; anything near this bound is a corrupt or hostile
/// length field, rejected before any allocation is attempted.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with the frame magic: not this
    /// protocol (or a desynchronized stream).
    BadMagic {
        /// The two bytes found where the magic belonged.
        found: [u8; 2],
    },
    /// The frame's version byte is not one this decoder speaks.
    UnknownVersion {
        /// The version byte found.
        found: u8,
    },
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        declared: u64,
    },
    /// The stream ended mid-frame (only reported by
    /// [`Decoder::finish`]; mid-stream a partial frame just waits for
    /// more bytes).
    Truncated {
        /// Bytes buffered when the stream ended.
        buffered: usize,
        /// Bytes the pending frame still needed.
        missing: usize,
    },
    /// The payload is not a well-formed message of the expected type.
    Malformed {
        /// The JSON decoder's description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#04x?} (expected \"MJ\")")
            }
            DecodeError::UnknownVersion { found } => {
                write!(
                    f,
                    "unknown protocol version {found} (speak {PROTOCOL_VERSION})"
                )
            }
            DecodeError::Oversized { declared } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes (cap {MAX_PAYLOAD})"
                )
            }
            DecodeError::Truncated { buffered, missing } => write!(
                f,
                "stream ended mid-frame: {buffered} byte(s) buffered, {missing} still needed"
            ),
            DecodeError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one message as a complete frame.
///
/// # Panics
///
/// Panics if the message serializes to more than [`MAX_PAYLOAD`] bytes —
/// impossible for the fixed-size protocol messages, so a bug, not an
/// input condition.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    let payload = serde_json::to_string(msg)
        .expect("protocol messages contain no non-finite floats")
        .into_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "outgoing frame exceeds MAX_PAYLOAD"
    );
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(PROTOCOL_VERSION);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one payload into a typed message.
///
/// # Errors
///
/// [`DecodeError::Malformed`] when the payload is not valid UTF-8 JSON
/// of the expected shape.
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, DecodeError> {
    let text = std::str::from_utf8(payload).map_err(|e| DecodeError::Malformed {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| DecodeError::Malformed {
        detail: e.to_string(),
    })
}

/// An incremental frame decoder over a byte stream.
#[derive(Debug, Default, Clone)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Appends stream bytes (any chunking, including one byte at a
    /// time).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (a partial frame, between frames: 0).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame's payload, `Ok(None)` when the
    /// buffer holds no complete frame yet.
    ///
    /// # Errors
    ///
    /// Header-level [`DecodeError`]s (bad magic, unknown version,
    /// oversized length) as soon as the offending header bytes are
    /// visible — before waiting for the declared payload.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        if self.buf.len() >= 2 {
            let found = [self.buf[0], self.buf[1]];
            if found != MAGIC {
                return Err(DecodeError::BadMagic { found });
            }
        }
        if self.buf.len() >= 3 {
            let found = self.buf[2];
            if found != PROTOCOL_VERSION {
                return Err(DecodeError::UnknownVersion { found });
            }
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared =
            u32::from_le_bytes([self.buf[3], self.buf[4], self.buf[5], self.buf[6]]) as u64;
        if declared > MAX_PAYLOAD as u64 {
            return Err(DecodeError::Oversized { declared });
        }
        let total = HEADER_LEN + declared as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Pops the next complete frame decoded as a typed message,
    /// `Ok(None)` when no complete frame is buffered.
    ///
    /// # Errors
    ///
    /// Everything [`Decoder::next_frame`] reports, plus
    /// [`DecodeError::Malformed`] for undecodable payloads.
    pub fn next_message<T: Deserialize>(&mut self) -> Result<Option<T>, DecodeError> {
        match self.next_frame()? {
            Some(payload) => decode_payload(&payload).map(Some),
            None => Ok(None),
        }
    }

    /// Declares the stream ended: leftover bytes mean a frame was cut
    /// off mid-flight.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when a partial frame is buffered.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let missing = if self.buf.len() < HEADER_LEN {
            HEADER_LEN - self.buf.len()
        } else {
            let declared =
                u32::from_le_bytes([self.buf[3], self.buf[4], self.buf[5], self.buf[6]]) as usize;
            HEADER_LEN + declared - self.buf.len()
        };
        Err(DecodeError::Truncated {
            buffered: self.buf.len(),
            missing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, Response};
    use mpsoc_sched::KernelId;

    fn submit(client_job: u64) -> Request {
        Request::SubmitJob {
            client_job,
            kernel: KernelId::Daxpy,
            n: 1024,
            deadline: 9000,
        }
    }

    #[test]
    fn frames_round_trip_whole() {
        let msg = submit(3);
        let mut dec = Decoder::new();
        dec.push(&encode(&msg));
        let back: Request = dec.next_message().expect("decode").expect("one frame");
        assert_eq!(back, msg);
        assert!(dec.next_message::<Request>().expect("decode").is_none());
        dec.finish().expect("clean end");
    }

    #[test]
    fn frames_round_trip_byte_at_a_time() {
        let msg = Response::JobAccepted {
            client_job: 9,
            shard: 2,
        };
        let frame = encode(&msg);
        let mut dec = Decoder::new();
        let mut seen = None;
        for &b in &frame {
            dec.push(&[b]);
            if let Some(m) = dec.next_message::<Response>().expect("decode") {
                assert!(seen.is_none(), "only one frame in the stream");
                seen = Some(m);
            }
        }
        assert_eq!(seen, Some(msg));
    }

    #[test]
    fn back_to_back_frames_all_surface() {
        let mut dec = Decoder::new();
        let mut bytes = Vec::new();
        for i in 0..5 {
            bytes.extend_from_slice(&encode(&submit(i)));
        }
        dec.push(&bytes);
        let mut got = Vec::new();
        while let Some(m) = dec.next_message::<Request>().expect("decode") {
            got.push(m);
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], submit(4));
        dec.finish().expect("clean end");
    }

    #[test]
    fn bad_magic_is_rejected_immediately() {
        let mut dec = Decoder::new();
        dec.push(b"XJ rest never examined");
        match dec.next_frame() {
            Err(DecodeError::BadMagic { found }) => assert_eq!(&found, b"XJ"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unknown_version_is_rejected_before_payload() {
        let mut dec = Decoder::new();
        dec.push(&[MAGIC[0], MAGIC[1], 99]);
        match dec.next_frame() {
            Err(DecodeError::UnknownVersion { found }) => assert_eq!(found, 99),
            other => panic!("expected UnknownVersion, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_buffering() {
        let mut dec = Decoder::new();
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.push(PROTOCOL_VERSION);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        dec.push(&header);
        match dec.next_frame() {
            Err(DecodeError::Oversized { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_surfaces_at_finish() {
        let frame = encode(&submit(1));
        let mut dec = Decoder::new();
        dec.push(&frame[..frame.len() - 3]);
        assert!(dec.next_message::<Request>().expect("waiting").is_none());
        match dec.finish() {
            Err(DecodeError::Truncated { missing, .. }) => assert_eq!(missing, 3),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payload_is_a_typed_error() {
        let payload = b"{not json";
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let mut dec = Decoder::new();
        dec.push(&frame);
        match dec.next_message::<Request>() {
            Err(DecodeError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
