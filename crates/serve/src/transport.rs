//! Deterministic in-process transport: one duplex byte pipe per client
//! session.
//!
//! CI must not open sockets, and the serving study must be byte-identical
//! across runs — so the default transport is a pair of plain in-memory
//! byte queues with *explicit* delivery: bytes move only when the daemon
//! event loop says so, at virtual times taken from the client script.
//! There is no hidden buffering, no OS scheduling, no partial-write
//! nondeterminism; chunk boundaries are whatever the test or study
//! chooses, which is exactly what the incremental [`crate::wire::Decoder`]
//! is exercised against. A real TCP transport (feature `tcp`) carries
//! the same frames for interactive use.

/// A duplex in-process byte pipe between one client and the daemon.
///
/// Both directions are simple append/drain queues. The daemon drains the
/// client→server direction into its frame decoder; responses are framed
/// into the server→client direction and drained by the client (or test)
/// at its leisure.
#[derive(Debug, Default, Clone)]
pub struct Duplex {
    to_server: Vec<u8>,
    to_client: Vec<u8>,
}

impl Duplex {
    /// A fresh pipe with both directions empty.
    pub fn new() -> Self {
        Duplex::default()
    }

    /// Client side: sends bytes toward the server.
    pub fn client_send(&mut self, bytes: &[u8]) {
        self.to_server.extend_from_slice(bytes);
    }

    /// Server side: takes everything the client has sent so far.
    pub fn server_drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.to_server)
    }

    /// Server side: sends bytes toward the client.
    pub fn server_send(&mut self, bytes: &[u8]) {
        self.to_client.extend_from_slice(bytes);
    }

    /// Client side: takes everything the server has sent so far.
    pub fn client_drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.to_client)
    }

    /// Bytes currently queued toward the server.
    pub fn pending_to_server(&self) -> usize {
        self.to_server.len()
    }

    /// Bytes currently queued toward the client.
    pub fn pending_to_client(&self) -> usize {
        self.to_client.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_carry_bytes_independently() {
        let mut d = Duplex::new();
        d.client_send(b"abc");
        d.server_send(b"xy");
        assert_eq!(d.pending_to_server(), 3);
        assert_eq!(d.pending_to_client(), 2);
        assert_eq!(d.server_drain(), b"abc");
        assert_eq!(d.server_drain(), b"");
        d.client_send(b"d");
        assert_eq!(d.server_drain(), b"d");
        assert_eq!(d.client_drain(), b"xy");
        assert_eq!(d.pending_to_client(), 0);
    }
}
