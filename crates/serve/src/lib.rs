//! # mpsoc-serve
//!
//! The serving front-end over the MPSoC offload substrate: jobs arrive
//! over a wire protocol, a daemon multiplexes client sessions, and a
//! load-balanced fleet of simulated SoC shards executes them — the
//! "heavy traffic from millions of users" story on top of the paper's
//! per-job offload machinery.
//!
//! The stack, bottom-up:
//!
//! 1. **Protocol** ([`proto`]) — `SubmitJob` and `GetStats` in;
//!    `JobAccepted`, `JobRejected`, `JobComplete` and `Stats` out.
//!    Plain serde messages, client-scoped job numbers.
//! 2. **Framing** ([`wire`]) — length-prefixed binary frames (magic +
//!    version + u32 length + JSON payload) with an incremental
//!    [`Decoder`] and typed [`DecodeError`]s for truncated, oversized,
//!    bad-magic and bad-version streams.
//! 3. **Transport** ([`transport`]) — deterministic in-process duplex
//!    pipes (CI needs no sockets); a real TCP front door behind the
//!    `tcp` feature.
//! 4. **Fleet** ([`fleet`]) — independent [`ShardSim`] machines behind a
//!    balancer with pluggable placement (round-robin, least-loaded,
//!    model-guided on Eq. 1 backlog), queue-depth backpressure, work
//!    stealing of queued-but-unstarted jobs, and self-healing: shard
//!    health states ([`fleet::ShardState`]) driven by auto-quarantine,
//!    failover of a dead shard's queue to survivors, and bounded
//!    redirect of backpressure-rejected jobs.
//! 5. **Daemon** ([`daemon`]) — the event loop tying scripts → frames →
//!    fleet → time-ordered response streams, deterministically.
//! 6. **SLO** ([`slo`]) — fleet p50/p99 from exact per-shard histogram
//!    merges, attainment, utilization, steal/reject accounting.
//! 7. **Metrics** ([`metrics`]) — the live [`StatsReport`] rendered as
//!    canonical JSON or Prometheus-style text for scrapers, with
//!    per-shard counters folded into `{shard=…}` labels.
//!
//! Determinism is end-to-end: the same client scripts against the same
//! fleet configuration produce byte-identical response streams and
//! reports ([`daemon::Daemon::run`] is replayable), which is what lets
//! CI gate on byte-equality of two serving-study runs.
//!
//! ## Example
//!
//! ```
//! use mpsoc_sched::{KernelId, ModelTable};
//! use mpsoc_serve::{
//!     ClientScript, Daemon, Fleet, FleetConfig, FleetSlo, PlacementPolicy, Response,
//! };
//!
//! let fleet = Fleet::analytic(
//!     FleetConfig {
//!         shards: 2,
//!         clusters_per_shard: 4,
//!         queue_limit: 8,
//!         placement: PlacementPolicy::LeastLoaded,
//!         steal: true,
//!         redirect_budget: 0,
//!         failover: false,
//!     },
//!     &ModelTable::paper_defaults(),
//! );
//! let mut script = ClientScript::new();
//! script.submit_at(0, 1, KernelId::Daxpy, 1024, 100_000);
//! let mut daemon = Daemon::new(fleet);
//! let logs = daemon.run(&[script]).unwrap();
//! let responses = logs[0].responses().unwrap();
//! assert!(matches!(responses[0], Response::JobAccepted { .. }));
//! let slo = FleetSlo::from_fleet(daemon.fleet());
//! assert_eq!(slo.completed, 1);
//! ```
//!
//! [`ShardSim`]: mpsoc_sched::ShardSim
//! [`Decoder`]: wire::Decoder
//! [`DecodeError`]: wire::DecodeError

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod fleet;
pub mod metrics;
pub mod proto;
pub mod slo;
#[cfg(feature = "tcp")]
pub mod tcp;
pub mod transport;
pub mod wire;

pub use daemon::{ClientScript, Daemon, ServeError, SessionLog};
pub use fleet::{Fleet, FleetConfig, FleetRecord, PlacementPolicy, ShardState, ALL_PLACEMENTS};
pub use metrics::{prometheus_text, stats_json};
pub use proto::{Request, Response, StatsReport, PROTOCOL_VERSION};
pub use slo::{FleetSlo, ShardSlo};
pub use transport::Duplex;
pub use wire::{encode, DecodeError, Decoder};
