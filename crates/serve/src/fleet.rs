//! The shard manager: a fleet of independent co-simulated (or analytic)
//! SoC shards behind one load balancer.
//!
//! Each shard is an incremental [`ShardSim`] — the same admission →
//! allocation → dispatch semantics as the closed-loop `Engine`, driven
//! event-by-event. The fleet layer adds what a serving front-end needs
//! on top:
//!
//! - **Placement** ([`PlacementPolicy`]): which shard an arriving job is
//!   offered to. Round-robin ignores load; least-loaded picks the
//!   shallowest queue; model-guided picks the smallest *predicted
//!   backlog* in cluster-cycles — the sum of Eq. 1 t̂(M, N) predictions
//!   of everything admitted and unfinished, normalized by shard
//!   capacity, so a queue of two huge jobs weighs more than a queue of
//!   five tiny ones.
//! - **Backpressure**: every shard runs with a bounded admission queue
//!   ([`ShardSim::set_queue_limit`]); the chosen shard's verdict is
//!   final, so an overloaded fleet rejects with
//!   [`RejectReason::QueueFull`] instead of building unbounded queues.
//! - **Work stealing**: when a shard goes idle (empty queue, free
//!   clusters) while a sibling has jobs backed up, the idle shard steals
//!   a queued-but-unstarted job. Stealing moves only jobs that have not
//!   touched hardware, so records stay exact.
//! - **Shard health & failover** ([`ShardState`]): shards degrade as
//!   auto-quarantine retires clusters and die when the pool empties.
//!   Placement weights by *effective* (healthy) capacity and skips dead
//!   shards; with [`FleetConfig::failover`] on, a dead shard's
//!   queued-but-unstarted jobs are drained to survivors over the same
//!   stealing path, so capacity loss costs latency instead of losing
//!   admitted work.
//! - **Redirect on reject**: with a nonzero
//!   [`FleetConfig::redirect_budget`], a job bounced by queue-depth
//!   backpressure is re-offered to the next-best shards before the
//!   rejection becomes final; the failed attempt's record is withdrawn
//!   so every job still resolves exactly once.
//! - **Telemetry**: one [`StatsRegistry`] per shard (accept/reject/steal
//!   counters, completion-latency histogram, the `serve.health.*`
//!   family), merged on demand into a fleet-wide [`FleetView`] whose
//!   histogram merge is exact.
//!
//! Everything iterates in shard-index order and all state lives in
//! ordered containers, so a fixed (config, job stream) pair replays to
//! byte-identical reports.
//!
//! [`RejectReason::QueueFull`]: mpsoc_sched::RejectReason::QueueFull

use mpsoc_noc::ClusterMask;
use mpsoc_sched::{
    CostGate, FifoFirstFit, Job, JobOutcome, JobRecord, KernelId, ModelTable, RejectReason,
    SchedError, ServiceBackend, ShardDecision, ShardSim,
};
use mpsoc_telemetry::{FleetView, StatsRegistry};
use serde::{Deserialize, Serialize};

/// How the balancer picks a shard for each arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Rotate through shards regardless of load.
    RoundRobin,
    /// The shard with the shallowest admission queue (ties to the
    /// lowest index).
    LeastLoaded,
    /// The shard with the least predicted backlog: Σ t̂(M_min, N) ·
    /// M_min over admitted-but-unfinished jobs, per cluster of
    /// capacity (ties to the lowest index).
    ModelGuided,
}

/// Every placement policy, in study order.
pub const ALL_PLACEMENTS: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LeastLoaded,
    PlacementPolicy::ModelGuided,
];

impl PlacementPolicy {
    /// Stable snake_case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round_robin",
            PlacementPolicy::LeastLoaded => "least_loaded",
            PlacementPolicy::ModelGuided => "model_guided",
        }
    }
}

/// Fleet shape and balancing behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Clusters per shard machine.
    pub clusters_per_shard: usize,
    /// Per-shard admission-queue cap (backpressure threshold).
    pub queue_limit: usize,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Whether idle shards steal queued work from loaded siblings.
    pub steal: bool,
    /// How many alternative shards a queue-full-rejected job is
    /// re-offered to before the rejection becomes final. `0` disables
    /// redirection (the first shard's verdict stands, the pre-redirect
    /// behavior).
    pub redirect_budget: u32,
    /// Whether a dead shard's queued-but-unstarted jobs are drained to
    /// surviving shards. Off, they sit until the run ends and resolve
    /// as `DegradedMachine` rejections.
    pub failover: bool,
}

/// Health of one shard, derived from its quarantine mass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ShardState {
    /// Every configured cluster is serving.
    Healthy,
    /// Quarantine has retired some clusters; the rest still serve.
    Degraded,
    /// Every cluster is quarantined: the shard can serve nothing.
    Dead,
}

impl ShardState {
    /// Stable snake_case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Degraded => "degraded",
            ShardState::Dead => "dead",
        }
    }

    /// Severity code (0 healthy, 1 degraded, 2 dead). Quarantine never
    /// heals, so a shard's code is monotone over a run — which lets the
    /// `serve.health.shard_state` *counter* track the current state
    /// exactly (each transition adds the code delta).
    pub fn code(&self) -> u64 {
        match self {
            ShardState::Healthy => 0,
            ShardState::Degraded => 1,
            ShardState::Dead => 2,
        }
    }
}

/// One finished job, tagged with the shard that resolved it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Shard index.
    pub shard: u32,
    /// The shard's record (rejections included).
    pub record: JobRecord,
}

/// A fleet of shards behind one balancer.
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<ShardSim>,
    stats: Vec<StatsRegistry>,
    rr_next: usize,
    next_job_id: u64,
    submitted: u64,
    completed: Vec<FleetRecord>,
    /// Last state code published to `serve.health.shard_state`, per
    /// shard (the counter carries the delta on each transition).
    state_logged: Vec<u64>,
}

impl Fleet {
    /// A fleet whose shards all charge analytic (Eq. 1) service times —
    /// the configuration for large SLO sweeps, where a million jobs
    /// must simulate in seconds.
    pub fn analytic(config: FleetConfig, table: &ModelTable) -> Self {
        let backends = (0..config.shards)
            .map(|_| ServiceBackend::analytic(table.clone()))
            .collect();
        Fleet::with_backends(config, table, backends)
    }

    /// A fleet over explicit per-shard backends (e.g. co-simulated SoC
    /// instances). `backends.len()` must equal `config.shards`.
    pub fn with_backends(
        config: FleetConfig,
        table: &ModelTable,
        backends: Vec<ServiceBackend>,
    ) -> Self {
        assert_eq!(
            backends.len(),
            config.shards,
            "one backend per shard required"
        );
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let shards = backends
            .into_iter()
            .map(|backend| {
                let mut s = ShardSim::new(
                    table.clone(),
                    config.clusters_per_shard,
                    backend,
                    Box::new(FifoFirstFit),
                );
                s.set_queue_limit(config.queue_limit);
                s
            })
            .collect();
        Fleet {
            stats: (0..config.shards).map(|_| StatsRegistry::new()).collect(),
            shards,
            rr_next: 0,
            next_job_id: 0,
            submitted: 0,
            completed: Vec::new(),
            state_logged: vec![0; config.shards],
            config,
        }
    }

    /// Arms every shard with a static cost gate ([`CostGate`]): jobs
    /// whose deadline undercuts the static best-case runtime bound are
    /// rejected with `serve.reject.static_infeasible`, and each queued
    /// admission's Eq. 1 prediction is audited against the static
    /// `[best, worst]` envelope at its `M_min` — `serve.cost.checked`
    /// counts audits, `serve.cost.pred_below_best` /
    /// `serve.cost.pred_above_worst` count predictions that left the
    /// provable envelope (the model-drift alarm signal). Opt-in: the
    /// analysis runs once per distinct (kernel, n) per shard.
    pub fn enable_cost_gates(&mut self) {
        for shard in &mut self.shards {
            shard.enable_cost(CostGate::manticore());
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Jobs offered to the fleet so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Every resolved record so far (completions and rejections), in
    /// resolution order.
    pub fn completed(&self) -> &[FleetRecord] {
        &self.completed
    }

    /// Per-shard statistics registries, indexed by shard.
    pub fn shard_stats(&self) -> &[StatsRegistry] {
        &self.stats
    }

    /// The merged fleet view: global counters/histograms plus
    /// `shard<i>.`-prefixed per-shard breakdowns.
    pub fn fleet_view(&self) -> FleetView {
        FleetView::with_shards(self.stats.iter())
    }

    /// Direct access to a shard (load inspection, tests).
    pub fn shard(&self, i: usize) -> &ShardSim {
        &self.shards[i]
    }

    /// Configures automatic quarantine on every shard: a cluster is
    /// retired after `threshold` corrupt co-simulated completions
    /// flagged it; `None` disables the closed loop so corruption is
    /// absorbed by bounded re-dispatch alone — the no-recovery arm
    /// chaos studies ablate against.
    pub fn set_auto_quarantine(&mut self, threshold: Option<u32>) {
        for shard in &mut self.shards {
            shard.set_auto_quarantine(threshold);
        }
    }

    /// Manually retires clusters on shard `i` — the operator-driven
    /// path through the same quarantine machinery auto-quarantine
    /// drives, publishing the same `serve.health.*` telemetry
    /// immediately.
    pub fn quarantine_shard(&mut self, i: usize, mask: ClusterMask) {
        self.shards[i].quarantine(mask);
        self.collect(i);
    }

    /// Shard `i`'s health, derived from its healthy-cluster count
    /// against the configured size.
    pub fn shard_state(&self, i: usize) -> ShardState {
        match self.shards[i].healthy_clusters() {
            0 => ShardState::Dead,
            h if h < self.config.clusters_per_shard => ShardState::Degraded,
            _ => ShardState::Healthy,
        }
    }

    /// Advances every shard to `until`, collects completions, and — when
    /// stealing is on — lets idle shards take queued work from loaded
    /// siblings.
    ///
    /// # Errors
    ///
    /// Shard service-backend failures.
    pub fn advance(&mut self, until: u64) -> Result<(), SchedError> {
        let _prof = mpsoc_sim::profile::scope("serve.fleet.advance");
        for i in 0..self.shards.len() {
            self.shards[i].advance(until)?;
            self.collect(i);
        }
        self.fail_over()?;
        self.rebalance()
    }

    /// Submits one job at virtual time `now` (non-decreasing across
    /// calls). The placement policy picks the shard; that shard's
    /// admission verdict is final.
    ///
    /// # Errors
    ///
    /// Shard service-backend failures.
    pub fn submit(
        &mut self,
        kernel: KernelId,
        n: u64,
        deadline: u64,
        now: u64,
    ) -> Result<(u32, ShardDecision), SchedError> {
        self.advance(now)?;
        let first = self.place();
        let job = Job {
            id: self.next_job_id,
            kernel,
            n,
            arrival: now,
            deadline,
        };
        self.next_job_id += 1;
        self.submitted += 1;
        let mut shard = first;
        let mut decision = self.shards[first].offer(job)?;
        if matches!(
            decision,
            ShardDecision::Rejected {
                reason: RejectReason::QueueFull { .. }
            }
        ) && self.config.redirect_budget > 0
        {
            (shard, decision) = self.redirect(first, job, decision)?;
        }
        if matches!(
            decision,
            ShardDecision::Queued { .. } | ShardDecision::Host { .. }
        ) {
            self.stats[shard].incr("serve.accepted");
            if let Some(check) = self.shards[shard].take_cost_check() {
                self.stats[shard].incr("serve.cost.checked");
                if check.predicted < check.best as f64 {
                    self.stats[shard].incr("serve.cost.pred_below_best");
                }
                if check.predicted > check.worst as f64 {
                    self.stats[shard].incr("serve.cost.pred_above_worst");
                }
            }
        }
        // Rejections are counted when their records are collected, so a
        // withdrawn (successfully redirected) rejection never shows up.
        self.collect(first);
        if shard != first {
            self.collect(shard);
        }
        Ok((shard as u32, decision))
    }

    /// Re-offers a queue-full-rejected job to up to
    /// [`FleetConfig::redirect_budget`] next-best live shards. The first
    /// taker wins: the original shard's rejection record is withdrawn
    /// and the taker's verdict replaces it. Failed attempts withdraw
    /// their own records immediately, and when the budget exhausts (or
    /// no alternative exists) the original rejection stands — exactly
    /// one record per job either way.
    fn redirect(
        &mut self,
        first: usize,
        job: Job,
        original: ShardDecision,
    ) -> Result<(usize, ShardDecision), SchedError> {
        let mut tried = vec![false; self.shards.len()];
        tried[first] = true;
        for _ in 0..self.config.redirect_budget {
            let Some(next) = self.next_choice(&tried) else {
                break;
            };
            tried[next] = true;
            let decision = self.shards[next].offer(job)?;
            match decision {
                ShardDecision::Queued { .. } | ShardDecision::Host { .. } => {
                    let withdrawn = self.shards[first].withdraw_rejection(job.id);
                    debug_assert!(withdrawn, "the queue-full rejection must still be last");
                    self.stats[first].incr("serve.health.redirects");
                    return Ok((next, decision));
                }
                ShardDecision::Rejected { .. } => {
                    // This attempt is not final: drop its record and
                    // keep looking (the original rejection still
                    // stands if nothing takes the job).
                    self.shards[next].withdraw_rejection(job.id);
                }
            }
        }
        Ok((first, original))
    }

    /// The untried live shard with the shallowest queue (ties to the
    /// lowest index) — the deterministic "next-best" choice redirection
    /// and failover share.
    fn next_choice(&self, tried: &[bool]) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, s) in self.shards.iter().enumerate() {
            if tried[i] || s.healthy_clusters() == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => s.queue_depth() < self.shards[b].queue_depth(),
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// Runs every shard dry and collects the remaining completions.
    ///
    /// # Errors
    ///
    /// Shard failures, including a stalled co-simulated session.
    pub fn drain(&mut self) -> Result<(), SchedError> {
        self.fail_over()?;
        self.rebalance()?;
        for i in 0..self.shards.len() {
            self.shards[i].drain()?;
            self.collect(i);
        }
        Ok(())
    }

    /// The placement policy's shard choice for the next job. Dead
    /// shards are skipped and capacity-normalized scores divide by the
    /// *healthy* cluster count, so a degraded shard attracts
    /// proportionally less work; on an all-healthy fleet every branch
    /// reduces exactly to the pre-health behavior. With every shard
    /// dead, shard 0 takes the offer (and rejects it as degraded).
    fn place(&mut self) -> usize {
        match self.config.placement {
            PlacementPolicy::RoundRobin => {
                for _ in 0..self.shards.len() {
                    let shard = self.rr_next % self.shards.len();
                    self.rr_next += 1;
                    if self.shards[shard].healthy_clusters() > 0 {
                        return shard;
                    }
                }
                0
            }
            PlacementPolicy::LeastLoaded => {
                let mut best: Option<usize> = None;
                for (i, s) in self.shards.iter().enumerate() {
                    if s.healthy_clusters() == 0 {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => s.queue_depth() < self.shards[b].queue_depth(),
                    };
                    if better {
                        best = Some(i);
                    }
                }
                best.unwrap_or(0)
            }
            PlacementPolicy::ModelGuided => {
                let mut best: Option<usize> = None;
                let mut best_score = f64::INFINITY;
                for (i, s) in self.shards.iter().enumerate() {
                    if s.healthy_clusters() == 0 {
                        continue;
                    }
                    let sc = s.backlog_cycles() / s.healthy_clusters() as f64;
                    if best.is_none() || sc < best_score {
                        best = Some(i);
                        best_score = sc;
                    }
                }
                best.unwrap_or(0)
            }
        }
    }

    /// Evacuates work stranded by quarantine. Dead shards (whole pool
    /// quarantined) give up their entire queue; degraded shards give up
    /// exactly the jobs whose minimum partition no longer fits their
    /// surviving pool — under the shards' strict-FIFO policy such a job
    /// would otherwise wedge the queue head mid-stream, starving every
    /// job behind it until drain. Each evacuated job moves to the
    /// shallowest live shard whose healthy pool still fits it
    /// (admission solution intact, no hardware state to migrate); with
    /// no fitting survivor it resolves immediately as a typed
    /// `DegradedMachine` rejection. No-op unless
    /// [`FleetConfig::failover`] is on.
    fn fail_over(&mut self) -> Result<(), SchedError> {
        if !self.config.failover {
            return Ok(());
        }
        for i in 0..self.shards.len() {
            let evicted = if self.shards[i].healthy_clusters() == 0 {
                // Steal pops the tail; reverse to evacuate in arrival
                // order so the oldest jobs get first pick of survivors.
                let mut all = Vec::new();
                while let Some(q) = self.shards[i].steal() {
                    all.push(q);
                }
                all.reverse();
                all
            } else {
                self.shards[i].evict_unservable()
            };
            for q in evicted {
                let mut tried = vec![false; self.shards.len()];
                tried[i] = true;
                let target = loop {
                    match self.next_choice(&tried) {
                        Some(t) if self.shards[t].healthy_clusters() as u64 >= q.m_min => {
                            break Some(t);
                        }
                        Some(t) => tried[t] = true,
                        None => break None,
                    }
                };
                match target {
                    Some(t) => {
                        self.stats[i].incr("serve.health.failovers");
                        self.shards[t].inject(q)?;
                    }
                    None => self.shards[i].reject_evicted(q),
                }
            }
        }
        Ok(())
    }

    /// One stealing pass: each idle shard (empty queue, free clusters)
    /// takes one queued-but-unstarted job from the deepest queue holding
    /// at least two. Bounded by the shard count, deterministic in index
    /// order.
    fn rebalance(&mut self) -> Result<(), SchedError> {
        if !self.config.steal {
            return Ok(());
        }
        for i in 0..self.shards.len() {
            if self.shards[i].queue_depth() != 0 || self.shards[i].free_clusters() == 0 {
                continue;
            }
            let mut donor = None;
            let mut depth = 1usize; // require at least 2 queued to steal
            for (j, s) in self.shards.iter().enumerate() {
                if j != i && s.queue_depth() > depth {
                    donor = Some(j);
                    depth = s.queue_depth();
                }
            }
            let Some(j) = donor else { continue };
            if let Some(stolen) = self.shards[j].steal() {
                self.stats[j].incr("serve.steals_out");
                self.stats[i].incr("serve.steals_in");
                self.shards[i].inject(stolen)?;
            }
        }
        Ok(())
    }

    /// Drains shard `i`'s finished records into the fleet log and its
    /// statistics registry, along with its quarantine events and any
    /// health-state transition they caused.
    fn collect(&mut self, i: usize) {
        for record in self.shards[i].drain_finished() {
            let reg = &mut self.stats[i];
            match record.outcome {
                JobOutcome::Offloaded { .. } => {
                    reg.incr("serve.offloaded");
                    if let Some(l) = record.latency() {
                        reg.observe("serve.latency", l as f64);
                    }
                    if record.missed_deadline() {
                        reg.incr("serve.deadline_missed");
                    }
                    reg.add("serve.retries", u64::from(record.retries));
                }
                JobOutcome::Host { .. } => {
                    reg.incr("serve.host_runs");
                    if let Some(l) = record.latency() {
                        reg.observe("serve.latency", l as f64);
                    }
                    if record.missed_deadline() {
                        reg.incr("serve.deadline_missed");
                    }
                }
                // Counted here — not at submit time — so rejections
                // that materialize mid-run (stranded jobs on a dead
                // shard) are counted too, and rejections withdrawn by a
                // successful redirect never are.
                JobOutcome::Rejected { reason } => {
                    reg.incr("serve.rejected");
                    // One named counter per rejection kind, so
                    // operators can tell backpressure from model-side
                    // infeasibility at a glance
                    // (`serve.reject.queue_full` vs `.infeasible` …).
                    reg.incr(&format!("serve.reject.{}", reason.counter_key()));
                    if matches!(reason, RejectReason::QueueFull { .. }) {
                        reg.incr("serve.queue_full");
                    }
                }
            }
            self.completed.push(FleetRecord {
                shard: i as u32,
                record,
            });
        }
        let retired = self.shards[i].drain_quarantine_events();
        if !retired.is_empty() {
            self.stats[i].add("serve.health.quarantined_clusters", retired.len() as u64);
            let code = self.shard_state(i).code();
            if code > self.state_logged[i] {
                self.stats[i].add("serve.health.shard_state", code - self.state_logged[i]);
                self.state_logged[i] = code;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(placement: PlacementPolicy) -> FleetConfig {
        FleetConfig {
            shards: 4,
            clusters_per_shard: 4,
            queue_limit: 4,
            placement,
            steal: true,
            redirect_budget: 0,
            failover: false,
        }
    }

    fn fleet(placement: PlacementPolicy) -> Fleet {
        Fleet::analytic(config(placement), &ModelTable::paper_defaults())
    }

    #[test]
    fn cost_gates_reject_static_infeasible_and_audit_predictions() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        f.enable_cost_gates();

        // A one-cycle deadline is below the static best case of any
        // path; the gate fires before Eq. 3 even sees the job.
        let (shard, d) = f.submit(KernelId::Daxpy, 4_096, 1, 0).expect("submit");
        match d {
            ShardDecision::Rejected {
                reason: RejectReason::StaticInfeasible { best },
            } => assert!(best > 1),
            other => panic!("expected static-infeasible rejection, got {other:?}"),
        }
        assert_eq!(
            f.shard_stats()[shard as usize].counter("serve.reject.static_infeasible"),
            1
        );

        // A generous deadline passes the gate; the queued admission is
        // audited against the static envelope.
        let (shard, d) = f
            .submit(KernelId::Daxpy, 4_096, 10_000_000, 10)
            .expect("submit");
        assert!(matches!(d, ShardDecision::Queued { .. }));
        assert_eq!(
            f.shard_stats()[shard as usize].counter("serve.cost.checked"),
            1
        );
        f.drain().expect("drain");
    }

    #[test]
    fn round_robin_rotates_across_shards() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        let mut shards = Vec::new();
        for i in 0..8 {
            let (s, d) = f
                .submit(KernelId::Daxpy, 1024, 100_000, i * 10)
                .expect("submit");
            assert!(matches!(d, ShardDecision::Queued { .. }));
            shards.push(s);
        }
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 8);
    }

    #[test]
    fn least_loaded_avoids_the_deep_queue() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 8,
                placement: PlacementPolicy::LeastLoaded,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        // All at t=0: the balancer must alternate as queues grow.
        let mut placements = Vec::new();
        for _ in 0..6 {
            let (s, _) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
            placements.push(s);
        }
        let on_zero = placements.iter().filter(|&&s| s == 0).count();
        assert_eq!(on_zero, 3, "load must spread evenly: {placements:?}");
        f.drain().expect("drain");
    }

    #[test]
    fn queue_limit_backpressure_rejects_when_saturated() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 1,
                clusters_per_shard: 1,
                queue_limit: 2,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        let mut rejected = 0;
        for _ in 0..8 {
            let (_, d) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
            if matches!(
                d,
                ShardDecision::Rejected {
                    reason: RejectReason::QueueFull { .. }
                }
            ) {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "saturation must trip backpressure");
        let view = f.fleet_view();
        assert_eq!(view.stats().counter("serve.queue_full"), rejected);
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 8, "every job resolves exactly once");
    }

    #[test]
    fn idle_shards_steal_queued_work() {
        // Round-robin on 2 shards with 1 cluster each; shard 0 gets a
        // burst of big jobs (deep queue) while shard 1 receives tiny
        // host-bound jobs and idles its cluster — stealing must move
        // queued offloads over.
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 16,
                placement: PlacementPolicy::RoundRobin,
                steal: true,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        // Even submissions (shard 0): large offloads. Odd (shard 1):
        // below-break-even jobs that run on the host, leaving the
        // cluster free.
        for k in 0..10 {
            let (n, deadline) = if k % 2 == 0 {
                (4096, 1_000_000)
            } else {
                (64, 1_000_000)
            };
            f.submit(KernelId::Daxpy, n, deadline, k).expect("submit");
        }
        // Advance a little so shard 1 finishes nothing yet but the
        // balancer sees shard 0's queue.
        f.advance(100).expect("advance");
        let view = f.fleet_view();
        assert!(
            view.stats().counter("serve.steals_in") > 0,
            "idle shard must steal: {:?}",
            view.stats().counters().collect::<Vec<_>>()
        );
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 10);
    }

    #[test]
    fn shard_health_tracks_quarantine_mass() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 1,
                clusters_per_shard: 2,
                queue_limit: 4,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        assert_eq!(f.shard_state(0), ShardState::Healthy);
        f.quarantine_shard(0, ClusterMask::single(0));
        assert_eq!(f.shard_state(0), ShardState::Degraded);
        f.quarantine_shard(0, ClusterMask::single(1));
        assert_eq!(f.shard_state(0), ShardState::Dead);
        let stats = &f.shard_stats()[0];
        assert_eq!(stats.counter("serve.health.quarantined_clusters"), 2);
        // The monotone state counter carries the *current* code.
        assert_eq!(
            stats.counter("serve.health.shard_state"),
            ShardState::Dead.code()
        );
    }

    #[test]
    fn failover_moves_a_dead_shards_queue_to_survivors() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 16,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: true,
            },
            &ModelTable::paper_defaults(),
        );
        // Round-robin at t=0: three offloads land on each shard (one
        // running, two queued).
        for _ in 0..6 {
            let (_, d) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
            assert!(matches!(d, ShardDecision::Queued { .. }));
        }
        f.quarantine_shard(0, ClusterMask::single(0));
        assert_eq!(f.shard_state(0), ShardState::Dead);
        f.drain().expect("drain");
        let view = f.fleet_view();
        assert!(
            view.stats().counter("serve.health.failovers") > 0,
            "the dead shard's queue must evacuate: {:?}",
            view.stats().counters().collect::<Vec<_>>()
        );
        // Nothing admitted is lost: every job resolves as a completion,
        // not a stranded DegradedMachine rejection.
        assert_eq!(f.completed().len(), 6);
        assert!(f
            .completed()
            .iter()
            .all(|r| !matches!(r.record.outcome, JobOutcome::Rejected { .. })));
    }

    /// A 2×2 fleet where each shard runs a narrow filler on cluster 0
    /// and shard 0 additionally queues a job whose deadline only a
    /// 2-cluster partition can meet (t̂(1, 16384) misses, t̂(2, 16384)
    /// fits, host is far out of range).
    fn degraded_wide_job_fleet(shards: usize) -> Fleet {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards,
                clusters_per_shard: 2,
                queue_limit: 8,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: true,
            },
            &ModelTable::paper_defaults(),
        );
        for _ in 0..shards {
            let (_, d) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit filler");
            assert!(matches!(d, ShardDecision::Queued { m_min: 1, .. }));
        }
        let (s, d) = f.submit(KernelId::Daxpy, 16_384, 8_000, 0).expect("submit");
        assert_eq!(s, 0, "round-robin wraps the wide job onto shard 0");
        assert!(
            matches!(d, ShardDecision::Queued { m_min: 2, .. }),
            "the deadline must force a 2-cluster partition, got {d:?}"
        );
        f
    }

    #[test]
    fn failover_rescues_a_wedged_wide_job_from_a_degraded_shard() {
        // Quarantining shard 0's free cluster leaves its queued m_min=2
        // job unservable — without eviction it would wedge the strict
        // FIFO head until drain. Failover must move it to shard 1,
        // whose full pool still fits it, where it completes 2-wide.
        let mut f = degraded_wide_job_fleet(2);
        f.quarantine_shard(0, ClusterMask::single(1));
        assert_eq!(f.shard_state(0), ShardState::Degraded);
        f.drain().expect("drain");
        assert!(f.fleet_view().stats().counter("serve.health.failovers") > 0);
        assert_eq!(f.completed().len(), 3);
        let wide = f
            .completed()
            .iter()
            .find(|r| r.record.job.id == 2)
            .expect("wide job resolves");
        assert_eq!(wide.shard, 1, "the wide job must land on the survivor");
        assert!(
            matches!(wide.record.outcome, JobOutcome::Offloaded { m: 2, .. }),
            "rescued job still runs at its admitted width: {:?}",
            wide.record.outcome
        );
    }

    #[test]
    fn eviction_rejects_typed_when_no_survivor_fits() {
        // Same wedge, but every shard is degraded to one cluster: no
        // pool fits the m_min=2 job, so eviction must resolve it as an
        // immediate `DegradedMachine` rejection instead of moving it —
        // and the narrow tenants on the surviving clusters finish
        // untouched.
        let mut f = degraded_wide_job_fleet(2);
        f.quarantine_shard(0, ClusterMask::single(1));
        f.quarantine_shard(1, ClusterMask::single(1));
        f.drain().expect("drain");
        assert_eq!(f.fleet_view().stats().counter("serve.health.failovers"), 0);
        assert_eq!(f.completed().len(), 3);
        let wide = f
            .completed()
            .iter()
            .find(|r| r.record.job.id == 2)
            .expect("wide job resolves");
        match wide.record.outcome {
            JobOutcome::Rejected {
                reason: RejectReason::DegradedMachine { required, healthy },
            } => {
                assert_eq!(required, 2);
                assert_eq!(healthy, 1);
            }
            ref other => panic!("expected a degraded rejection, got {other:?}"),
        }
        let offloaded = f
            .completed()
            .iter()
            .filter(|r| matches!(r.record.outcome, JobOutcome::Offloaded { .. }))
            .count();
        assert_eq!(offloaded, 2, "both fillers complete on surviving clusters");
    }

    #[test]
    fn without_failover_a_dead_shard_strands_its_queue() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 16,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
                redirect_budget: 0,
                failover: false,
            },
            &ModelTable::paper_defaults(),
        );
        for _ in 0..6 {
            f.submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
        }
        f.quarantine_shard(0, ClusterMask::single(0));
        f.drain().expect("drain");
        let stranded = f
            .completed()
            .iter()
            .filter(|r| {
                matches!(
                    r.record.outcome,
                    JobOutcome::Rejected {
                        reason: RejectReason::DegradedMachine { .. }
                    }
                )
            })
            .count();
        assert!(stranded > 0, "queued work on the dead shard must strand");
        assert_eq!(f.completed().len(), 6);
        assert_eq!(f.fleet_view().stats().counter("serve.health.failovers"), 0);
    }

    #[test]
    fn queue_full_jobs_redirect_to_shards_with_room() {
        // Round-robin sends heavy offloads to shard 0 (even arrivals)
        // and below-break-even host jobs to shard 1 (odd arrivals), so
        // shard 0's queue saturates while shard 1 sits empty.
        let run = |redirect_budget: u32| {
            let mut f = Fleet::analytic(
                FleetConfig {
                    shards: 2,
                    clusters_per_shard: 1,
                    queue_limit: 2,
                    placement: PlacementPolicy::RoundRobin,
                    steal: false,
                    redirect_budget,
                    failover: false,
                },
                &ModelTable::paper_defaults(),
            );
            for k in 0..12u64 {
                let n = if k % 2 == 0 { 4096 } else { 64 };
                f.submit(KernelId::Daxpy, n, 1_000_000, 0).expect("submit");
            }
            f.drain().expect("drain");
            f
        };
        let strict = run(0);
        let healed = run(1);
        let queue_full = |f: &Fleet| f.fleet_view().stats().counter("serve.queue_full");
        assert!(
            queue_full(&healed) < queue_full(&strict),
            "redirection must convert backpressure rejections into work: {} vs {}",
            queue_full(&healed),
            queue_full(&strict)
        );
        assert!(
            healed
                .fleet_view()
                .stats()
                .counter("serve.health.redirects")
                > 0
        );
        // Exactly-once resolution under withdrawal: 12 records, one per
        // distinct job.
        for f in [&strict, &healed] {
            let mut ids: Vec<u64> = f.completed().iter().map(|r| r.record.job.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 12);
        }
    }

    #[test]
    fn placement_skips_dead_shards() {
        for placement in ALL_PLACEMENTS {
            let mut f = Fleet::analytic(
                FleetConfig {
                    shards: 3,
                    clusters_per_shard: 2,
                    queue_limit: 8,
                    placement,
                    steal: false,
                    redirect_budget: 0,
                    failover: false,
                },
                &ModelTable::paper_defaults(),
            );
            f.quarantine_shard(1, ClusterMask::first(2));
            for i in 0..9u64 {
                let (s, _) = f
                    .submit(KernelId::Daxpy, 1024, 100_000, i * 10)
                    .expect("submit");
                assert_ne!(s, 1, "{placement:?} placed on a dead shard");
            }
            f.drain().expect("drain");
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let run = || {
            let mut f = fleet(PlacementPolicy::ModelGuided);
            for i in 0..50u64 {
                let n = 256 << (i % 4);
                f.submit(KernelId::Daxpy, n, 50_000, i * 137)
                    .expect("submit");
            }
            f.drain().expect("drain");
            serde_json::to_string(&f.completed().to_vec()).expect("serialize")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fleet_view_merges_per_shard_latencies() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        for i in 0..16u64 {
            f.submit(KernelId::Daxpy, 1024, 100_000, i * 1000)
                .expect("submit");
        }
        f.drain().expect("drain");
        let view = f.fleet_view();
        let global = view.stats().histogram("serve.latency");
        let per_shard: u64 = (0..4)
            .map(|i| {
                view.stats()
                    .histogram(&format!("shard{i}.serve.latency"))
                    .count()
            })
            .sum();
        assert_eq!(global.count(), 16);
        assert_eq!(per_shard, 16);
        assert!(view.quantile("serve.latency", 0.99).is_some());
    }
}
