//! The shard manager: a fleet of independent co-simulated (or analytic)
//! SoC shards behind one load balancer.
//!
//! Each shard is an incremental [`ShardSim`] — the same admission →
//! allocation → dispatch semantics as the closed-loop `Engine`, driven
//! event-by-event. The fleet layer adds what a serving front-end needs
//! on top:
//!
//! - **Placement** ([`PlacementPolicy`]): which shard an arriving job is
//!   offered to. Round-robin ignores load; least-loaded picks the
//!   shallowest queue; model-guided picks the smallest *predicted
//!   backlog* in cluster-cycles — the sum of Eq. 1 t̂(M, N) predictions
//!   of everything admitted and unfinished, normalized by shard
//!   capacity, so a queue of two huge jobs weighs more than a queue of
//!   five tiny ones.
//! - **Backpressure**: every shard runs with a bounded admission queue
//!   ([`ShardSim::set_queue_limit`]); the chosen shard's verdict is
//!   final, so an overloaded fleet rejects with
//!   [`RejectReason::QueueFull`] instead of building unbounded queues.
//! - **Work stealing**: when a shard goes idle (empty queue, free
//!   clusters) while a sibling has jobs backed up, the idle shard steals
//!   a queued-but-unstarted job. Stealing moves only jobs that have not
//!   touched hardware, so records stay exact.
//! - **Telemetry**: one [`StatsRegistry`] per shard (accept/reject/steal
//!   counters, completion-latency histogram), merged on demand into a
//!   fleet-wide [`FleetView`] whose histogram merge is exact.
//!
//! Everything iterates in shard-index order and all state lives in
//! ordered containers, so a fixed (config, job stream) pair replays to
//! byte-identical reports.
//!
//! [`RejectReason::QueueFull`]: mpsoc_sched::RejectReason::QueueFull

use mpsoc_sched::{
    CostGate, FifoFirstFit, Job, JobOutcome, JobRecord, KernelId, ModelTable, RejectReason,
    SchedError, ServiceBackend, ShardDecision, ShardSim,
};
use mpsoc_telemetry::{FleetView, StatsRegistry};
use serde::{Deserialize, Serialize};

/// How the balancer picks a shard for each arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Rotate through shards regardless of load.
    RoundRobin,
    /// The shard with the shallowest admission queue (ties to the
    /// lowest index).
    LeastLoaded,
    /// The shard with the least predicted backlog: Σ t̂(M_min, N) ·
    /// M_min over admitted-but-unfinished jobs, per cluster of
    /// capacity (ties to the lowest index).
    ModelGuided,
}

/// Every placement policy, in study order.
pub const ALL_PLACEMENTS: [PlacementPolicy; 3] = [
    PlacementPolicy::RoundRobin,
    PlacementPolicy::LeastLoaded,
    PlacementPolicy::ModelGuided,
];

impl PlacementPolicy {
    /// Stable snake_case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round_robin",
            PlacementPolicy::LeastLoaded => "least_loaded",
            PlacementPolicy::ModelGuided => "model_guided",
        }
    }
}

/// Fleet shape and balancing behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of independent shards.
    pub shards: usize,
    /// Clusters per shard machine.
    pub clusters_per_shard: usize,
    /// Per-shard admission-queue cap (backpressure threshold).
    pub queue_limit: usize,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Whether idle shards steal queued work from loaded siblings.
    pub steal: bool,
}

/// One finished job, tagged with the shard that resolved it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Shard index.
    pub shard: u32,
    /// The shard's record (rejections included).
    pub record: JobRecord,
}

/// A fleet of shards behind one balancer.
pub struct Fleet {
    config: FleetConfig,
    shards: Vec<ShardSim>,
    stats: Vec<StatsRegistry>,
    rr_next: usize,
    next_job_id: u64,
    submitted: u64,
    completed: Vec<FleetRecord>,
}

impl Fleet {
    /// A fleet whose shards all charge analytic (Eq. 1) service times —
    /// the configuration for large SLO sweeps, where a million jobs
    /// must simulate in seconds.
    pub fn analytic(config: FleetConfig, table: &ModelTable) -> Self {
        let backends = (0..config.shards)
            .map(|_| ServiceBackend::analytic(table.clone()))
            .collect();
        Fleet::with_backends(config, table, backends)
    }

    /// A fleet over explicit per-shard backends (e.g. co-simulated SoC
    /// instances). `backends.len()` must equal `config.shards`.
    pub fn with_backends(
        config: FleetConfig,
        table: &ModelTable,
        backends: Vec<ServiceBackend>,
    ) -> Self {
        assert_eq!(
            backends.len(),
            config.shards,
            "one backend per shard required"
        );
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let shards = backends
            .into_iter()
            .map(|backend| {
                let mut s = ShardSim::new(
                    table.clone(),
                    config.clusters_per_shard,
                    backend,
                    Box::new(FifoFirstFit),
                );
                s.set_queue_limit(config.queue_limit);
                s
            })
            .collect();
        Fleet {
            stats: (0..config.shards).map(|_| StatsRegistry::new()).collect(),
            shards,
            config,
            rr_next: 0,
            next_job_id: 0,
            submitted: 0,
            completed: Vec::new(),
        }
    }

    /// Arms every shard with a static cost gate ([`CostGate`]): jobs
    /// whose deadline undercuts the static best-case runtime bound are
    /// rejected with `serve.reject.static_infeasible`, and each queued
    /// admission's Eq. 1 prediction is audited against the static
    /// `[best, worst]` envelope at its `M_min` — `serve.cost.checked`
    /// counts audits, `serve.cost.pred_below_best` /
    /// `serve.cost.pred_above_worst` count predictions that left the
    /// provable envelope (the model-drift alarm signal). Opt-in: the
    /// analysis runs once per distinct (kernel, n) per shard.
    pub fn enable_cost_gates(&mut self) {
        for shard in &mut self.shards {
            shard.enable_cost(CostGate::manticore());
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Jobs offered to the fleet so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Every resolved record so far (completions and rejections), in
    /// resolution order.
    pub fn completed(&self) -> &[FleetRecord] {
        &self.completed
    }

    /// Per-shard statistics registries, indexed by shard.
    pub fn shard_stats(&self) -> &[StatsRegistry] {
        &self.stats
    }

    /// The merged fleet view: global counters/histograms plus
    /// `shard<i>.`-prefixed per-shard breakdowns.
    pub fn fleet_view(&self) -> FleetView {
        FleetView::with_shards(self.stats.iter())
    }

    /// Direct access to a shard (load inspection, tests).
    pub fn shard(&self, i: usize) -> &ShardSim {
        &self.shards[i]
    }

    /// Advances every shard to `until`, collects completions, and — when
    /// stealing is on — lets idle shards take queued work from loaded
    /// siblings.
    ///
    /// # Errors
    ///
    /// Shard service-backend failures.
    pub fn advance(&mut self, until: u64) -> Result<(), SchedError> {
        let _prof = mpsoc_sim::profile::scope("serve.fleet.advance");
        for i in 0..self.shards.len() {
            self.shards[i].advance(until)?;
            self.collect(i);
        }
        self.rebalance()
    }

    /// Submits one job at virtual time `now` (non-decreasing across
    /// calls). The placement policy picks the shard; that shard's
    /// admission verdict is final.
    ///
    /// # Errors
    ///
    /// Shard service-backend failures.
    pub fn submit(
        &mut self,
        kernel: KernelId,
        n: u64,
        deadline: u64,
        now: u64,
    ) -> Result<(u32, ShardDecision), SchedError> {
        self.advance(now)?;
        let shard = self.place();
        let job = Job {
            id: self.next_job_id,
            kernel,
            n,
            arrival: now,
            deadline,
        };
        self.next_job_id += 1;
        self.submitted += 1;
        let decision = self.shards[shard].offer(job)?;
        match decision {
            ShardDecision::Queued { .. } | ShardDecision::Host { .. } => {
                self.stats[shard].incr("serve.accepted");
                if let Some(check) = self.shards[shard].take_cost_check() {
                    self.stats[shard].incr("serve.cost.checked");
                    if check.predicted < check.best as f64 {
                        self.stats[shard].incr("serve.cost.pred_below_best");
                    }
                    if check.predicted > check.worst as f64 {
                        self.stats[shard].incr("serve.cost.pred_above_worst");
                    }
                }
            }
            ShardDecision::Rejected { reason } => {
                self.stats[shard].incr("serve.rejected");
                // One named counter per rejection kind, so operators can
                // tell backpressure from model-side infeasibility at a
                // glance (`serve.reject.queue_full` vs `.infeasible` …).
                self.stats[shard].incr(&format!("serve.reject.{}", reason.counter_key()));
                if matches!(reason, RejectReason::QueueFull { .. }) {
                    self.stats[shard].incr("serve.queue_full");
                }
            }
        }
        self.collect(shard);
        Ok((shard as u32, decision))
    }

    /// Runs every shard dry and collects the remaining completions.
    ///
    /// # Errors
    ///
    /// Shard failures, including a stalled co-simulated session.
    pub fn drain(&mut self) -> Result<(), SchedError> {
        self.rebalance()?;
        for i in 0..self.shards.len() {
            self.shards[i].drain()?;
            self.collect(i);
        }
        Ok(())
    }

    /// The placement policy's shard choice for the next job.
    fn place(&mut self) -> usize {
        match self.config.placement {
            PlacementPolicy::RoundRobin => {
                let shard = self.rr_next % self.shards.len();
                self.rr_next += 1;
                shard
            }
            PlacementPolicy::LeastLoaded => {
                let mut best = 0;
                for (i, s) in self.shards.iter().enumerate().skip(1) {
                    if s.queue_depth() < self.shards[best].queue_depth() {
                        best = i;
                    }
                }
                best
            }
            PlacementPolicy::ModelGuided => {
                let score = |s: &ShardSim| s.backlog_cycles() / s.clusters() as f64;
                let mut best = 0;
                let mut best_score = score(&self.shards[0]);
                for (i, s) in self.shards.iter().enumerate().skip(1) {
                    let sc = score(s);
                    if sc < best_score {
                        best = i;
                        best_score = sc;
                    }
                }
                best
            }
        }
    }

    /// One stealing pass: each idle shard (empty queue, free clusters)
    /// takes one queued-but-unstarted job from the deepest queue holding
    /// at least two. Bounded by the shard count, deterministic in index
    /// order.
    fn rebalance(&mut self) -> Result<(), SchedError> {
        if !self.config.steal {
            return Ok(());
        }
        for i in 0..self.shards.len() {
            if self.shards[i].queue_depth() != 0 || self.shards[i].free_clusters() == 0 {
                continue;
            }
            let mut donor = None;
            let mut depth = 1usize; // require at least 2 queued to steal
            for (j, s) in self.shards.iter().enumerate() {
                if j != i && s.queue_depth() > depth {
                    donor = Some(j);
                    depth = s.queue_depth();
                }
            }
            let Some(j) = donor else { continue };
            if let Some(stolen) = self.shards[j].steal() {
                self.stats[j].incr("serve.steals_out");
                self.stats[i].incr("serve.steals_in");
                self.shards[i].inject(stolen)?;
            }
        }
        Ok(())
    }

    /// Drains shard `i`'s finished records into the fleet log and its
    /// statistics registry.
    fn collect(&mut self, i: usize) {
        for record in self.shards[i].drain_finished() {
            let reg = &mut self.stats[i];
            match record.outcome {
                JobOutcome::Offloaded { .. } => {
                    reg.incr("serve.offloaded");
                    if let Some(l) = record.latency() {
                        reg.observe("serve.latency", l as f64);
                    }
                    if record.missed_deadline() {
                        reg.incr("serve.deadline_missed");
                    }
                    reg.add("serve.retries", u64::from(record.retries));
                }
                JobOutcome::Host { .. } => {
                    reg.incr("serve.host_runs");
                    if let Some(l) = record.latency() {
                        reg.observe("serve.latency", l as f64);
                    }
                    if record.missed_deadline() {
                        reg.incr("serve.deadline_missed");
                    }
                }
                // Rejections were counted at submit time.
                JobOutcome::Rejected { .. } => {}
            }
            self.completed.push(FleetRecord {
                shard: i as u32,
                record,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(placement: PlacementPolicy) -> FleetConfig {
        FleetConfig {
            shards: 4,
            clusters_per_shard: 4,
            queue_limit: 4,
            placement,
            steal: true,
        }
    }

    fn fleet(placement: PlacementPolicy) -> Fleet {
        Fleet::analytic(config(placement), &ModelTable::paper_defaults())
    }

    #[test]
    fn cost_gates_reject_static_infeasible_and_audit_predictions() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        f.enable_cost_gates();

        // A one-cycle deadline is below the static best case of any
        // path; the gate fires before Eq. 3 even sees the job.
        let (shard, d) = f.submit(KernelId::Daxpy, 4_096, 1, 0).expect("submit");
        match d {
            ShardDecision::Rejected {
                reason: RejectReason::StaticInfeasible { best },
            } => assert!(best > 1),
            other => panic!("expected static-infeasible rejection, got {other:?}"),
        }
        assert_eq!(
            f.shard_stats()[shard as usize].counter("serve.reject.static_infeasible"),
            1
        );

        // A generous deadline passes the gate; the queued admission is
        // audited against the static envelope.
        let (shard, d) = f
            .submit(KernelId::Daxpy, 4_096, 10_000_000, 10)
            .expect("submit");
        assert!(matches!(d, ShardDecision::Queued { .. }));
        assert_eq!(
            f.shard_stats()[shard as usize].counter("serve.cost.checked"),
            1
        );
        f.drain().expect("drain");
    }

    #[test]
    fn round_robin_rotates_across_shards() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        let mut shards = Vec::new();
        for i in 0..8 {
            let (s, d) = f
                .submit(KernelId::Daxpy, 1024, 100_000, i * 10)
                .expect("submit");
            assert!(matches!(d, ShardDecision::Queued { .. }));
            shards.push(s);
        }
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 8);
    }

    #[test]
    fn least_loaded_avoids_the_deep_queue() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 8,
                placement: PlacementPolicy::LeastLoaded,
                steal: false,
            },
            &ModelTable::paper_defaults(),
        );
        // All at t=0: the balancer must alternate as queues grow.
        let mut placements = Vec::new();
        for _ in 0..6 {
            let (s, _) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
            placements.push(s);
        }
        let on_zero = placements.iter().filter(|&&s| s == 0).count();
        assert_eq!(on_zero, 3, "load must spread evenly: {placements:?}");
        f.drain().expect("drain");
    }

    #[test]
    fn queue_limit_backpressure_rejects_when_saturated() {
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 1,
                clusters_per_shard: 1,
                queue_limit: 2,
                placement: PlacementPolicy::RoundRobin,
                steal: false,
            },
            &ModelTable::paper_defaults(),
        );
        let mut rejected = 0;
        for _ in 0..8 {
            let (_, d) = f
                .submit(KernelId::Daxpy, 4096, 1_000_000, 0)
                .expect("submit");
            if matches!(
                d,
                ShardDecision::Rejected {
                    reason: RejectReason::QueueFull { .. }
                }
            ) {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "saturation must trip backpressure");
        let view = f.fleet_view();
        assert_eq!(view.stats().counter("serve.queue_full"), rejected);
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 8, "every job resolves exactly once");
    }

    #[test]
    fn idle_shards_steal_queued_work() {
        // Round-robin on 2 shards with 1 cluster each; shard 0 gets a
        // burst of big jobs (deep queue) while shard 1 receives tiny
        // host-bound jobs and idles its cluster — stealing must move
        // queued offloads over.
        let mut f = Fleet::analytic(
            FleetConfig {
                shards: 2,
                clusters_per_shard: 1,
                queue_limit: 16,
                placement: PlacementPolicy::RoundRobin,
                steal: true,
            },
            &ModelTable::paper_defaults(),
        );
        // Even submissions (shard 0): large offloads. Odd (shard 1):
        // below-break-even jobs that run on the host, leaving the
        // cluster free.
        for k in 0..10 {
            let (n, deadline) = if k % 2 == 0 {
                (4096, 1_000_000)
            } else {
                (64, 1_000_000)
            };
            f.submit(KernelId::Daxpy, n, deadline, k).expect("submit");
        }
        // Advance a little so shard 1 finishes nothing yet but the
        // balancer sees shard 0's queue.
        f.advance(100).expect("advance");
        let view = f.fleet_view();
        assert!(
            view.stats().counter("serve.steals_in") > 0,
            "idle shard must steal: {:?}",
            view.stats().counters().collect::<Vec<_>>()
        );
        f.drain().expect("drain");
        assert_eq!(f.completed().len(), 10);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let run = || {
            let mut f = fleet(PlacementPolicy::ModelGuided);
            for i in 0..50u64 {
                let n = 256 << (i % 4);
                f.submit(KernelId::Daxpy, n, 50_000, i * 137)
                    .expect("submit");
            }
            f.drain().expect("drain");
            serde_json::to_string(&f.completed().to_vec()).expect("serialize")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fleet_view_merges_per_shard_latencies() {
        let mut f = fleet(PlacementPolicy::RoundRobin);
        for i in 0..16u64 {
            f.submit(KernelId::Daxpy, 1024, 100_000, i * 1000)
                .expect("submit");
        }
        f.drain().expect("drain");
        let view = f.fleet_view();
        let global = view.stats().histogram("serve.latency");
        let per_shard: u64 = (0..4)
            .map(|i| {
                view.stats()
                    .histogram(&format!("shard{i}.serve.latency"))
                    .count()
            })
            .sum();
        assert_eq!(global.count(), 16);
        assert_eq!(per_shard, 16);
        assert!(view.quantile("serve.latency", 0.99).is_some());
    }
}
