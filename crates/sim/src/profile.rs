//! Wall-clock scoped self-profiler: RAII timer guards aggregating into a
//! per-site call tree.
//!
//! The simulator's own speed is a first-class metric — every "make the
//! simulator fast" change needs to know where wall-clock time goes
//! *before* it goes there. This module provides the always-on,
//! low-overhead substrate: a [`scope`] guard placed at a hot site (the
//! interpreter dispatch loop, the DES event loop, a shard advance)
//! times the enclosed region and folds it into a global tree keyed by
//! the site's position in the dynamic scope stack, so the same site
//! reached through different callers shows up as distinct tree paths.
//!
//! Three disciplines, mirroring the rest of the workspace:
//!
//! - **Single-branch when disabled.** [`scope`] checks one atomic and
//!   returns an inert guard; no clock is read, no lock is taken, no
//!   allocation happens. Disabling profiling (`MPSOC_PROFILE=0` or
//!   [`set_enabled`]) must therefore leave every *simulated* result
//!   byte-identical — wall time never feeds back into cycle-domain
//!   state, it is only ever observed.
//! - **Thread-safe aggregation.** The tree is global behind a mutex;
//!   the scope *stack* is thread-local. Concurrent scopes on different
//!   threads fold into the same tree (same-path scopes share a node).
//! - **Deterministic shape.** Children are kept name-sorted, so two
//!   runs of the same workload produce reports with identical structure
//!   (the recorded nanoseconds differ, which is why profile output only
//!   ever lands in `BENCH_*` side artifacts, never in `results/`).
//!
//! Timing uses [`std::time::Instant`] (monotonic). Site names are
//! `&'static str` so entering a scope never allocates on the hot path
//! once the site's node exists.
//!
//! # Example
//!
//! ```
//! use mpsoc_sim::profile;
//!
//! profile::reset();
//! profile::set_enabled(true);
//! {
//!     let _outer = profile::scope("outer");
//!     let _inner = profile::scope("inner");
//! }
//! let report = profile::snapshot();
//! assert_eq!(report.roots.len(), 1);
//! assert_eq!(report.roots[0].name, "outer");
//! assert_eq!(report.roots[0].children[0].name, "inner");
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// One site in the aggregated call tree (internal storage).
#[derive(Debug)]
struct NodeData {
    name: &'static str,
    calls: u64,
    total: Duration,
    /// Child node indices, kept sorted by child name.
    children: Vec<usize>,
}

/// The global aggregation tree. Node 0 is the synthetic root.
#[derive(Debug)]
struct Tree {
    nodes: Vec<NodeData>,
    /// Bumped by [`reset`]; guards from an older epoch drop silently.
    epoch: u64,
}

impl Tree {
    fn fresh(epoch: u64) -> Self {
        Tree {
            nodes: vec![NodeData {
                name: "",
                calls: 0,
                total: Duration::ZERO,
                children: Vec::new(),
            }],
            epoch,
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn enter(&mut self, parent: usize, name: &'static str) -> usize {
        let pos = self.nodes[parent]
            .children
            .binary_search_by(|&c| self.nodes[c].name.cmp(name));
        match pos {
            Ok(i) => self.nodes[parent].children[i],
            Err(i) => {
                let idx = self.nodes.len();
                self.nodes.push(NodeData {
                    name,
                    calls: 0,
                    total: Duration::ZERO,
                    children: Vec::new(),
                });
                self.nodes[parent].children.insert(i, idx);
                idx
            }
        }
    }
}

fn tree() -> &'static Mutex<Tree> {
    static TREE: OnceLock<Mutex<Tree>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(Tree::fresh(0)))
}

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        // Opt out with MPSOC_PROFILE=0; any other value (or absence)
        // keeps the magic-trace-style always-on default.
        let on = std::env::var("MPSOC_PROFILE").map_or(true, |v| v != "0");
        AtomicBool::new(on)
    })
}

/// Whether profiling is currently collecting. Defaults to on; the
/// environment variable `MPSOC_PROFILE=0` (read once) or
/// [`set_enabled`]`(false)` turns it off.
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Turns collection on or off at runtime (overrides the environment).
/// Scopes already open keep recording; new scopes see the new state.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

thread_local! {
    /// This thread's open-scope stack: `(epoch, node index)` pairs.
    static STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// An open profiling scope; dropping it records the elapsed wall time
/// at its tree node. Scopes must drop in LIFO order per thread (the
/// natural order for RAII locals).
#[derive(Debug)]
pub struct Scope {
    armed: Option<(Instant, u64, usize)>,
}

/// Opens a scope at `name` under the innermost open scope of this
/// thread (or at the root). When profiling is disabled this is a single
/// atomic load returning an inert guard.
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope { armed: None };
    }
    let (epoch, idx) = {
        let mut t = tree().lock().expect("profile tree poisoned");
        let epoch = t.epoch;
        let parent = STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|&&(e, _)| e == epoch)
                .map(|&(_, i)| i)
                .unwrap_or(0)
        });
        (epoch, t.enter(parent, name))
    };
    STACK.with(|s| s.borrow_mut().push((epoch, idx)));
    Scope {
        armed: Some((Instant::now(), epoch, idx)),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some((start, epoch, idx)) = self.armed.take() else {
            return;
        };
        let elapsed = start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(e, i)| e == epoch && i == idx) {
                stack.truncate(pos);
            }
        });
        let mut t = tree().lock().expect("profile tree poisoned");
        // A reset between open and drop invalidates the index: drop the
        // sample rather than attributing it to an unrelated node.
        if t.epoch == epoch {
            t.nodes[idx].calls += 1;
            t.nodes[idx].total += elapsed;
        }
    }
}

/// Discards all recorded data (and orphans any scopes currently open —
/// their samples are dropped, not misattributed).
pub fn reset() {
    let mut t = tree().lock().expect("profile tree poisoned");
    let epoch = t.epoch + 1;
    *t = Tree::fresh(epoch);
}

/// One site of a [`ProfileReport`]: aggregated calls and wall time for
/// a distinct scope-stack path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileNode {
    /// Site name passed to [`scope`].
    pub name: String,
    /// Completed scope entries at this path.
    pub calls: u64,
    /// Inclusive wall time (this site plus everything beneath it).
    pub total_ns: u64,
    /// Exclusive wall time: `total_ns` minus the children's totals
    /// (clamped at zero — child scopes opened before a parent existed
    /// cannot make a site negative).
    pub self_ns: u64,
    /// Child sites, name-sorted.
    pub children: Vec<ProfileNode>,
}

/// A point-in-time copy of the aggregated profile tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Top-level sites (scopes opened with no enclosing scope).
    pub roots: Vec<ProfileNode>,
}

/// A flattened site: the same name may appear at several tree paths;
/// this entry sums them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteTotal {
    /// Site name.
    pub name: String,
    /// Completed calls across all paths.
    pub calls: u64,
    /// Summed exclusive wall time.
    pub self_ns: u64,
    /// Summed inclusive wall time.
    pub total_ns: u64,
}

impl ProfileReport {
    /// Summed inclusive wall time of the top-level sites — the profiled
    /// share of the process's wall clock.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Flattens the tree into per-name totals, hottest (by exclusive
    /// time) first; ties break by name so the order is reproducible.
    pub fn site_totals(&self) -> Vec<SiteTotal> {
        use std::collections::BTreeMap;
        let mut flat: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        fn walk<'a>(nodes: &'a [ProfileNode], flat: &mut BTreeMap<&'a str, (u64, u64, u64)>) {
            for n in nodes {
                let e = flat.entry(&n.name).or_insert((0, 0, 0));
                e.0 += n.calls;
                e.1 += n.self_ns;
                e.2 += n.total_ns;
                walk(&n.children, flat);
            }
        }
        walk(&self.roots, &mut flat);
        let mut sites: Vec<SiteTotal> = flat
            .into_iter()
            .map(|(name, (calls, self_ns, total_ns))| SiteTotal {
                name: name.to_owned(),
                calls,
                self_ns,
                total_ns,
            })
            .collect();
        sites.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        sites
    }

    /// Renders the tree in Brendan Gregg's collapsed-stack format, one
    /// `path;to;site <self_ns>` line per node — pipe into any
    /// flamegraph renderer. Lines appear in depth-first name order.
    pub fn collapsed(&self) -> String {
        fn walk(prefix: &str, nodes: &[ProfileNode], out: &mut String) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.clone()
                } else {
                    format!("{prefix};{}", n.name)
                };
                out.push_str(&format!("{path} {}\n", n.self_ns));
                walk(&path, &n.children, out);
            }
        }
        let mut out = String::new();
        walk("", &self.roots, &mut out);
        out
    }

    /// Renders an indented human-readable tree (calls, total, self per
    /// site), for terminal output.
    pub fn render(&self) -> String {
        fn walk(depth: usize, nodes: &[ProfileNode], out: &mut String) {
            for n in nodes {
                out.push_str(&format!(
                    "{:indent$}{}  calls={} total={:.3}ms self={:.3}ms\n",
                    "",
                    n.name,
                    n.calls,
                    n.total_ns as f64 / 1e6,
                    n.self_ns as f64 / 1e6,
                    indent = depth * 2
                ));
                walk(depth + 1, &n.children, out);
            }
        }
        let mut out = String::new();
        walk(0, &self.roots, &mut out);
        out
    }
}

/// Copies the current aggregated tree into a serializable report.
/// Open scopes contribute nothing until they drop.
pub fn snapshot() -> ProfileReport {
    fn build(t: &Tree, idx: usize) -> ProfileNode {
        let children: Vec<ProfileNode> =
            t.nodes[idx].children.iter().map(|&c| build(t, c)).collect();
        let total_ns = t.nodes[idx].total.as_nanos() as u64;
        let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
        ProfileNode {
            name: t.nodes[idx].name.to_owned(),
            calls: t.nodes[idx].calls,
            total_ns,
            self_ns: total_ns.saturating_sub(child_ns),
            children,
        }
    }
    let t = tree().lock().expect("profile tree poisoned");
    ProfileReport {
        roots: t.nodes[0]
            .children
            .clone()
            .into_iter()
            .map(|c| build(&t, c))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is a process-wide singleton, so every test that
    // touches it must hold this lock: otherwise parallel tests
    // interleave their trees.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nesting_builds_a_tree_and_times_are_inclusive() {
        let _g = guard();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _a = scope("a");
            {
                let _b = scope("b");
                std::thread::sleep(Duration::from_millis(1));
            }
            let _c = scope("c");
        }
        let report = snapshot();
        assert_eq!(report.roots.len(), 1);
        let a = &report.roots[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls, 3);
        let names: Vec<&str> = a.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["b", "c"], "children are name-sorted");
        let b = &a.children[0];
        assert!(b.total_ns >= 3_000_000, "slept >= 1ms per call");
        assert!(a.total_ns >= b.total_ns, "parent includes child");
        assert_eq!(a.self_ns, a.total_ns - b.total_ns - a.children[1].total_ns);
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = guard();
        reset();
        set_enabled(false);
        {
            let _a = scope("ghost");
        }
        assert!(snapshot().roots.is_empty());
        set_enabled(true);
    }

    #[test]
    fn same_path_scopes_aggregate() {
        let _g = guard();
        reset();
        set_enabled(true);
        for _ in 0..10 {
            let _s = scope("site");
        }
        let report = snapshot();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].calls, 10);
    }

    #[test]
    fn threads_fold_into_one_tree() {
        let _g = guard();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _outer = scope("worker");
                        let _inner = scope("inner");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let report = snapshot();
        let worker = report
            .roots
            .iter()
            .find(|r| r.name == "worker")
            .expect("merged root");
        assert_eq!(worker.calls, 20, "4 threads x 5 calls share one node");
        assert_eq!(worker.children[0].calls, 20);
    }

    #[test]
    fn reset_mid_scope_drops_the_sample() {
        let _g = guard();
        reset();
        set_enabled(true);
        let s = scope("stale");
        reset();
        drop(s);
        assert!(
            snapshot().roots.is_empty(),
            "a scope spanning reset must not resurrect"
        );
        // And the orphaned stack entry must not corrupt later parents.
        {
            let _fresh = scope("fresh");
        }
        let report = snapshot();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "fresh");
    }

    #[test]
    fn site_totals_merge_paths_and_sort_hottest_first() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            let _a = scope("a");
            let _shared = scope("shared");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _b = scope("b");
            let _shared = scope("shared");
        }
        let report = snapshot();
        let sites = report.site_totals();
        let shared = sites.iter().find(|s| s.name == "shared").expect("merged");
        assert_eq!(shared.calls, 2, "same name under two parents sums");
        assert_eq!(sites[0].name, "shared", "hottest (2ms sleep) first");
    }

    #[test]
    fn collapsed_stack_lines_carry_full_paths() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            let _a = scope("root_site");
            let _b = scope("leaf");
        }
        let report = snapshot();
        let folded = report.collapsed();
        assert!(folded.contains("root_site "));
        assert!(folded.contains("root_site;leaf "));
        assert_eq!(folded.lines().count(), 2);
        for line in folded.lines() {
            let (_, value) = line.rsplit_once(' ').expect("`path value` shape");
            value.parse::<u64>().expect("numeric self_ns");
        }
    }

    #[test]
    fn report_round_trips_through_serde() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            let _a = scope("ser");
            let _b = scope("de");
        }
        let report = snapshot();
        let json = serde_json::to_string(&report).expect("serialize");
        let back: ProfileReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, report);
    }
}
