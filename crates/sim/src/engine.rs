//! The discrete-event simulation loop.

use std::fmt;

use crate::{Cycle, EventQueue};

/// Behaviour of a simulated system: a state type plus an event handler.
///
/// The engine owns a value of the implementing type and delivers events to
/// it in deterministic timestamp/FIFO order. Handlers schedule follow-up
/// events through the [`Scheduler`] they are given.
///
/// This "one state struct + one event enum" design (rather than a
/// trait-object component graph) keeps cross-component interactions — e.g.
/// a DMA engine querying the memory controller's bandwidth tracker — plain
/// borrow-checker-friendly method calls.
pub trait Simulate {
    /// The event payload type delivered to [`Simulate::handle`].
    type Event;

    /// Handles one event at simulation time `now`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, now: Cycle, event: Self::Event);

    /// Invoked when the event queue drains; may schedule more events to
    /// keep the simulation alive (e.g. a polling loop). The default does
    /// nothing, ending the simulation.
    fn on_quiescent(&mut self, _sched: &mut Scheduler<Self::Event>, _now: Cycle) {}
}

impl<S: Simulate + ?Sized> Simulate for &mut S {
    type Event = S::Event;

    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, now: Cycle, event: Self::Event) {
        (**self).handle(sched, now, event);
    }

    fn on_quiescent(&mut self, sched: &mut Scheduler<Self::Event>, now: Cycle) {
        (**self).on_quiescent(sched, now);
    }
}

/// Handle through which event handlers schedule future events.
///
/// Scheduling into the past is a logic error; see [`Scheduler::schedule_at`].
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: Cycle,
}

impl<'a, E> Scheduler<'a, E> {
    /// Wraps an externally owned queue at simulation time `now`.
    ///
    /// This is the building block for models that pump their own
    /// persistent event queue (pausing, resuming, interleaving external
    /// submissions) instead of handing ownership to [`Engine::run`]:
    /// take the queue out, attach a scheduler for one event delivery,
    /// then put it back. Determinism is unaffected — the queue keeps its
    /// `(time, seq)` order across attachments.
    pub fn attach(queue: &'a mut EventQueue<E>, now: Cycle) -> Self {
        Scheduler { queue, now }
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the engine's clock
    /// only moves forward, and an event in the past would silently corrupt
    /// causality.
    pub fn schedule_at(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` to fire this very cycle, after all events already
    /// queued for this cycle (FIFO order).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunResult {
    /// The event queue drained and `on_quiescent` scheduled nothing.
    Quiescent,
    /// The step budget was exhausted before the queue drained.
    BudgetExhausted,
    /// The time horizon was reached before the queue drained.
    HorizonReached,
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunResult::Quiescent => "quiescent",
            RunResult::BudgetExhausted => "budget exhausted",
            RunResult::HorizonReached => "horizon reached",
        };
        f.write_str(s)
    }
}

/// Limits for a single [`Engine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepBudget {
    /// Maximum number of events to deliver. `u64::MAX` means unlimited.
    pub max_events: u64,
    /// Do not deliver events scheduled after this time.
    pub horizon: Cycle,
}

impl StepBudget {
    /// No limits: run until quiescent.
    pub const UNLIMITED: StepBudget = StepBudget {
        max_events: u64::MAX,
        horizon: Cycle::MAX,
    };

    /// Limits only the number of delivered events.
    pub fn events(max_events: u64) -> Self {
        StepBudget {
            max_events,
            horizon: Cycle::MAX,
        }
    }

    /// Limits only the simulated time horizon.
    pub fn until(horizon: Cycle) -> Self {
        StepBudget {
            max_events: u64::MAX,
            horizon,
        }
    }
}

impl Default for StepBudget {
    fn default() -> Self {
        StepBudget::UNLIMITED
    }
}

/// The event loop: owns the simulated state, the queue and the clock.
///
/// # Example
///
/// ```
/// use mpsoc_sim::{Cycle, Engine, Scheduler, Simulate};
///
/// struct PingPong { bounces: u32 }
///
/// #[derive(Debug)]
/// enum Ev { Ping, Pong }
///
/// impl Simulate for PingPong {
///     type Event = Ev;
///     fn handle(&mut self, sched: &mut Scheduler<Ev>, _now: Cycle, ev: Ev) {
///         self.bounces += 1;
///         if self.bounces < 6 {
///             match ev {
///                 Ev::Ping => sched.schedule_in(Cycle::new(1), Ev::Pong),
///                 Ev::Pong => sched.schedule_in(Cycle::new(2), Ev::Ping),
///             }
///         }
///     }
/// }
///
/// let mut engine = Engine::new(PingPong { bounces: 0 });
/// engine.schedule_at(Cycle::ZERO, Ev::Ping);
/// engine.run_to_completion();
/// assert_eq!(engine.state().bounces, 6);
/// ```
#[derive(Debug)]
pub struct Engine<S: Simulate> {
    state: S,
    queue: EventQueue<S::Event>,
    now: Cycle,
    delivered: u64,
}

impl<S: Simulate> Engine<S> {
    /// Creates an engine at time zero wrapping `state`.
    pub fn new(state: S) -> Self {
        Engine {
            state,
            queue: EventQueue::new(),
            now: Cycle::ZERO,
            delivered: 0,
        }
    }

    /// The current simulation time (the timestamp of the last delivered
    /// event, or zero before any delivery).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the simulated state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the simulated state.
    ///
    /// Mutating state between runs is how a test bench injects stimuli.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Schedules an event from outside the simulation (test benches,
    /// experiment drivers).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn schedule_at(&mut self, at: Cycle, event: S::Event) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Delivers a single event, advancing the clock. Returns `false` if the
    /// queue was empty (after giving `on_quiescent` one chance to refill it).
    pub fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: self.now,
            };
            self.state.on_quiescent(&mut sched, self.now);
            if self.queue.is_empty() {
                return false;
            }
        }
        let ev = self.queue.pop().expect("non-empty checked above");
        let (time, payload) = ev.into_parts();
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.delivered += 1;
        let mut sched = Scheduler {
            queue: &mut self.queue,
            now: self.now,
        };
        self.state.handle(&mut sched, time, payload);
        true
    }

    /// Runs until the queue is quiescent or the `budget` is exhausted.
    pub fn run(&mut self, budget: StepBudget) -> RunResult {
        // One profiling scope per run, not per step: the per-event path
        // must stay lock-free.
        let _prof = crate::profile::scope("sim.engine.run");
        let mut steps = 0u64;
        loop {
            if steps >= budget.max_events {
                return RunResult::BudgetExhausted;
            }
            match self.queue.peek_time() {
                Some(t) if t > budget.horizon => return RunResult::HorizonReached,
                _ => {}
            }
            if !self.step() {
                return RunResult::Quiescent;
            }
            steps += 1;
        }
    }

    /// Runs until quiescent with no limits.
    pub fn run_to_completion(&mut self) -> RunResult {
        self.run(StepBudget::UNLIMITED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
        chain: u32,
    }

    impl Simulate for Recorder {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, now: Cycle, ev: u32) {
            self.log.push((now.as_u64(), ev));
            if ev == 100 && self.chain > 0 {
                self.chain -= 1;
                sched.schedule_in(Cycle::new(5), 100);
            }
        }
    }

    fn recorder() -> Engine<Recorder> {
        Engine::new(Recorder {
            log: Vec::new(),
            chain: 0,
        })
    }

    #[test]
    fn delivers_in_order_with_fifo_ties() {
        let mut e = recorder();
        e.schedule_at(Cycle::new(10), 1);
        e.schedule_at(Cycle::new(5), 2);
        e.schedule_at(Cycle::new(10), 3);
        assert_eq!(e.run_to_completion(), RunResult::Quiescent);
        assert_eq!(e.state().log, vec![(5, 2), (10, 1), (10, 3)]);
        assert_eq!(e.now(), Cycle::new(10));
        assert_eq!(e.events_delivered(), 3);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e = recorder();
        e.state_mut().chain = 4;
        e.schedule_at(Cycle::ZERO, 100);
        e.run_to_completion();
        assert_eq!(
            e.state().log,
            vec![(0, 100), (5, 100), (10, 100), (15, 100), (20, 100)]
        );
    }

    #[test]
    fn budget_limits_event_count() {
        let mut e = recorder();
        e.state_mut().chain = 1000;
        e.schedule_at(Cycle::ZERO, 100);
        assert_eq!(e.run(StepBudget::events(10)), RunResult::BudgetExhausted);
        assert_eq!(e.events_delivered(), 10);
        // Continue to completion afterwards.
        assert_eq!(e.run_to_completion(), RunResult::Quiescent);
        assert_eq!(e.events_delivered(), 1001);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut e = recorder();
        e.schedule_at(Cycle::new(10), 1);
        e.schedule_at(Cycle::new(100), 2);
        assert_eq!(
            e.run(StepBudget::until(Cycle::new(50))),
            RunResult::HorizonReached
        );
        assert_eq!(e.state().log, vec![(10, 1)]);
        assert_eq!(e.events_pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = recorder();
        e.schedule_at(Cycle::new(10), 1);
        e.run_to_completion();
        e.schedule_at(Cycle::new(5), 2);
    }

    #[test]
    fn schedule_now_runs_after_current_cycle_fifo() {
        struct NowChainer {
            seen: Vec<u32>,
        }
        impl Simulate for NowChainer {
            type Event = u32;
            fn handle(&mut self, sched: &mut Scheduler<u32>, _now: Cycle, ev: u32) {
                self.seen.push(ev);
                if ev == 0 {
                    sched.schedule_now(1);
                }
            }
        }
        let mut e = Engine::new(NowChainer { seen: vec![] });
        e.schedule_at(Cycle::new(3), 0);
        e.schedule_at(Cycle::new(3), 2);
        e.run_to_completion();
        // Event 1 was scheduled during delivery of 0, so it fires after 2.
        assert_eq!(e.state().seen, vec![0, 2, 1]);
        assert_eq!(e.now(), Cycle::new(3));
    }

    #[test]
    fn quiescent_hook_can_extend_the_run() {
        struct Refiller {
            refills: u32,
            fired: u32,
        }
        impl Simulate for Refiller {
            type Event = ();
            fn handle(&mut self, _s: &mut Scheduler<()>, _n: Cycle, _e: ()) {
                self.fired += 1;
            }
            fn on_quiescent(&mut self, sched: &mut Scheduler<()>, _now: Cycle) {
                if self.refills > 0 {
                    self.refills -= 1;
                    sched.schedule_in(Cycle::new(1), ());
                }
            }
        }
        let mut e = Engine::new(Refiller {
            refills: 3,
            fired: 0,
        });
        e.schedule_at(Cycle::ZERO, ());
        e.run_to_completion();
        assert_eq!(e.state().fired, 4);
        assert_eq!(e.now(), Cycle::new(3));
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut e = recorder();
        e.schedule_at(Cycle::new(1), 9);
        e.run_to_completion();
        let s = e.into_state();
        assert_eq!(s.log, vec![(1, 9)]);
    }

    #[test]
    fn run_result_display() {
        assert_eq!(RunResult::Quiescent.to_string(), "quiescent");
        assert_eq!(RunResult::BudgetExhausted.to_string(), "budget exhausted");
        assert_eq!(RunResult::HorizonReached.to_string(), "horizon reached");
    }
}
