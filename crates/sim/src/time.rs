//! Strongly-typed simulation time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or duration of) simulated time, measured in clock cycles.
///
/// The paper's testbench drives all clocks at 1 GHz, so one [`Cycle`] is
/// also one nanosecond; all runtimes reported by the experiment harness are
/// therefore directly comparable with the paper's nanosecond axes.
///
/// `Cycle` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls (`Add`, `Sub`, scalar `Mul`/`Div`) cover both uses.
///
/// # Example
///
/// ```
/// use mpsoc_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let latency = Cycle::new(25);
/// assert_eq!(start + latency, Cycle::new(125));
/// assert_eq!((start + latency).as_u64(), 125);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero / the zero duration.
    pub const ZERO: Cycle = Cycle(0);
    /// The largest representable time; useful as an "infinitely far" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    ///
    /// ```
    /// # use mpsoc_sim::Cycle;
    /// assert_eq!(Cycle::new(7).as_u64(), 7);
    /// ```
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cycle count as `f64`, convenient for model fitting.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: returns `self - rhs`, or [`Cycle::ZERO`] if
    /// `rhs > self`.
    ///
    /// ```
    /// # use mpsoc_sim::Cycle;
    /// assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
    /// ```
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Cycle) -> Option<Cycle> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Cycle(v)),
            None => None,
        }
    }

    /// Returns the later of two timestamps.
    ///
    /// ```
    /// # use mpsoc_sim::Cycle;
    /// assert_eq!(Cycle::new(3).max(Cycle::new(10)), Cycle::new(10));
    /// ```
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl From<u32> for Cycle {
    fn from(value: u32) -> Self {
        Cycle(u64::from(value))
    }
}

impl From<Cycle> for u64 {
    fn from(value: Cycle) -> Self {
        value.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (time underflow). Use
    /// [`Cycle::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Div<u64> for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> Cycle {
        Cycle(self.0 / rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = Cycle::new(42);
        assert_eq!(c.as_u64(), 42);
        assert_eq!(c.as_f64(), 42.0);
        assert_eq!(u64::from(c), 42);
        assert_eq!(Cycle::from(42u64), c);
        assert_eq!(Cycle::from(42u32), c);
    }

    #[test]
    fn zero_and_default_agree() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!(a + b, Cycle::new(14));
        assert_eq!(a - b, Cycle::new(6));
        assert_eq!(a * 3, Cycle::new(30));
        assert_eq!(a / 2, Cycle::new(5));

        let mut c = a;
        c += b;
        assert_eq!(c, Cycle::new(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(7)), Cycle::ZERO);
        assert_eq!(Cycle::new(7).saturating_sub(Cycle::new(3)), Cycle::new(4));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Cycle::MAX.checked_add(Cycle::new(1)), None);
        assert_eq!(
            Cycle::new(1).checked_add(Cycle::new(2)),
            Some(Cycle::new(3))
        );
    }

    #[test]
    fn min_max() {
        let a = Cycle::new(5);
        let b = Cycle::new(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn ordering_and_sum() {
        let mut v = vec![Cycle::new(3), Cycle::new(1), Cycle::new(2)];
        v.sort();
        assert_eq!(v, vec![Cycle::new(1), Cycle::new(2), Cycle::new(3)]);
        let total: Cycle = v.into_iter().sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(12).to_string(), "12 cyc");
    }

    #[test]
    fn max_is_a_usable_sentinel() {
        assert!(Cycle::new(u64::MAX - 1) < Cycle::MAX);
        assert_eq!(Cycle::MAX.saturating_sub(Cycle::ZERO), Cycle::MAX);
    }
}
