//! Total-order, insertion-stable event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An event tagged with its firing time and a monotonically increasing
/// sequence number.
///
/// The sequence number guarantees a *stable* order: two events scheduled
/// for the same cycle fire in the order they were scheduled. This makes
/// every simulation in this workspace fully deterministic, which the
/// reproduction leans on heavily (cycle counts must be exactly repeatable
/// for the MAPE validation to be meaningful).
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> ScheduledEvent<E> {
    /// The cycle at which the event fires.
    pub fn time(&self) -> Cycle {
        self.time
    }

    /// The scheduling sequence number (FIFO tiebreak within a cycle).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// A reference to the payload.
    pub fn event(&self) -> &E {
        &self.event
    }

    /// Consumes the entry, returning `(time, payload)`.
    pub fn into_parts(self) -> (Cycle, E) {
        (self.time, self.event)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the *earliest*
    /// event first, breaking ties by sequence number.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use mpsoc_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(10), "late");
/// q.push(Cycle::new(5), "early");
/// q.push(Cycle::new(5), "early-second");
///
/// assert_eq!(q.pop().map(|e| e.into_parts()), Some((Cycle::new(5), "early")));
/// assert_eq!(q.pop().map(|e| e.into_parts()), Some((Cycle::new(5), "early-second")));
/// assert_eq!(q.pop().map(|e| e.into_parts()), Some((Cycle::new(10), "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Removes and returns the earliest event, `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Returns the firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism of subsequently scheduled events is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| *e.event())).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| *e.event())).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_times_and_fifo() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        q.push(Cycle::new(1), "b");
        q.push(Cycle::new(5), "c");
        q.push(Cycle::new(1), "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| *e.event())).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn peek_len_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(1)));
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_preserves_sequence_counter() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 0);
        q.push(Cycle::new(1), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        q.push(Cycle::new(1), 2);
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn scheduled_event_accessors() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(4), 'x');
        let ev = q.pop().expect("one event");
        assert_eq!(ev.time(), Cycle::new(4));
        assert_eq!(ev.seq(), 0);
        assert_eq!(*ev.event(), 'x');
    }
}
