//! Lightweight instrumentation: named counters and streaming summaries.
//!
//! Every hardware model in the workspace records what it did (events
//! delivered, bytes moved, conflicts suffered) into a [`StatsRegistry`] so
//! experiments can report utilization breakdowns next to raw runtimes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A streaming summary of an observed quantity: count, sum, min, max and
/// mean, without storing samples.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), Some(4.0));
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count, mean, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// An HDR-style log-bucketed histogram over non-negative integer samples
/// (cycle counts, queue depths), answering p50/p95/p99 without storing
/// samples.
///
/// Values below 16 get exact buckets; above that, each power-of-two octave
/// splits into 16 sub-buckets, bounding the relative quantile error at
/// 1/16 (6.25%) while keeping at most ~1000 buckets for the full `u64`
/// range. Buckets are stored sparsely as sorted `(bucket, count)` pairs,
/// so serialization is compact and byte-stable.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((48..=56).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<(u64, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Exact buckets below this value; log-bucketed with 16 sub-buckets per
/// octave above it.
const HIST_LINEAR_LIMIT: u64 = 16;

fn hist_bucket_of(value: u64) -> u64 {
    if value < HIST_LINEAR_LIMIT {
        value
    } else {
        let msb = 63 - u64::from(value.leading_zeros());
        HIST_LINEAR_LIMIT + (msb - 4) * 16 + ((value >> (msb - 4)) & 0xF)
    }
}

/// Largest value that maps to `bucket` (the reported quantile estimate).
fn hist_bucket_high(bucket: u64) -> u64 {
    if bucket < HIST_LINEAR_LIMIT {
        bucket
    } else {
        let octave = (bucket - HIST_LINEAR_LIMIT) / 16;
        let sub = (bucket - HIST_LINEAR_LIMIT) % 16;
        let low = (16 + sub) << octave;
        low + (1u64 << octave) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = hist_bucket_of(value);
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (bucket, 1)),
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The value at quantile `q` in `[0, 1]` (upper bucket bound, clamped
    /// to the observed max), `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Some(hist_bucket_high(bucket).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for &(bucket, count) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += count,
                Err(i) => self.buckets.insert(i, (bucket, count)),
            }
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.p50(), self.p95(), self.p99()) {
            (Some(p50), Some(p95), Some(p99)) => write!(
                f,
                "n={} p50={} p95={} p99={} min={} max={}",
                self.count, p50, p95, p99, self.min, self.max
            ),
            _ => write!(f, "n=0"),
        }
    }
}

/// A registry of named `u64` counters and named [`Summary`] series.
///
/// Names are ordinary `&str` keys stored in sorted order so reports are
/// stable across runs.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::StatsRegistry;
///
/// let mut stats = StatsRegistry::new();
/// stats.add("noc.multicast_stores", 1);
/// stats.add("noc.multicast_stores", 1);
/// stats.observe("dma.burst_cycles", 12.0);
/// assert_eq!(stats.counter("noc.multicast_stores"), 2);
/// assert_eq!(stats.counter("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
    summaries: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the summary `name` and, for non-negative
    /// values, into the matching [`Histogram`] (rounded to integer), so
    /// every observed series gets p50/p95/p99 for free.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.summaries
            .entry(name.to_owned())
            .or_default()
            .record(value);
        if value >= 0.0 {
            self.histograms
                .entry(name.to_owned())
                .or_default()
                .record(value.round() as u64);
        }
    }

    /// Reads a summary; absent summaries read as empty.
    pub fn summary(&self, name: &str) -> Summary {
        self.summaries.get(name).copied().unwrap_or_default()
    }

    /// Reads a histogram; absent histograms read as empty.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Iterates over `(name, value)` counter pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over `(name, summary)` pairs in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `summary` into the series `name`, creating it if absent —
    /// the single-series form of [`StatsRegistry::merge`], used when
    /// aggregating under a different name than the source (e.g. a
    /// per-shard prefix).
    pub fn merge_summary_named(&mut self, name: &str, summary: &Summary) {
        self.summaries
            .entry(name.to_owned())
            .or_default()
            .merge(summary);
    }

    /// Merges `histogram` into the series `name`, creating it if absent.
    pub fn merge_histogram_named(&mut self, name: &str, histogram: &Histogram) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .merge(histogram);
    }

    /// Merges another registry into this one (counters add, summaries and
    /// histograms merge).
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, summary) in &other.summaries {
            self.summaries
                .entry(name.clone())
                .or_default()
                .merge(summary);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Removes all counters, summaries and histograms.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.summaries.clear();
        self.histograms.clear();
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name}: {value}")?;
        }
        for (name, summary) in &self.summaries {
            writeln!(f, "{name}: {summary}")?;
        }
        for (name, histogram) in &self.histograms {
            writeln!(f, "{name} [hist]: {histogram}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.record(-3.5);
        assert_eq!(s.mean(), Some(-3.5));
        assert_eq!(s.min(), Some(-3.5));
        assert_eq!(s.max(), Some(-3.5));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = Summary::new();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10.0));
        assert_eq!(a.min(), Some(1.0));

        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_counters() {
        let mut r = StatsRegistry::new();
        r.incr("a");
        r.add("a", 4);
        r.add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn registry_summaries() {
        let mut r = StatsRegistry::new();
        r.observe("lat", 5.0);
        r.observe("lat", 15.0);
        assert_eq!(r.summary("lat").mean(), Some(10.0));
        assert_eq!(r.summary("missing").count(), 0);
    }

    #[test]
    fn registry_merge_and_clear() {
        let mut a = StatsRegistry::new();
        a.add("x", 2);
        a.observe("s", 1.0);
        let mut b = StatsRegistry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.summary("s").count(), 2);
        a.clear();
        assert_eq!(a.counter("x"), 0);
        assert_eq!(a.counters().count(), 0);
    }

    #[test]
    fn histogram_empty_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(4));
        assert_eq!(h.quantile(1.0), Some(9));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn histogram_log_buckets_bound_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.quantile(q).unwrap() as f64;
            let err = (est - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / 16.0, "q={q}: est={est} exact={exact}");
        }
    }

    #[test]
    fn histogram_quantile_never_exceeds_max() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.p99(), Some(1_000_003));
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..500u64 {
            b.record(v * 7 + 1);
            all.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, all);

        let mut empty = Histogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn histogram_serde_round_trip() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 900, 65_536] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).expect("serialize");
        let back: Histogram = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, h);
    }

    #[test]
    fn registry_observe_feeds_histograms() {
        let mut r = StatsRegistry::new();
        for v in 1..=100 {
            r.observe("lat", f64::from(v));
        }
        // Negative samples stay out of the histogram but land in the summary.
        r.observe("signed", -5.0);
        assert_eq!(r.histogram("lat").count(), 100);
        assert!(r.histogram("lat").p95().unwrap() >= 90);
        assert_eq!(r.histogram("signed").count(), 0);
        assert_eq!(r.summary("signed").count(), 1);
        assert_eq!(r.histogram("missing").count(), 0);
        let names: Vec<&str> = r.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["lat"]);

        let mut other = StatsRegistry::new();
        other.observe("lat", 7.0);
        r.merge(&other);
        assert_eq!(r.histogram("lat").count(), 101);
        r.clear();
        assert_eq!(r.histogram("lat").count(), 0);
    }

    #[test]
    fn registry_display_lists_everything() {
        let mut r = StatsRegistry::new();
        r.add("events", 7);
        r.observe("lat", 2.0);
        let text = r.to_string();
        assert!(text.contains("events: 7"));
        assert!(text.contains("lat: n=1"));
        assert!(text.contains("lat [hist]: n=1"));
    }
}
