//! Lightweight instrumentation: named counters and streaming summaries.
//!
//! Every hardware model in the workspace records what it did (events
//! delivered, bytes moved, conflicts suffered) into a [`StatsRegistry`] so
//! experiments can report utilization breakdowns next to raw runtimes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A streaming summary of an observed quantity: count, sum, min, max and
/// mean, without storing samples.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), Some(4.0));
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples, `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded sample, `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(mean) => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count, mean, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

/// A registry of named `u64` counters and named [`Summary`] series.
///
/// Names are ordinary `&str` keys stored in sorted order so reports are
/// stable across runs.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::StatsRegistry;
///
/// let mut stats = StatsRegistry::new();
/// stats.add("noc.multicast_stores", 1);
/// stats.add("noc.multicast_stores", 1);
/// stats.observe("dma.burst_cycles", 12.0);
/// assert_eq!(stats.counter("noc.multicast_stores"), 2);
/// assert_eq!(stats.counter("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsRegistry {
    counters: BTreeMap<String, u64>,
    summaries: BTreeMap<String, Summary>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the summary `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.summaries
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Reads a summary; absent summaries read as empty.
    pub fn summary(&self, name: &str) -> Summary {
        self.summaries.get(name).copied().unwrap_or_default()
    }

    /// Iterates over `(name, value)` counter pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over `(name, summary)` pairs in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, summaries merge).
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, summary) in &other.summaries {
            self.summaries
                .entry(name.clone())
                .or_default()
                .merge(summary);
        }
    }

    /// Removes all counters and summaries.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.summaries.clear();
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name}: {value}")?;
        }
        for (name, summary) in &self.summaries {
            writeln!(f, "{name}: {summary}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.record(-3.5);
        assert_eq!(s.mean(), Some(-3.5));
        assert_eq!(s.min(), Some(-3.5));
        assert_eq!(s.max(), Some(-3.5));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = Summary::new();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10.0));
        assert_eq!(a.min(), Some(1.0));

        let mut empty = Summary::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_counters() {
        let mut r = StatsRegistry::new();
        r.incr("a");
        r.add("a", 4);
        r.add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn registry_summaries() {
        let mut r = StatsRegistry::new();
        r.observe("lat", 5.0);
        r.observe("lat", 15.0);
        assert_eq!(r.summary("lat").mean(), Some(10.0));
        assert_eq!(r.summary("missing").count(), 0);
    }

    #[test]
    fn registry_merge_and_clear() {
        let mut a = StatsRegistry::new();
        a.add("x", 2);
        a.observe("s", 1.0);
        let mut b = StatsRegistry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("s", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.summary("s").count(), 2);
        a.clear();
        assert_eq!(a.counter("x"), 0);
        assert_eq!(a.counters().count(), 0);
    }

    #[test]
    fn registry_display_lists_everything() {
        let mut r = StatsRegistry::new();
        r.add("events", 7);
        r.observe("lat", 2.0);
        let text = r.to_string();
        assert!(text.contains("events: 7"));
        assert!(text.contains("lat: n=1"));
    }
}
