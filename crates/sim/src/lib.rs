//! # mpsoc-sim
//!
//! Deterministic discrete-event simulation kernel underpinning the
//! `mpsoc-offload` reproduction of *"Optimizing Offload Performance in
//! Heterogeneous MPSoCs"* (DATE 2024).
//!
//! The crate is deliberately small and generic: it knows nothing about
//! MPSoCs. It provides
//!
//! - [`Cycle`]: a strongly-typed simulation timestamp (1 cycle == 1 ns at
//!   the paper's 1 GHz testbench clock),
//! - [`EventQueue`] and [`Engine`]: a total-order, FIFO-stable event loop,
//! - timed hardware resource primitives ([`UnitResource`],
//!   [`ThroughputResource`], [`BankedResource`]) shared by the memory and
//!   interconnect models,
//! - [`stats`]: named counters and summaries for instrumentation,
//! - [`profile`]: a wall-clock scoped self-profiler (RAII guards into a
//!   per-site call tree) for measuring the simulator itself,
//! - [`rng::SplitMix64`]: a tiny deterministic RNG for reproducible
//!   stochastic workloads,
//! - [`trace`]: an optional event trace for debugging and timeline dumps.
//!
//! # Example
//!
//! ```
//! use mpsoc_sim::{Cycle, Engine, Scheduler, Simulate};
//!
//! /// A counter that re-schedules itself three times.
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! impl Simulate for Ticker {
//!     type Event = ();
//!
//!     fn handle(&mut self, sched: &mut Scheduler<()>, _now: Cycle, _ev: ()) {
//!         self.ticks += 1;
//!         if self.ticks < 3 {
//!             sched.schedule_in(Cycle::new(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.schedule_at(Cycle::ZERO, ());
//! engine.run_to_completion();
//! assert_eq!(engine.state().ticks, 3);
//! assert_eq!(engine.now(), Cycle::new(20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod resource;
mod time;

pub mod profile;
pub mod rng;
pub mod stats;
pub mod trace;

pub use engine::{Engine, RunResult, Scheduler, Simulate, StepBudget};
pub use queue::{EventQueue, ScheduledEvent};
pub use resource::{BankedResource, ThroughputResource, UnitResource};
pub use time::Cycle;
