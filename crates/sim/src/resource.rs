//! Timed hardware-resource primitives.
//!
//! These small accounting structures model contention for shared hardware
//! without simulating it structurally: a client asks *"if I request this
//! resource at cycle `t`, when am I served?"* and the resource answers with
//! a grant time while recording the reservation. Because every caller goes
//! through the same FIFO accounting, aggregate behaviour (queueing delay,
//! bandwidth saturation, serialization) emerges correctly and
//! deterministically.

use crate::Cycle;

/// A single-server FCFS resource (e.g. a bus port or an atomic unit).
///
/// Requests are granted in call order: each `acquire` starts no earlier
/// than both the request time and the completion of the previous grant.
///
/// # Example
///
/// ```
/// use mpsoc_sim::{Cycle, UnitResource};
///
/// let mut port = UnitResource::new();
/// // Two back-to-back 3-cycle operations requested at the same time:
/// assert_eq!(port.acquire(Cycle::new(10), Cycle::new(3)), Cycle::new(10));
/// assert_eq!(port.acquire(Cycle::new(10), Cycle::new(3)), Cycle::new(13));
/// // A later request after the queue drained is served immediately:
/// assert_eq!(port.acquire(Cycle::new(100), Cycle::new(3)), Cycle::new(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnitResource {
    free_at: Cycle,
    busy_cycles: u64,
    grants: u64,
}

impl UnitResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        UnitResource::default()
    }

    /// Reserves the resource for `duration` starting no earlier than `at`;
    /// returns the cycle at which service *starts*. The operation completes
    /// at `start + duration`.
    pub fn acquire(&mut self, at: Cycle, duration: Cycle) -> Cycle {
        let start = at.max(self.free_at);
        self.free_at = start + duration;
        self.busy_cycles += duration.as_u64();
        self.grants += 1;
        start
    }

    /// Like [`UnitResource::acquire`] but returns the *completion* cycle.
    pub fn acquire_until(&mut self, at: Cycle, duration: Cycle) -> Cycle {
        self.acquire(at, duration) + duration
    }

    /// The cycle at which the resource next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total cycles of reserved service time.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Resets to idle, clearing statistics.
    pub fn reset(&mut self) {
        *self = UnitResource::default();
    }
}

/// A bandwidth-limited resource serving `rate` items per cycle FIFO
/// (e.g. an HBM controller's aggregate data bandwidth).
///
/// Internally accounts in *item slots* (cycle × rate) so fractional-cycle
/// service times need no floating point: requesting `n` items at cycle `t`
/// occupies slots `max(t·rate, next_free_slot) .. +n` and completes at
/// `ceil(end_slot / rate)` cycles.
///
/// # Example
///
/// ```
/// use mpsoc_sim::{Cycle, ThroughputResource};
///
/// // 12 doubles per cycle, as in the calibrated main-memory system.
/// let mut hbm = ThroughputResource::new(12);
/// // 1024 elements of three operands = 3072 items => 256 cycles.
/// let done = hbm.acquire(Cycle::ZERO, 3072);
/// assert_eq!(done, Cycle::new(256));
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputResource {
    rate: u64,
    next_free_slot: u64,
    items_served: u64,
    grants: u64,
}

impl ThroughputResource {
    /// Creates a resource serving `rate` items per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn new(rate: u64) -> Self {
        assert!(rate > 0, "throughput rate must be positive");
        ThroughputResource {
            rate,
            next_free_slot: 0,
            items_served: 0,
            grants: 0,
        }
    }

    /// Items served per cycle.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Reserves bandwidth for `items` starting no earlier than `at`;
    /// returns the cycle by which the last item has been transferred.
    ///
    /// Zero-item requests complete immediately at `at`.
    pub fn acquire(&mut self, at: Cycle, items: u64) -> Cycle {
        if items == 0 {
            return at;
        }
        let request_slot = at.as_u64() * self.rate;
        let start_slot = request_slot.max(self.next_free_slot);
        let end_slot = start_slot + items;
        self.next_free_slot = end_slot;
        self.items_served += items;
        self.grants += 1;
        Cycle::new(end_slot.div_ceil(self.rate))
    }

    /// Slot index corresponding to the start of cycle `at` (for use with
    /// [`ThroughputResource::acquire_from_slot`]).
    pub fn slot_of(&self, at: Cycle) -> u64 {
        at.as_u64() * self.rate
    }

    /// Reserves bandwidth for `items` starting no earlier than item-slot
    /// `min_slot`; returns `(end_slot, completion_cycle)`.
    ///
    /// This is the exact-continuation variant of
    /// [`ThroughputResource::acquire`]: chained requests (a DMA engine
    /// pumping bursts) pass the previous call's `end_slot` back in, so no
    /// bandwidth is lost to cycle rounding between bursts, while competing
    /// clients still interleave FIFO through the shared `next_free_slot`.
    pub fn acquire_from_slot(&mut self, min_slot: u64, items: u64) -> (u64, Cycle) {
        if items == 0 {
            return (
                min_slot.max(self.next_free_slot),
                Cycle::new(min_slot.max(self.next_free_slot).div_ceil(self.rate)),
            );
        }
        let start_slot = min_slot.max(self.next_free_slot);
        let end_slot = start_slot + items;
        self.next_free_slot = end_slot;
        self.items_served += items;
        self.grants += 1;
        (end_slot, Cycle::new(end_slot.div_ceil(self.rate)))
    }

    /// The earliest cycle at which a new request would start service.
    pub fn free_at(&self) -> Cycle {
        Cycle::new(self.next_free_slot.div_ceil(self.rate))
    }

    /// The first unreserved item slot (exact, sub-cycle granularity);
    /// a request whose start slot is below this queues behind earlier
    /// traffic.
    pub fn next_free_slot(&self) -> u64 {
        self.next_free_slot
    }

    /// Total items served.
    pub fn items_served(&self) -> u64 {
        self.items_served
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Resets to idle, clearing statistics but keeping the rate.
    pub fn reset(&mut self) {
        self.next_free_slot = 0;
        self.items_served = 0;
        self.grants = 0;
    }
}

/// An array of single-cycle-granularity FCFS banks (e.g. TCDM banks).
///
/// Each bank serves one access per `service` cycles; conflicting accesses
/// to the same bank are serialized, accesses to distinct banks proceed in
/// parallel.
///
/// # Example
///
/// ```
/// use mpsoc_sim::{Cycle, BankedResource};
///
/// let mut tcdm = BankedResource::new(32, Cycle::new(1));
/// // Two cores hit the same bank in the same cycle: one is delayed.
/// assert_eq!(tcdm.acquire(5, Cycle::new(0)), Cycle::new(0));
/// assert_eq!(tcdm.acquire(5, Cycle::new(0)), Cycle::new(1));
/// // A different bank is free.
/// assert_eq!(tcdm.acquire(6, Cycle::new(0)), Cycle::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct BankedResource {
    banks: Vec<UnitResource>,
    service: Cycle,
    conflicts: u64,
}

impl BankedResource {
    /// Creates `banks` banks, each with the given per-access `service` time.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `service` is zero.
    pub fn new(banks: usize, service: Cycle) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(service > Cycle::ZERO, "service time must be positive");
        BankedResource {
            banks: vec![UnitResource::new(); banks],
            service,
            conflicts: 0,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Requests access to `bank` at time `at`; returns the grant (service
    /// start) time. A grant later than `at` indicates a bank conflict.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn acquire(&mut self, bank: usize, at: Cycle) -> Cycle {
        let service = self.service;
        let granted = self.banks[bank].acquire(at, service);
        if granted > at {
            self.conflicts += 1;
        }
        granted
    }

    /// Total accesses that were delayed by a conflict.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total accesses granted across all banks.
    pub fn accesses(&self) -> u64 {
        self.banks.iter().map(UnitResource::grants).sum()
    }

    /// Resets all banks to idle and clears statistics.
    pub fn reset(&mut self) {
        for bank in &mut self.banks {
            bank.reset();
        }
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_resource_serializes_overlapping_requests() {
        let mut r = UnitResource::new();
        assert_eq!(r.acquire(Cycle::new(0), Cycle::new(5)), Cycle::new(0));
        assert_eq!(r.acquire(Cycle::new(2), Cycle::new(5)), Cycle::new(5));
        assert_eq!(r.acquire(Cycle::new(20), Cycle::new(1)), Cycle::new(20));
        assert_eq!(r.busy_cycles(), 11);
        assert_eq!(r.grants(), 3);
        assert_eq!(r.free_at(), Cycle::new(21));
    }

    #[test]
    fn unit_resource_acquire_until() {
        let mut r = UnitResource::new();
        assert_eq!(
            r.acquire_until(Cycle::new(4), Cycle::new(6)),
            Cycle::new(10)
        );
    }

    #[test]
    fn unit_resource_reset() {
        let mut r = UnitResource::new();
        r.acquire(Cycle::new(0), Cycle::new(100));
        r.reset();
        assert_eq!(r.free_at(), Cycle::ZERO);
        assert_eq!(r.busy_cycles(), 0);
    }

    #[test]
    fn throughput_basic_rate_math() {
        let mut r = ThroughputResource::new(4);
        // 10 items at rate 4 from t=0: ceil(10/4) = 3 cycles.
        assert_eq!(r.acquire(Cycle::ZERO, 10), Cycle::new(3));
        // Next 2 items start at slot 10, end slot 12 -> cycle 3.
        assert_eq!(r.acquire(Cycle::ZERO, 2), Cycle::new(3));
        // Next item ends at slot 13 -> cycle ceil(13/4)=4.
        assert_eq!(r.acquire(Cycle::ZERO, 1), Cycle::new(4));
        assert_eq!(r.items_served(), 13);
    }

    #[test]
    fn throughput_idle_gap_resets_slot_origin() {
        let mut r = ThroughputResource::new(2);
        r.acquire(Cycle::ZERO, 4); // busy until slot 4 (cycle 2)
                                   // Requesting at cycle 100 starts from slot 200, not slot 4.
        assert_eq!(r.acquire(Cycle::new(100), 2), Cycle::new(101));
    }

    #[test]
    fn throughput_zero_items_is_free() {
        let mut r = ThroughputResource::new(8);
        assert_eq!(r.acquire(Cycle::new(42), 0), Cycle::new(42));
        assert_eq!(r.grants(), 0);
    }

    #[test]
    fn throughput_concurrent_streams_share_bandwidth() {
        // Two streams of 120 items each at aggregate rate 12 finish
        // together at 240/12 = 20 cycles when interleaved in small bursts.
        let mut r = ThroughputResource::new(12);
        let mut done_a = Cycle::ZERO;
        let mut done_b = Cycle::ZERO;
        for _ in 0..15 {
            done_a = r.acquire(Cycle::ZERO, 8);
            done_b = r.acquire(Cycle::ZERO, 8);
        }
        assert_eq!(done_a.max(done_b), Cycle::new(20));
    }

    #[test]
    #[should_panic(expected = "throughput rate must be positive")]
    fn throughput_rejects_zero_rate() {
        let _ = ThroughputResource::new(0);
    }

    #[test]
    fn slot_continuation_loses_no_bandwidth() {
        // A single client pumping 16-item bursts through a 12-items/cycle
        // resource must sustain the full 12 items/cycle: 768 items in
        // exactly 64 cycles, despite per-burst cycle rounding.
        let mut r = ThroughputResource::new(12);
        let mut slot = r.slot_of(Cycle::ZERO);
        let mut done = Cycle::ZERO;
        for _ in 0..48 {
            let (end, d) = r.acquire_from_slot(slot, 16);
            slot = end;
            done = d;
        }
        assert_eq!(done, Cycle::new(64));
        assert_eq!(r.items_served(), 768);
    }

    #[test]
    fn slot_continuation_interleaves_competing_clients_fairly() {
        // Two burst chains sharing the resource each get half the rate.
        let mut r = ThroughputResource::new(12);
        let mut slot_a = 0;
        let mut slot_b = 0;
        let mut done_a = Cycle::ZERO;
        let mut done_b = Cycle::ZERO;
        for _ in 0..24 {
            let (ea, da) = r.acquire_from_slot(slot_a, 16);
            slot_a = ea;
            done_a = da;
            let (eb, db) = r.acquire_from_slot(slot_b, 16);
            slot_b = eb;
            done_b = db;
        }
        // 768 total items at 12/cycle = 64 cycles, both finish together.
        assert_eq!(done_a.max(done_b), Cycle::new(64));
        assert!(done_b - done_a <= Cycle::new(2));
    }

    #[test]
    fn slot_continuation_zero_items_is_free() {
        let mut r = ThroughputResource::new(4);
        let (end, done) = r.acquire_from_slot(10, 0);
        assert_eq!(end, 10);
        assert_eq!(done, Cycle::new(3));
        assert_eq!(r.grants(), 0);
    }

    #[test]
    fn banked_conflicts_are_counted_and_serialized() {
        let mut r = BankedResource::new(4, Cycle::new(1));
        assert_eq!(r.acquire(0, Cycle::new(0)), Cycle::new(0));
        assert_eq!(r.acquire(0, Cycle::new(0)), Cycle::new(1));
        assert_eq!(r.acquire(0, Cycle::new(0)), Cycle::new(2));
        assert_eq!(r.acquire(1, Cycle::new(0)), Cycle::new(0));
        assert_eq!(r.conflicts(), 2);
        assert_eq!(r.accesses(), 4);
    }

    #[test]
    fn banked_reset() {
        let mut r = BankedResource::new(2, Cycle::new(2));
        r.acquire(0, Cycle::ZERO);
        r.acquire(0, Cycle::ZERO);
        r.reset();
        assert_eq!(r.conflicts(), 0);
        assert_eq!(r.acquire(0, Cycle::ZERO), Cycle::ZERO);
    }

    #[test]
    #[should_panic]
    fn banked_out_of_range_panics() {
        let mut r = BankedResource::new(2, Cycle::new(1));
        r.acquire(2, Cycle::ZERO);
    }
}
