//! Optional event tracing for debugging and timeline reports.
//!
//! A [`Tracer`] collects timestamped records from the hardware models.
//! Tracing is off by default (the enabled check is a single branch), so
//! calibrated experiments pay essentially nothing for the hooks.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize, Value};

use crate::Cycle;

/// One trace record: when, which unit, what happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time of the record.
    pub time: Cycle,
    /// Hardware unit that emitted the record (e.g. `"host"`, `"cluster3.dma"`).
    pub unit: String,
    /// Free-form description of the event.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<16} {}",
            self.time.as_u64(),
            self.unit,
            self.message
        )
    }
}

/// A bounded in-memory trace collector.
///
/// Records live in a ring buffer: when the capacity is reached the oldest
/// records are dropped in O(1), so a runaway simulation cannot exhaust
/// memory and the eviction path stays off the critical path; the number
/// of dropped records is reported by [`Tracer::dropped`].
///
/// # Example
///
/// ```
/// use mpsoc_sim::{trace::Tracer, Cycle};
///
/// let mut t = Tracer::enabled(1024);
/// t.record(Cycle::new(5), "host", "multicast dispatch");
/// assert_eq!(t.records().len(), 1);
/// assert!(t.records()[0].to_string().contains("multicast"));
///
/// let mut off = Tracer::disabled();
/// off.record(Cycle::new(5), "host", "ignored");
/// assert!(off.records().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer that records up to `capacity` entries.
    pub fn enabled(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates a no-op tracer.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// `true` when records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, time: Cycle, unit: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            unit: unit.to_owned(),
            message: message.into(),
        });
    }

    /// The collected records, oldest first.
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.records
    }

    /// Number of records discarded because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all collected records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }

    /// Renders the trace as a multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier records dropped ...\n",
                self.dropped
            ));
        }
        for record in &self.records {
            out.push_str(&record.to_string());
            out.push('\n');
        }
        out
    }
}

// Hand-written so bench reports can embed a whole trace; the ring buffer
// flattens to an oldest-first array regardless of its internal split.
impl Serialize for Tracer {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_owned(), Value::Bool(self.enabled)),
            ("capacity".to_owned(), Value::U64(self.capacity as u64)),
            ("dropped".to_owned(), Value::U64(self.dropped)),
            (
                "records".to_owned(),
                Value::Array(self.records.iter().map(Serialize::serialize).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_collects_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(Cycle::new(1), "u", "m");
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_tracer_collects_in_order() {
        let mut t = Tracer::enabled(16);
        t.record(Cycle::new(1), "a", "first");
        t.record(Cycle::new(2), "b", "second");
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].unit, "a");
        assert_eq!(recs[1].message, "second");
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::enabled(3);
        for i in 0..5u64 {
            t.record(Cycle::new(i), "u", format!("m{i}"));
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.records()[0].message, "m2");
        let rendered = t.render();
        assert!(rendered.contains("2 earlier records dropped"));
        assert!(rendered.contains("m4"));
    }

    #[test]
    fn clear_resets() {
        let mut t = Tracer::enabled(2);
        t.record(Cycle::new(1), "u", "m");
        t.record(Cycle::new(2), "u", "m");
        t.record(Cycle::new(3), "u", "m");
        t.clear();
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut t = Tracer::enabled(0);
        t.record(Cycle::new(1), "u", "kept");
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn record_display_contains_fields() {
        let r = TraceRecord {
            time: Cycle::new(12),
            unit: "cluster0".into(),
            message: "dma in done".into(),
        };
        let s = r.to_string();
        assert!(s.contains("12"));
        assert!(s.contains("cluster0"));
        assert!(s.contains("dma in done"));
    }

    #[test]
    fn eviction_order_survives_wraparound() {
        // Push far past capacity so the ring wraps several times; the
        // surviving window must still be the most recent, oldest first.
        let mut t = Tracer::enabled(4);
        for i in 0..19u64 {
            t.record(Cycle::new(i), "u", format!("m{i}"));
        }
        assert_eq!(t.dropped(), 15);
        let msgs: Vec<&str> = t.records().iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m15", "m16", "m17", "m18"]);
    }

    #[test]
    fn tracer_serializes_records_and_drop_count() {
        let mut t = Tracer::enabled(2);
        t.record(Cycle::new(1), "u", "old");
        t.record(Cycle::new(2), "u", "mid");
        t.record(Cycle::new(3), "u", "new");
        let json = serde_json::to_string(&t).expect("serialize");
        assert!(json.contains("\"dropped\":1"));
        assert!(json.contains("\"mid\""));
        assert!(json.contains("\"new\""));
        assert!(!json.contains("\"old\""));
    }
}
