//! A tiny deterministic pseudo-random number generator.
//!
//! The simulator itself is fully deterministic, but workload generators
//! (random operand values, randomized kernel sweeps) need reproducible
//! randomness that does not depend on an external crate's stream
//! stability guarantees. [`SplitMix64`] is the standard 64-bit mixer from
//! Steele et al., *"Fast splittable pseudorandom number generators"*
//! (OOPSLA 2014); its output stream for a given seed is fixed forever.

/// SplitMix64 PRNG.
///
/// # Example
///
/// ```
/// use mpsoc_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn next_range_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range [{low}, {high})");
        low + self.next_f64() * (high - low)
    }

    /// Returns a uniform integer in `[0, bound)` using rejection sampling
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection: threshold is 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            // Widening multiply keeps the value unbiased.
            let m = (r as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fills `values` with uniform doubles in `[low, high)`.
    pub fn fill_f64(&mut self, values: &mut [f64], low: f64, high: f64) {
        for v in values {
            *v = self.next_range_f64(low, high);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_outputs_for_seed_zero() {
        // Reference values for SplitMix64(0), widely published.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(124);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_bounds_and_hits_all_residues() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.next_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn fill_populates_every_slot() {
        let mut r = SplitMix64::new(5);
        let mut buf = [0.0f64; 64];
        r.fill_f64(&mut buf, 1.0, 2.0);
        assert!(buf.iter().all(|&v| (1.0..2.0).contains(&v)));
        // Extremely unlikely any two adjacent values collide.
        assert!(buf.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
