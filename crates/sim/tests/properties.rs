//! Property tests for the simulation kernel: total event order, FIFO
//! stability, and resource-accounting conservation laws.

use proptest::prelude::*;

use mpsoc_sim::{BankedResource, Cycle, EventQueue, ThroughputResource, UnitResource};

proptest! {
    /// Popping returns events in non-decreasing time order, and events
    /// with equal timestamps come out in insertion order.
    #[test]
    fn event_queue_is_totally_ordered_and_stable(
        times in prop::collection::vec(0u64..50, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.into_parts());
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing time, FIFO within equal time.
        for w in popped.windows(2) {
            let ((t0, i0), (t1, i1)) = (w[0], w[1]);
            prop_assert!(t0 <= t1);
            if t0 == t1 {
                prop_assert!(i0 < i1, "same-cycle events must stay FIFO");
            }
        }
        // And it is a permutation: every payload appears once.
        let mut seen = vec![false; times.len()];
        for (_, i) in popped {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
    }

    /// A unit resource serves every request exactly once, never
    /// overlapping grants and never before the request time.
    #[test]
    fn unit_resource_grants_are_serial(
        requests in prop::collection::vec((0u64..100, 1u64..10), 1..50),
    ) {
        let mut r = UnitResource::new();
        let mut sorted = requests.clone();
        sorted.sort();
        let mut prev_end = 0u64;
        for &(at, dur) in &sorted {
            let start = r.acquire(Cycle::new(at), Cycle::new(dur));
            prop_assert!(start.as_u64() >= at, "grant before request");
            prop_assert!(start.as_u64() >= prev_end, "grants overlap");
            prev_end = start.as_u64() + dur;
        }
        let total: u64 = sorted.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(r.busy_cycles(), total);
        prop_assert_eq!(r.grants(), sorted.len() as u64);
    }

    /// Bandwidth accounting conserves work: total items served divided by
    /// the rate bounds the completion time from below.
    #[test]
    fn throughput_conserves_work(
        rate in 1u64..64,
        bursts in prop::collection::vec(1u64..100, 1..100),
    ) {
        let mut r = ThroughputResource::new(rate);
        let mut last_done = Cycle::ZERO;
        for &b in &bursts {
            last_done = last_done.max(r.acquire(Cycle::ZERO, b));
        }
        let total: u64 = bursts.iter().sum();
        prop_assert_eq!(r.items_served(), total);
        // Lower bound: can't finish faster than the rate allows.
        prop_assert!(last_done.as_u64() >= total / rate);
        // Upper bound: FIFO from time zero wastes nothing.
        prop_assert!(last_done.as_u64() <= total.div_ceil(rate));
    }

    /// Slot-continuation chains from time zero are exactly rate-limited.
    #[test]
    fn slot_chaining_is_exact(
        rate in 1u64..64,
        bursts in prop::collection::vec(1u64..64, 1..80),
    ) {
        let mut r = ThroughputResource::new(rate);
        let mut slot = r.slot_of(Cycle::ZERO);
        let mut done = Cycle::ZERO;
        for &b in &bursts {
            let (end, d) = r.acquire_from_slot(slot, b);
            prop_assert_eq!(end, slot + b, "chained bursts must be gapless");
            slot = end;
            done = d;
        }
        let total: u64 = bursts.iter().sum();
        prop_assert_eq!(done, Cycle::new(total.div_ceil(rate)));
    }

    /// Same-cycle accesses to one bank serialize; to distinct banks they
    /// do not.
    #[test]
    fn banked_resource_serializes_per_bank(
        banks in 1usize..16,
        accesses in prop::collection::vec(0usize..16, 1..100),
    ) {
        let mut r = BankedResource::new(banks, Cycle::new(1));
        let mut per_bank_count = vec![0u64; banks];
        for &a in &accesses {
            let bank = a % banks;
            let grant = r.acquire(bank, Cycle::ZERO);
            // k-th same-cycle access to one bank is granted at cycle k.
            prop_assert_eq!(grant, Cycle::new(per_bank_count[bank]));
            per_bank_count[bank] += 1;
        }
        let conflicts_expected: u64 = per_bank_count
            .iter()
            .map(|&c| c.saturating_sub(1))
            .sum();
        prop_assert_eq!(r.conflicts(), conflicts_expected);
    }
}
