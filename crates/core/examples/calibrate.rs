//! Calibration probe: prints the measured offload runtime grid and phase
//! breakdowns for both strategies, to tune SoC/runtime cost parameters
//! against the paper's Eq. 1 targets.

use mpsoc_kernels::Daxpy;
use mpsoc_offload::{OffloadStrategy, Offloader, RuntimeModel, Sample};
use mpsoc_soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Daxpy::new(2.0);
    let ms = [1usize, 2, 4, 8, 16, 32];
    let ns = [256u64, 512, 768, 1024, 2048, 4096, 8192];

    let mut offloader = Offloader::new(SocConfig::manticore())?;
    let paper = RuntimeModel::paper();

    println!(
        "{:>6} {:>4} {:>9} {:>9} {:>9} {:>8}",
        "N", "M", "base", "ext", "eq1", "spdup"
    );
    let mut samples = Vec::new();
    for &n in &ns {
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        for &m in &ms {
            let base = offloader.offload(&kernel, &x, &y, m, OffloadStrategy::baseline())?;
            let ext = offloader.offload(&kernel, &x, &y, m, OffloadStrategy::extended())?;
            let pred = paper.predict(m as u64, n);
            println!(
                "{:>6} {:>4} {:>9} {:>9} {:>9.1} {:>8.3}",
                n,
                m,
                base.cycles(),
                ext.cycles(),
                pred,
                base.cycles() as f64 / ext.cycles() as f64
            );
            samples.push(Sample {
                m: m as u64,
                n,
                cycles: ext.cycles() as f64,
            });
        }
    }

    let fit = RuntimeModel::fit(&samples)?;
    println!("\nfitted: {}", fit.model);
    println!("paper : {}", paper);
    println!(
        "r^2 = {:.6}, max |err| = {:.2}%",
        fit.r_squared, fit.max_abs_pct_err
    );

    // Phase breakdown at N=1024, M=32 for both strategies.
    let n = 1024u64;
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    for strat in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
        let run = offloader.offload(&kernel, &x, &y, 32, strat)?;
        let p = run.outcome.phases;
        println!(
            "\n{strat}: total={} dispatch={} dma_in={} compute={} dma_out={} sync={}",
            run.cycles(),
            p.last_dispatch.as_u64(),
            p.last_dma_in.as_u64(),
            p.last_compute.as_u64(),
            p.last_dma_out.as_u64(),
            p.sync_done.as_u64(),
        );
        let (_, t0) = run.outcome.clusters[0];
        let (_, t31) = run.outcome.clusters[31];
        println!(
            "  cluster0: wake={} desc={} dmain={} comp={} dmaout={} compl={}",
            t0.woken_at.as_u64(),
            t0.desc_at.as_u64(),
            t0.dma_in_at.as_u64(),
            t0.compute_at.as_u64(),
            t0.dma_out_at.as_u64(),
            t0.complete_at.as_u64()
        );
        println!(
            "  cluster31: wake={} desc={} dmain={} comp={} dmaout={} compl={}",
            t31.woken_at.as_u64(),
            t31.desc_at.as_u64(),
            t31.dma_in_at.as_u64(),
            t31.compute_at.as_u64(),
            t31.dma_out_at.as_u64(),
            t31.complete_at.as_u64()
        );
    }
    Ok(())
}
