//! Debug probe: phase breakdown of baseline vs extended at M=1 for two
//! problem sizes, to locate any N-dependent divergence.

use mpsoc_kernels::Daxpy;
use mpsoc_offload::{OffloadStrategy, Offloader};
use mpsoc_soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Daxpy::new(2.0);
    let mut off = Offloader::new(SocConfig::manticore())?;
    for n in [1024u64, 8192] {
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let y: Vec<f64> = vec![1.0; n as usize];
        for strat in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
            let run = off.offload(&kernel, &x, &y, 1, strat)?;
            let p = run.outcome.phases;
            let (_, t) = run.outcome.clusters[0];
            println!(
                "N={n} {strat}: total={} disp={} wake={} desc={} dmain={} comp={} dmaout={} compl={} sync={} polls={}",
                run.cycles(),
                p.last_dispatch.as_u64(),
                t.woken_at.as_u64(),
                t.desc_at.as_u64(),
                t.dma_in_at.as_u64(),
                t.compute_at.as_u64(),
                t.dma_out_at.as_u64(),
                t.complete_at.as_u64(),
                p.sync_done.as_u64(),
                run.outcome.poll_iterations,
            );
        }
    }
    Ok(())
}
