//! The fault layer's no-op guarantee, enforced end to end: installing a
//! zero-fault [`FaultPlan`] (any seed, every site disarmed) must leave
//! every offload **byte-identical** to a run with no plan installed —
//! across the kernel zoo and all dispatch × sync strategies. Every
//! fault hook in the SoC must therefore be a single untaken branch when
//! its site is disarmed; any timing or RNG perturbation shows up here
//! as a serialization diff.

use mpsoc_kernels::{Axpby, Daxpy, Dot, Kernel, Memset, Scale, Sum, VecAdd};
use mpsoc_offload::{OffloadStrategy, Offloader};
use mpsoc_soc::{FaultPlan, SocConfig};
use proptest::prelude::*;

/// The kernel zoo, freshly instantiated (kernels are stateless).
fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Daxpy::new(2.0)),
        Box::new(Axpby::new(1.5, -0.5)),
        Box::new(Scale::new(3.0)),
        Box::new(VecAdd),
        Box::new(Memset::new(7.0)),
        Box::new(Dot),
        Box::new(Sum),
    ]
}

fn operands(n: usize, kernel: &dyn Kernel) -> (Vec<f64>, Vec<f64>) {
    let x_len = n * kernel.x_words_per_elem() as usize;
    let x: Vec<f64> = (0..x_len).map(|i| (i % 61) as f64 * 0.25 - 3.0).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 17) as f64 + 0.5).collect();
    (x, y)
}

/// One offload serialized to its JSON artifact bytes.
fn run_bytes(
    kernel: &dyn Kernel,
    n: usize,
    m: usize,
    strategy: OffloadStrategy,
    plan: Option<FaultPlan>,
) -> String {
    let mut off = Offloader::new(SocConfig::with_clusters(m)).expect("soc");
    if let Some(plan) = plan {
        off.install_faults(plan);
    }
    let (x, y) = operands(n, kernel);
    let run = off.offload(kernel, &x, &y, m, strategy).expect("offload");
    serde_json::to_string(&run).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero-fault plans are observationally invisible, whatever their
    /// seed: the serialized run artifact is byte-identical.
    #[test]
    fn zero_fault_plan_keeps_runs_byte_identical(
        seed in any::<u64>(),
        n in 64usize..512,
        m in 1usize..5,
    ) {
        for kernel in zoo() {
            for strategy in OffloadStrategy::all() {
                let clean = run_bytes(kernel.as_ref(), n, m, strategy, None);
                let planned = run_bytes(
                    kernel.as_ref(),
                    n,
                    m,
                    strategy,
                    Some(FaultPlan::with_seed(seed)),
                );
                prop_assert_eq!(
                    &clean,
                    &planned,
                    "kernel {} under {:?} diverged with a zero-fault plan",
                    kernel.name(),
                    strategy
                );
            }
        }
    }
}
