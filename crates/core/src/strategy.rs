//! Offload dispatch and synchronization strategies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How the host announces a job to the selected clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchStrategy {
    /// One posted mailbox store per cluster, issued in a host-side loop.
    /// Cost grows linearly with the number of clusters — the baseline.
    Sequential,
    /// A single store replicated by the interconnect to every selected
    /// cluster. Constant cost — the paper's hardware extension.
    Multicast,
}

impl fmt::Display for DispatchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DispatchStrategy::Sequential => "sequential",
            DispatchStrategy::Multicast => "multicast",
        })
    }
}

/// How job completion reaches the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncStrategy {
    /// Clusters atomically increment a counter in shared memory; the host
    /// spins on it. Polling and AMO contention grow with the number of
    /// clusters — the baseline.
    SoftwareBarrier,
    /// Clusters post credits to the dedicated credit-counter unit, which
    /// interrupts the host at the threshold. Constant cost — the paper's
    /// hardware extension.
    CreditCounter,
}

impl fmt::Display for SyncStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncStrategy::SoftwareBarrier => "software-barrier",
            SyncStrategy::CreditCounter => "credit-counter",
        })
    }
}

/// A complete offload configuration: dispatch × synchronization.
///
/// The two presets are the configurations compared throughout the paper;
/// the two mixed combinations are the ablation points of `DESIGN.md`
/// (`abl-dispatch`, `abl-sync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OffloadStrategy {
    /// Dispatch mechanism.
    pub dispatch: DispatchStrategy,
    /// Completion-synchronization mechanism.
    pub sync: SyncStrategy,
}

impl OffloadStrategy {
    /// The baseline runtime: sequential dispatch + software barrier.
    pub fn baseline() -> Self {
        OffloadStrategy {
            dispatch: DispatchStrategy::Sequential,
            sync: SyncStrategy::SoftwareBarrier,
        }
    }

    /// The paper's co-design: multicast dispatch + credit counter.
    pub fn extended() -> Self {
        OffloadStrategy {
            dispatch: DispatchStrategy::Multicast,
            sync: SyncStrategy::CreditCounter,
        }
    }

    /// All four dispatch × sync combinations, for ablations.
    pub fn all() -> [OffloadStrategy; 4] {
        [
            OffloadStrategy::baseline(),
            OffloadStrategy {
                dispatch: DispatchStrategy::Multicast,
                sync: SyncStrategy::SoftwareBarrier,
            },
            OffloadStrategy {
                dispatch: DispatchStrategy::Sequential,
                sync: SyncStrategy::CreditCounter,
            },
            OffloadStrategy::extended(),
        ]
    }
}

impl fmt::Display for OffloadStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.dispatch, self.sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let b = OffloadStrategy::baseline();
        assert_eq!(b.dispatch, DispatchStrategy::Sequential);
        assert_eq!(b.sync, SyncStrategy::SoftwareBarrier);
        let e = OffloadStrategy::extended();
        assert_eq!(e.dispatch, DispatchStrategy::Multicast);
        assert_eq!(e.sync, SyncStrategy::CreditCounter);
        assert_ne!(b, e);
    }

    #[test]
    fn all_covers_the_grid() {
        let all = OffloadStrategy::all();
        assert_eq!(all.len(), 4);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(
            OffloadStrategy::baseline().to_string(),
            "sequential+software-barrier"
        );
        assert_eq!(
            OffloadStrategy::extended().to_string(),
            "multicast+credit-counter"
        );
    }
}
