//! Self-healing offload: host watchdog, bounded re-dispatch with
//! exponential backoff, per-cluster fault attribution and quarantine.
//!
//! The recovery loop acts **only on architecturally observable
//! signals** — a completion that never arrives before the watchdog
//! budget expires, a DMA engine's CRC flag on a delivered completion,
//! per-cluster completion state — never on the fault injector's ground
//! truth log, so the same policy would work on real silicon.
//!
//! The watchdog budget is derived from the paper's Eq. 1 runtime model:
//! `budget = ⌈margin × t̂(M, N)⌉` with `t̂(M, N) = c₀ + c_mem·N +
//! c_comp·N/M`, so it scales with the job instead of being a magic
//! constant. Clusters repeatedly implicated in lost or corrupted
//! completions accumulate *strikes*; at the strike limit they are
//! quarantined and the job is re-planned on the surviving mask
//! ([`ClusterMask::without`]), falling back to host execution (or a
//! typed [`OffloadError::DegradedInfeasible`]) when the degraded
//! machine can no longer run it — the Eq. 3 decision on the survivors.

use mpsoc_kernels::Kernel;
use mpsoc_noc::ClusterMask;
use mpsoc_sim::Cycle;
use mpsoc_soc::{EventKind, FaultPlan};

use crate::decision::{decide, Decision};
use crate::model::RuntimeModel;
use crate::runtime::{OffloadResult, OffloadRun, Offloader, SessionStep};
use crate::verify::VerifyReport;
use crate::{OffloadError, OffloadStrategy};

/// Tunables of the self-healing offload path.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Watchdog budget multiplier over the Eq. 1 prediction: the host
    /// declares a dispatch lost after `⌈margin × t̂(M, N)⌉` cycles.
    pub margin: f64,
    /// Re-dispatch attempts after the initial one.
    pub max_retries: u32,
    /// Base of the exponential backoff: attempt `k` waits
    /// `backoff_base << k` cycles before re-dispatching.
    pub backoff_base: u64,
    /// Fault implications a cluster survives before quarantine.
    pub strike_limit: u32,
    /// The Eq. 1 model the watchdog budget is derived from.
    pub model: RuntimeModel,
    /// Run the kernel on the host when no healthy clusters remain (or
    /// the retry budget is exhausted); when `false` those cases return
    /// typed errors instead.
    pub host_fallback: bool,
    /// Optional deadline in cycles: when set, each re-plan runs the
    /// Eq. 3 decision on the surviving cluster count and treats
    /// `Infeasible` / `NotEnoughClusters` as degraded-machine failure.
    pub deadline: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            margin: 4.0,
            max_retries: 3,
            backoff_base: 64,
            strike_limit: 2,
            model: RuntimeModel::paper(),
            host_fallback: true,
            deadline: None,
        }
    }
}

impl RecoveryPolicy {
    /// The watchdog budget for an `m`-cluster dispatch of an
    /// `n`-element job: `⌈margin × t̂(m, n)⌉`.
    pub fn watchdog_budget(&self, m: usize, n: u64) -> u64 {
        (self.margin * self.model.predict(m as u64, n)).ceil() as u64
    }
}

/// How one dispatch attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The job completed with no corruption flag: verified-correct.
    Success,
    /// The job completed but a DMA CRC flagged corrupted data.
    CorruptData,
    /// The watchdog budget expired with the job still in flight.
    WatchdogTimeout,
    /// The SoC went idle without delivering the completion (a wedged
    /// barrier or a cluster that never woke).
    LostCompletion,
}

/// One dispatch attempt of a resilient offload.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Attempt index (0 = initial dispatch).
    pub attempt: u32,
    /// The cluster mask dispatched to.
    pub mask: ClusterMask,
    /// Watchdog budget in cycles for this attempt.
    pub watchdog_budget: u64,
    /// Cycles this attempt consumed (runtime on success/corruption,
    /// the full watchdog budget on a timeout or lost completion).
    pub spent_cycles: u64,
    /// Backoff charged before the next attempt (0 on the last).
    pub backoff_cycles: u64,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Clusters implicated by observable attribution this attempt.
    pub implicated: Vec<usize>,
}

/// Where a resilient offload's verified result came from.
#[derive(Debug, Clone)]
pub enum RecoveredResult {
    /// A (possibly re-dispatched) accelerator run succeeded.
    Offloaded(Box<OffloadRun>),
    /// The host fallback computed the result.
    Host {
        /// Host execution cycles.
        cycles: u64,
        /// The computed result.
        result: OffloadResult,
    },
}

impl RecoveredResult {
    /// The computed result, wherever it ran.
    pub fn result(&self) -> &OffloadResult {
        match self {
            RecoveredResult::Offloaded(run) => &run.result,
            RecoveredResult::Host { result, .. } => result,
        }
    }

    /// Verifies the result against the kernel's golden reference.
    pub fn verify(&self, kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> VerifyReport {
        self.result().verify(kernel, x, y)
    }
}

/// The outcome of [`Offloader::offload_resilient`]: the verified result
/// plus the full recovery story.
#[derive(Debug, Clone)]
pub struct ResilientReport {
    /// The result and where it ran.
    pub result: RecoveredResult,
    /// Every dispatch attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// End-to-end accounted cycles: successful runtime plus every
    /// failed attempt's watchdog budget and backoff (and the host
    /// fallback's cycles, if taken).
    pub total_cycles: u64,
    /// The offloader's quarantine set after this call.
    pub quarantined: ClusterMask,
}

impl ResilientReport {
    /// `true` when recovery machinery was exercised (anything beyond a
    /// clean first-attempt accelerator completion).
    pub fn recovered(&self) -> bool {
        self.attempts.len() > 1 || matches!(self.result, RecoveredResult::Host { .. })
    }
}

impl Offloader {
    /// Installs a fault-injection plan into the underlying SoC (see
    /// [`mpsoc_soc::Soc::install_faults`]); [`FaultPlan::none`] restores
    /// fault-free operation.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.soc_mut().install_faults(plan);
    }

    /// Clusters currently quarantined by the self-healing path.
    pub fn quarantined(&self) -> ClusterMask {
        self.quarantined
    }

    /// Fault-implication strikes recorded against `cluster`.
    pub fn strike_count(&self, cluster: usize) -> u32 {
        self.strikes.get(cluster).copied().unwrap_or(0)
    }

    /// Adds `mask` to the quarantine set (an external policy decision,
    /// e.g. a scheduler retiring clusters after its own diagnosis).
    pub fn quarantine(&mut self, mask: ClusterMask) {
        self.quarantined = self.quarantined.union(mask);
    }

    /// The healthy dispatch pool: every cluster of the machine minus
    /// the quarantine set.
    pub fn healthy_mask(&self) -> ClusterMask {
        ClusterMask::first(self.config().clusters).without(self.quarantined)
    }

    /// Offloads `kernel` with the full self-healing protocol: watchdog,
    /// bounded re-dispatch with exponential backoff, strike-based
    /// quarantine and re-planning on the surviving mask.
    ///
    /// Every attempt runs in a fresh session ([`Offloader::begin_jobs`]
    /// is the abort mechanism), so a wedged attempt cannot leak state
    /// into its retry; fault-site occurrence counters persist across
    /// sessions, so transient faults stay transient.
    ///
    /// # Errors
    ///
    /// - [`OffloadError::RetriesExhausted`] when `max_retries` re-plans
    ///   all fail and host fallback is disabled,
    /// - [`OffloadError::DegradedInfeasible`] when quarantine leaves no
    ///   viable machine (or the Eq. 3 deadline check fails) and host
    ///   fallback is disabled,
    /// - plus everything [`Offloader::offload_to`] can return.
    pub fn offload_resilient(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        m: usize,
        strategy: OffloadStrategy,
        policy: &RecoveryPolicy,
    ) -> Result<ResilientReport, OffloadError> {
        if m == 0 {
            return Err(OffloadError::NoClusters);
        }
        let n = y.len() as u64;
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut accounted: u64 = 0;

        for attempt in 0..=policy.max_retries {
            // Re-plan on the surviving machine.
            let healthy = self.healthy_mask();
            let m_eff = m.min(healthy.count());
            if m_eff == 0 {
                return self.finish_degraded(kernel, x, y, policy, attempts, accounted);
            }
            if let Some(t_max) = policy.deadline {
                match decide(&policy.model, n, t_max as f64, healthy.count() as u64) {
                    Decision::Offload { .. } => {}
                    Decision::Infeasible | Decision::NotEnoughClusters { .. } => {
                        return self.finish_degraded(kernel, x, y, policy, attempts, accounted);
                    }
                }
            }
            let mask: ClusterMask = healthy.iter().take(m_eff).collect();
            let budget = policy.watchdog_budget(m_eff, n);

            self.begin_jobs();
            let job = self.submit_at(kernel, x, y, mask, strategy, Cycle::ZERO)?;
            let step = self.advance_jobs(Cycle::new(budget))?;

            let (outcome, spent, implicated) = match step {
                SessionStep::Completed(t) => {
                    let spent = t.run.cycles();
                    if t.corrupt_clusters == 0 {
                        accounted += spent;
                        attempts.push(AttemptRecord {
                            attempt,
                            mask,
                            watchdog_budget: budget,
                            spent_cycles: spent,
                            backoff_cycles: 0,
                            outcome: AttemptOutcome::Success,
                            implicated: Vec::new(),
                        });
                        return Ok(ResilientReport {
                            result: RecoveredResult::Offloaded(Box::new(t.run)),
                            attempts,
                            total_cycles: accounted,
                            quarantined: self.quarantined,
                        });
                    }
                    // The CRC flag names the corrupting clusters.
                    let implicated: Vec<usize> = mask
                        .iter()
                        .filter(|&c| t.corrupt_clusters >> c & 1 == 1)
                        .collect();
                    (AttemptOutcome::CorruptData, spent, implicated)
                }
                SessionStep::Horizon | SessionStep::Idle => {
                    // The host only learns of the loss when the watchdog
                    // expires, so the full budget is charged either way.
                    let lost = matches!(step, SessionStep::Idle);
                    self.soc_mut().record_recovery_event(
                        Cycle::new(budget),
                        EventKind::WatchdogFire,
                        job,
                        budget,
                    );
                    // Observable attribution: clusters of the mask that
                    // never posted their completion. A lost *credit*
                    // leaves everyone complete — nobody is implicated
                    // and the retry is plain.
                    let implicated: Vec<usize> = mask
                        .iter()
                        .filter(|&c| !self.soc().cluster_completed(c))
                        .collect();
                    let outcome = if lost {
                        AttemptOutcome::LostCompletion
                    } else {
                        AttemptOutcome::WatchdogTimeout
                    };
                    (outcome, budget, implicated)
                }
            };

            // Strikes and quarantine.
            for &cluster in &implicated {
                self.strikes[cluster] += 1;
                if self.strikes[cluster] >= policy.strike_limit
                    && !self.quarantined.contains(cluster)
                {
                    self.quarantined.insert(cluster);
                    self.soc_mut().record_recovery_event(
                        Cycle::new(budget),
                        EventKind::Quarantine,
                        job,
                        cluster as u64,
                    );
                }
            }

            let last = attempt == policy.max_retries;
            let backoff = if last {
                0
            } else {
                policy.backoff_base << attempt
            };
            accounted += spent + backoff;
            attempts.push(AttemptRecord {
                attempt,
                mask,
                watchdog_budget: budget,
                spent_cycles: spent,
                backoff_cycles: backoff,
                outcome,
                implicated,
            });
            if !last {
                self.soc_mut().record_recovery_event(
                    Cycle::new(budget + backoff),
                    EventKind::Redispatch,
                    job,
                    u64::from(attempt) + 1,
                );
            }
        }

        if policy.host_fallback {
            return self.finish_on_host(kernel, x, y, attempts, accounted);
        }
        Err(OffloadError::RetriesExhausted {
            attempts: policy.max_retries + 1,
        })
    }

    /// Degraded-machine exit: host fallback when allowed, typed error
    /// otherwise.
    fn finish_degraded(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        policy: &RecoveryPolicy,
        attempts: Vec<AttemptRecord>,
        accounted: u64,
    ) -> Result<ResilientReport, OffloadError> {
        if policy.host_fallback {
            return self.finish_on_host(kernel, x, y, attempts, accounted);
        }
        Err(OffloadError::DegradedInfeasible {
            available: self.healthy_mask().count(),
        })
    }

    fn finish_on_host(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        attempts: Vec<AttemptRecord>,
        accounted: u64,
    ) -> Result<ResilientReport, OffloadError> {
        let (cycles, result) = self.run_on_host(kernel, x, y)?;
        Ok(ResilientReport {
            result: RecoveredResult::Host { cycles, result },
            attempts,
            total_cycles: accounted + cycles,
            quarantined: self.quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernels::Daxpy;
    use mpsoc_soc::{SiteSpec, SocConfig};

    fn operands(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i % 89) as f64 * 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 23) as f64 - 4.0).collect();
        (x, y)
    }

    fn offloader(clusters: usize) -> Offloader {
        Offloader::new(SocConfig::with_clusters(clusters)).unwrap()
    }

    #[test]
    fn fault_free_resilient_offload_is_a_plain_offload() {
        let kernel = Daxpy::new(2.0);
        let (x, y) = operands(512);
        let mut plain = offloader(4);
        let want = plain
            .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
            .unwrap();

        let mut off = offloader(4);
        let report = off
            .offload_resilient(
                &kernel,
                &x,
                &y,
                4,
                OffloadStrategy::extended(),
                &RecoveryPolicy::default(),
            )
            .unwrap();
        assert!(!report.recovered());
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::Success);
        match &report.result {
            RecoveredResult::Offloaded(run) => {
                assert_eq!(run.cycles(), want.cycles());
                assert_eq!(run.result, want.result);
            }
            other => panic!("expected an offloaded result, got {other:?}"),
        }
        assert_eq!(report.total_cycles, want.cycles());
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn single_transient_credit_loss_recovers_on_retry() {
        let kernel = Daxpy::new(1.5);
        let (x, y) = operands(256);
        let mut off = offloader(4);
        let mut plan = FaultPlan::with_seed(7);
        plan.credit_loss = SiteSpec::once_at(0);
        off.install_faults(plan);

        let report = off
            .offload_resilient(
                &kernel,
                &x,
                &y,
                4,
                OffloadStrategy::extended(),
                &RecoveryPolicy::default(),
            )
            .unwrap();
        assert!(report.recovered());
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::LostCompletion);
        // A lost credit leaves every cluster complete: nobody is
        // implicated, no strikes, no quarantine.
        assert!(report.attempts[0].implicated.is_empty());
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Success);
        assert!(report.quarantined.is_empty());
        assert!(report.result.verify(&kernel, &x, &y).passed());
        assert!(report.total_cycles > report.attempts[1].spent_cycles);
    }

    #[test]
    fn single_transient_corruption_recovers_and_flags_the_culprit() {
        let kernel = Daxpy::new(3.0);
        let (x, y) = operands(256);
        let mut off = offloader(4);
        let mut plan = FaultPlan::with_seed(11);
        plan.dma_corrupt = SiteSpec::once_at(0);
        off.install_faults(plan);

        let report = off
            .offload_resilient(
                &kernel,
                &x,
                &y,
                4,
                OffloadStrategy::extended(),
                &RecoveryPolicy::default(),
            )
            .unwrap();
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::CorruptData);
        assert_eq!(report.attempts[0].implicated.len(), 1);
        assert_eq!(report.attempts[1].outcome, AttemptOutcome::Success);
        assert!(report.result.verify(&kernel, &x, &y).passed());
    }

    #[test]
    fn dead_cluster_is_quarantined_and_the_job_replans_around_it() {
        let kernel = Daxpy::new(-1.0);
        let (x, y) = operands(512);
        let mut off = offloader(4);
        let mut plan = FaultPlan::with_seed(3);
        plan.dead_clusters = 1 << 2;
        off.install_faults(plan);

        let policy = RecoveryPolicy {
            strike_limit: 2,
            max_retries: 4,
            ..RecoveryPolicy::default()
        };
        let report = off
            .offload_resilient(&kernel, &x, &y, 4, OffloadStrategy::extended(), &policy)
            .unwrap();
        assert!(report.result.verify(&kernel, &x, &y).passed());
        // Cluster 2 was implicated on each failed attempt until its
        // strikes hit the limit, then the re-plan excluded it.
        assert!(report.quarantined.contains(2));
        assert_eq!(report.quarantined.count(), 1);
        let last = report.attempts.last().unwrap();
        assert_eq!(last.outcome, AttemptOutcome::Success);
        assert!(!last.mask.contains(2));
        assert_eq!(last.mask.count(), 3, "shrunk M on the surviving mask");
        for failed in &report.attempts[..report.attempts.len() - 1] {
            assert_eq!(failed.implicated, vec![2]);
        }
        assert_eq!(off.strike_count(2), policy.strike_limit);

        // The quarantine is sticky: a fresh offload never dispatches to
        // the dead cluster and succeeds first try.
        let again = off
            .offload_resilient(&kernel, &x, &y, 4, OffloadStrategy::extended(), &policy)
            .unwrap();
        assert!(!again.recovered());
        assert!(!again.attempts[0].mask.contains(2));
    }

    #[test]
    fn fully_dead_machine_falls_back_to_the_host() {
        let kernel = Daxpy::new(0.5);
        let (x, y) = operands(128);
        let mut off = offloader(2);
        let mut plan = FaultPlan::with_seed(5);
        plan.dead_clusters = 0b11;
        off.install_faults(plan);

        let policy = RecoveryPolicy {
            strike_limit: 1,
            max_retries: 3,
            ..RecoveryPolicy::default()
        };
        let report = off
            .offload_resilient(&kernel, &x, &y, 2, OffloadStrategy::extended(), &policy)
            .unwrap();
        assert!(matches!(report.result, RecoveredResult::Host { .. }));
        assert!(report.result.verify(&kernel, &x, &y).passed());
        assert_eq!(report.quarantined.count(), 2);

        // With fallback disabled the same situation is a typed error.
        let mut strict = offloader(2);
        let mut plan = FaultPlan::with_seed(5);
        plan.dead_clusters = 0b11;
        strict.install_faults(plan);
        let err = strict
            .offload_resilient(
                &kernel,
                &x,
                &y,
                2,
                OffloadStrategy::extended(),
                &RecoveryPolicy {
                    host_fallback: false,
                    ..policy
                },
            )
            .unwrap_err();
        assert!(matches!(err, OffloadError::DegradedInfeasible { .. }));
    }

    #[test]
    fn deadline_infeasible_on_degraded_machine_is_typed() {
        let kernel = Daxpy::new(1.0);
        let (x, y) = operands(1024);
        let mut off = offloader(8);
        let mut plan = FaultPlan::with_seed(9);
        plan.dead_clusters = 0b1111_1110; // only cluster 0 survives
        off.install_faults(plan);
        let policy = RecoveryPolicy {
            strike_limit: 1,
            max_retries: 7,
            host_fallback: false,
            // Feasible on 8 clusters, infeasible on 1 (Eq. 3).
            deadline: Some(RuntimeModel::paper().predict(4, 1024).ceil() as u64),
            ..RecoveryPolicy::default()
        };
        let err = off
            .offload_resilient(&kernel, &x, &y, 8, OffloadStrategy::extended(), &policy)
            .unwrap_err();
        assert!(matches!(err, OffloadError::DegradedInfeasible { .. }));
    }

    #[test]
    fn every_fault_kind_ends_in_success_or_typed_error() {
        let kernel = Daxpy::new(2.5);
        let (x, y) = operands(256);
        for kind_idx in 0..mpsoc_soc::FaultKind::SITES.len() {
            let kind = mpsoc_soc::FaultKind::SITES[kind_idx];
            let mut off = offloader(4);
            let mut plan = FaultPlan::with_seed(13 + kind_idx as u64);
            *match kind {
                mpsoc_soc::FaultKind::DispatchDrop => &mut plan.dispatch_drop,
                mpsoc_soc::FaultKind::DispatchDup => &mut plan.dispatch_dup,
                mpsoc_soc::FaultKind::WakeLoss => &mut plan.wake_loss,
                mpsoc_soc::FaultKind::CreditLoss => &mut plan.credit_loss,
                mpsoc_soc::FaultKind::DmaCorrupt => &mut plan.dma_corrupt,
                mpsoc_soc::FaultKind::DmaStall => &mut plan.dma_stall,
                mpsoc_soc::FaultKind::AmoDrop => &mut plan.amo_drop,
                _ => unreachable!("SITES holds only per-occurrence sites"),
            } = SiteSpec::once_at(0);
            plan.dma_stall_cycles = 400;
            off.install_faults(plan);
            let report = off
                .offload_resilient(
                    &kernel,
                    &x,
                    &y,
                    4,
                    OffloadStrategy::extended(),
                    &RecoveryPolicy::default(),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(
                report.result.verify(&kernel, &x, &y).passed(),
                "{kind}: wrong result"
            );
        }
    }
}
