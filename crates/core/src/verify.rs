//! Result verification against golden references.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Comparison of an offloaded result against the kernel's golden
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Elements compared (1 for reductions).
    pub compared: usize,
    /// Elements that differ beyond the tolerance.
    pub mismatches: usize,
    /// Largest absolute error observed.
    pub max_abs_err: f64,
    /// Tolerance used (0.0 = bitwise for map kernels; relative for
    /// reductions, whose combination order differs from the reference).
    pub tolerance: f64,
}

impl VerifyReport {
    /// `true` when every element matched within tolerance.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }

    /// Compares two vectors elementwise with an absolute tolerance.
    /// Bitwise-equal values always match (so equal infinities and equal
    /// NaN payloads pass); otherwise a non-finite or out-of-tolerance
    /// difference counts as a mismatch.
    pub fn compare_vectors(got: &[f64], want: &[f64], tolerance: f64) -> Self {
        let mut mismatches = got.len().abs_diff(want.len());
        let mut max_abs_err: f64 = 0.0;
        for (&g, &w) in got.iter().zip(want) {
            if g.to_bits() == w.to_bits() {
                continue;
            }
            let err = (g - w).abs();
            // NaN or out-of-tolerance differences are mismatches (the
            // negated comparison is deliberate: it catches NaN).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(err <= tolerance) {
                mismatches += 1;
            }
            if err.is_nan() || err > max_abs_err {
                max_abs_err = if err.is_nan() { f64::NAN } else { err };
            }
        }
        VerifyReport {
            compared: got.len().max(want.len()),
            mismatches,
            max_abs_err,
            tolerance,
        }
    }

    /// Compares two scalars with a relative tolerance.
    pub fn compare_scalars(got: f64, want: f64, rel_tolerance: f64) -> Self {
        let scale = want.abs().max(1.0);
        let err = (got - want).abs();
        let ok = err <= rel_tolerance * scale;
        VerifyReport {
            compared: 1,
            mismatches: usize::from(!ok),
            max_abs_err: err,
            tolerance: rel_tolerance * scale,
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(
                f,
                "ok ({} elements, max |err| = {:.3e})",
                self.compared, self.max_abs_err
            )
        } else {
            write!(
                f,
                "FAILED ({}/{} mismatches, max |err| = {:.3e}, tol = {:.3e})",
                self.mismatches, self.compared, self.max_abs_err, self.tolerance
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_passes() {
        let r = VerifyReport::compare_vectors(&[1.0, 2.0], &[1.0, 2.0], 0.0);
        assert!(r.passed());
        assert_eq!(r.max_abs_err, 0.0);
        assert!(r.to_string().starts_with("ok"));
    }

    #[test]
    fn mismatch_detected() {
        let r = VerifyReport::compare_vectors(&[1.0, 2.5], &[1.0, 2.0], 0.1);
        assert!(!r.passed());
        assert_eq!(r.mismatches, 1);
        assert_eq!(r.max_abs_err, 0.5);
        assert!(r.to_string().contains("FAILED"));
    }

    #[test]
    fn length_mismatch_counts() {
        let r = VerifyReport::compare_vectors(&[1.0], &[1.0, 2.0], 0.0);
        assert!(!r.passed());
        assert_eq!(r.compared, 2);
    }

    #[test]
    fn nan_results_fail() {
        let r = VerifyReport::compare_vectors(&[f64::NAN], &[1.0], 1e9);
        assert!(!r.passed());
    }

    #[test]
    fn scalar_relative_tolerance() {
        let r = VerifyReport::compare_scalars(1000.0000001, 1000.0, 1e-9);
        assert!(r.passed());
        let r = VerifyReport::compare_scalars(1000.1, 1000.0, 1e-9);
        assert!(!r.passed());
        // Small magnitudes fall back to absolute scale 1.0.
        let r = VerifyReport::compare_scalars(1e-12, 0.0, 1e-9);
        assert!(r.passed());
    }
}
