//! The offload runtime: builds host programs and cluster jobs, runs them
//! on the SoC and extracts results.

use mpsoc_kernels::{GoldenOutput, Kernel, KernelKind};
use mpsoc_mem::ClusterReg;
use mpsoc_noc::ClusterMask;
use mpsoc_sim::Cycle;
use mpsoc_soc::{
    ClusterJob, CompletionSignal, ContentionReport, HostOp, HostProgram, JobId, OffloadOutcome,
    SessionProgress, Soc, SocConfig, Transfer,
};
use serde::{Deserialize, Serialize};

use crate::layout::{JobGeometry, MainLayout};
use crate::strategy::{DispatchStrategy, SyncStrategy};
use crate::verify::VerifyReport;
use crate::{OffloadError, OffloadStrategy};

/// Cycle costs of the host-side runtime routines (the software half of
/// the co-design).
///
/// Defaults are calibrated so the extended configuration's constant
/// offload overhead lands near the paper's 367 cycles (see
/// `EXPERIMENTS.md` for the fitted values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeCosts {
    /// Argument marshalling before the descriptor is written.
    pub marshal_cycles: u64,
    /// Loop bookkeeping per cluster in the sequential dispatch loop.
    pub dispatch_loop_cycles: u64,
    /// Interrupt service routine (credit-counter completion path).
    pub isr_cycles: u64,
    /// Spin-loop overhead per software-barrier polling iteration.
    pub spin_cycles: u64,
    /// Barrier-exit bookkeeping after the poll hits.
    pub barrier_exit_cycles: u64,
    /// Host cycles per reduction partial during the combine step.
    pub combine_per_partial_cycles: u64,
}

impl Default for RuntimeCosts {
    fn default() -> Self {
        RuntimeCosts {
            marshal_cycles: 93,
            dispatch_loop_cycles: 6,
            isr_cycles: 62,
            spin_cycles: 4,
            barrier_exit_cycles: 18,
            combine_per_partial_cycles: 3,
        }
    }
}

/// The computed result extracted from main memory after an offload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OffloadResult {
    /// The output `y` vector of a map kernel.
    Vector(Vec<f64>),
    /// The combined scalar of a reduce kernel.
    Scalar(f64),
}

impl OffloadResult {
    /// Verifies this result against the kernel's golden reference over
    /// the original operands (see [`OffloadRun::verify`]).
    pub fn verify(&self, kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> VerifyReport {
        match (kernel.golden(x, y), self) {
            (GoldenOutput::Vector(want), OffloadResult::Vector(got)) => {
                VerifyReport::compare_vectors(got, &want, 0.0)
            }
            (GoldenOutput::Scalar(want), OffloadResult::Scalar(got)) => {
                VerifyReport::compare_scalars(*got, want, 1e-9)
            }
            (GoldenOutput::Vector(want), OffloadResult::Scalar(_)) => {
                VerifyReport::compare_vectors(&[], &want, 0.0)
            }
            (GoldenOutput::Scalar(want), OffloadResult::Vector(_)) => {
                VerifyReport::compare_scalars(f64::NAN, want, 1e-9)
            }
        }
    }
}

/// One completed offload: measurement plus result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OffloadRun {
    /// Timing, energy and per-cluster reports from the SoC.
    pub outcome: OffloadOutcome,
    /// The computed result.
    pub result: OffloadResult,
    /// Problem size.
    pub n: u64,
    /// Clusters employed.
    pub m: usize,
    /// Strategy used.
    pub strategy: OffloadStrategy,
}

impl OffloadRun {
    /// End-to-end runtime in cycles (== nanoseconds at 1 GHz).
    pub fn cycles(&self) -> u64 {
        self.outcome.total.as_u64()
    }

    /// Verifies the result against the kernel's golden reference.
    ///
    /// Map kernels must match bitwise (the simulated FPU and the
    /// reference both use fused multiply-add); reductions are compared
    /// with a relative tolerance because the combination order differs.
    pub fn verify(&self, kernel: &dyn Kernel, x: &[f64], y: &[f64]) -> VerifyReport {
        self.result.verify(kernel, x, y)
    }
}

/// One tenant's completed offload from a concurrent session
/// ([`Offloader::submit_at`] / [`Offloader::advance_jobs`]): the
/// [`OffloadRun`] measured *in company* — its `outcome.total` includes
/// every cycle spent queueing for the shared host core and every
/// contention-stretched phase — plus the SoC's per-job interference
/// attribution.
#[derive(Debug, Clone)]
pub struct TenantRun {
    /// The job handle returned by [`Offloader::submit_at`].
    pub job: JobId,
    /// When the job was submitted (session virtual time).
    pub submitted_at: Cycle,
    /// When the job's host program retired (session virtual time).
    pub finished_at: Cycle,
    /// Cycles the job's host phases queued behind other tenants on the
    /// serial host core.
    pub host_wait_cycles: u64,
    /// Shared-resource interference (NoC stall, HBM queueing, AMO wait)
    /// attributed to this job.
    pub contention: ContentionReport,
    /// Bitmask of the job's clusters whose DMA engine flagged a CRC
    /// mismatch — the architecturally visible corruption signal the
    /// self-healing runtime retries on. Zero on every fault-free run.
    pub corrupt_clusters: u64,
    /// Injected faults attributed to this job (diagnostic ground truth;
    /// recovery keys off observable signals only).
    pub faults_injected: u64,
    /// The measurement and result, timestamps relative to submission.
    pub run: OffloadRun,
}

/// What one [`Offloader::advance_jobs`] step produced.
#[derive(Debug)]
pub enum SessionStep {
    /// A tenant finished; its completed run.
    Completed(Box<TenantRun>),
    /// The horizon was reached with jobs still in flight.
    Horizon,
    /// No jobs are in flight and no events remain.
    Idle,
}

/// Bookkeeping for a submitted-but-not-yet-collected tenant job.
#[derive(Debug)]
struct PendingJob {
    job: JobId,
    layout: MainLayout,
    kind: KernelKind,
    n: u64,
    m: usize,
    partial_slots: u64,
    strategy: OffloadStrategy,
    region_word: u64,
}

/// The offload runtime: owns a simulated SoC and runs kernels on it.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Offloader {
    soc: Soc,
    costs: RuntimeCosts,
    /// In-flight session jobs awaiting completion.
    pending: Vec<PendingJob>,
    /// Live main-memory regions `(start_word, words)`, sorted by start:
    /// the deterministic first-fit allocator for concurrent tenants.
    regions: Vec<(u64, u64)>,
    /// Per-cluster fault-implication strikes accumulated by the
    /// self-healing path (see [`Offloader::offload_resilient`]).
    pub(crate) strikes: Vec<u32>,
    /// Clusters quarantined after reaching the strike limit; excluded
    /// from every future resilient dispatch.
    pub(crate) quarantined: ClusterMask,
}

impl Offloader {
    /// Builds an offloader on a fresh SoC.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Soc`] for an invalid configuration.
    pub fn new(config: SocConfig) -> Result<Self, OffloadError> {
        let clusters = config.clusters;
        Ok(Offloader {
            soc: Soc::new(config)?,
            costs: RuntimeCosts::default(),
            pending: Vec::new(),
            regions: Vec::new(),
            strikes: vec![0; clusters],
            quarantined: ClusterMask::default(),
        })
    }

    /// Builds an offloader with explicit host-runtime costs.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Soc`] for an invalid configuration.
    pub fn with_costs(config: SocConfig, costs: RuntimeCosts) -> Result<Self, OffloadError> {
        let clusters = config.clusters;
        Ok(Offloader {
            soc: Soc::new(config)?,
            costs,
            pending: Vec::new(),
            regions: Vec::new(),
            strikes: vec![0; clusters],
            quarantined: ClusterMask::default(),
        })
    }

    /// The SoC configuration in effect.
    pub fn config(&self) -> &SocConfig {
        self.soc.config()
    }

    /// The host-runtime costs in effect.
    pub fn costs(&self) -> &RuntimeCosts {
        &self.costs
    }

    /// The underlying SoC (inspection, tracing).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable access to the underlying SoC (e.g. enabling traces).
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Offloads `kernel` over operands `x`/`y` to the first `m` clusters
    /// using `strategy`, returning the measurement and the result.
    ///
    /// # Errors
    ///
    /// Size/geometry violations ([`OffloadError::TooManyClusters`],
    /// [`OffloadError::TcdmOverflow`], ...) and SoC execution failures.
    pub fn offload(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        m: usize,
        strategy: OffloadStrategy,
    ) -> Result<OffloadRun, OffloadError> {
        let available = self.soc.config().clusters;
        if m > available {
            return Err(OffloadError::TooManyClusters {
                requested: m,
                available,
            });
        }
        self.offload_to(kernel, x, y, ClusterMask::first(m), strategy)
    }

    /// Executes `kernel` entirely on the host core (no offload): the
    /// CVA6-class scalar pipeline runs the same micro-op program a
    /// single worker core would, over cached main-memory data. This is
    /// the measured counterpart of
    /// [`decision::HostModel`](crate::decision::HostModel), used by the
    /// break-even analysis.
    ///
    /// # Errors
    ///
    /// Operand mismatches and core faults.
    pub fn run_on_host(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
    ) -> Result<(u64, OffloadResult), OffloadError> {
        let n = y.len() as u64;
        if x.len() as u64 != n * kernel.x_words_per_elem() {
            return Err(OffloadError::OperandMismatch {
                x_len: x.len(),
                y_len: y.len(),
            });
        }
        // Flat image: [left halo] x [right halo], y, out slot
        // (reductions), args + zero word. Halo slots stay zero — the
        // job-boundary semantics of stencil kernels.
        let halo = kernel.x_halo() as usize;
        let x_words = x.len() + 2 * halo;
        let out_word = x_words + y.len();
        let args_word = out_word + 1;
        let args = kernel.scalar_args();
        let mut image = vec![0.0; args_word + args.len() + 1];
        image[halo..halo + x.len()].copy_from_slice(x);
        image[x_words..x_words + y.len()].copy_from_slice(y);
        image[args_word..args_word + args.len()].copy_from_slice(&args);

        let slice = mpsoc_kernels::CoreSlice {
            elems: n,
            x_base: (halo * 8) as u64,
            y_base: (x_words * 8) as u64,
            out_base: match kernel.kind() {
                KernelKind::Map => (x_words * 8) as u64,
                KernelKind::Reduce => (out_word * 8) as u64,
            },
            args_base: (args_word * 8) as u64,
            core_index: 0,
        };
        let program = kernel.codegen(&slice)?;
        let mut port = mpsoc_isa::VecPort::new(image);
        let report = mpsoc_isa::Interpreter::with_timing(mpsoc_isa::CoreTiming::cva6())
            .run(&program, &mut port)
            .map_err(|error| {
                OffloadError::Soc(mpsoc_soc::SocError::Core {
                    cluster: usize::MAX,
                    core: 0,
                    error,
                })
            })?;
        let result = match kernel.kind() {
            KernelKind::Map => {
                OffloadResult::Vector(port.data()[x_words..x_words + y.len()].to_vec())
            }
            KernelKind::Reduce => OffloadResult::Scalar(port.data()[out_word]),
        };
        Ok((report.finish.as_u64(), result))
    }

    /// Offloads a *map* kernel with a software-pipelined (double-buffered)
    /// cluster schedule: each cluster's slice is split into `stages`
    /// sub-slices that alternate between two TCDM buffers, so stage
    /// `k+1`'s DMA-in overlaps stage `k`'s compute and data movement
    /// hides behind arithmetic. An extension beyond the paper's runtime
    /// (whose clusters execute DMA-in → compute → DMA-out sequentially).
    ///
    /// With `stages == 1` this is identical to [`Offloader::offload`].
    ///
    /// # Errors
    ///
    /// [`OffloadError::PipelineUnsupported`] for reduce kernels (their
    /// accumulator spans the whole slice), plus everything
    /// [`Offloader::offload`] can return.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero.
    pub fn offload_pipelined(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        m: usize,
        strategy: OffloadStrategy,
        stages: usize,
    ) -> Result<OffloadRun, OffloadError> {
        assert!(stages > 0, "need at least one pipeline stage");
        if stages == 1 {
            return self.offload(kernel, x, y, m, strategy);
        }
        if kernel.kind() != KernelKind::Map || kernel.x_halo() != 0 {
            return Err(OffloadError::PipelineUnsupported {
                kernel: kernel.name().to_owned(),
            });
        }
        let available = self.soc.config().clusters;
        if m == 0 {
            return Err(OffloadError::NoClusters);
        }
        if m > available {
            return Err(OffloadError::TooManyClusters {
                requested: m,
                available,
            });
        }
        let n = y.len() as u64;
        let wpe = kernel.x_words_per_elem();
        let x_words = n * wpe;
        if x.len() as u64 != x_words {
            return Err(OffloadError::OperandMismatch {
                x_len: x.len(),
                y_len: y.len(),
            });
        }
        let cores = self.soc.config().cores_per_cluster;
        let layout = MainLayout::plan(self.soc.map(), x_words, n, 0)?;
        self.soc
            .main_mut()
            .store_mut()
            .write_f64_slice(layout.x, x)?;
        self.soc
            .main_mut()
            .store_mut()
            .write_f64_slice(layout.y, y)?;

        let mask = ClusterMask::first(m);
        let partition = mpsoc_kernels::partition::JobPartition::new(n, m, cores);
        for (position, cluster) in mask.iter().enumerate() {
            let job = self.build_pipelined_job(
                kernel,
                &layout,
                partition.clusters()[position],
                cores,
                strategy,
                stages,
            )?;
            self.soc.bind_job(cluster, job);
        }

        let program = self.build_host_program(kernel, &layout, n, mask, cores, strategy);
        let outcome = self.soc.run_offload(program, mask)?;
        let out = self.soc.main().store().read_f64_slice(layout.y, n)?;
        Ok(OffloadRun {
            outcome,
            result: OffloadResult::Vector(out),
            n,
            m,
            strategy,
        })
    }

    fn build_pipelined_job(
        &self,
        kernel: &dyn Kernel,
        layout: &MainLayout,
        chunk: mpsoc_kernels::partition::Chunk,
        cores: usize,
        strategy: OffloadStrategy,
        stages: usize,
    ) -> Result<ClusterJob, OffloadError> {
        use mpsoc_kernels::partition::split_even;
        use mpsoc_soc::JobStage;

        let wpe = kernel.x_words_per_elem();
        let subs = split_even(chunk.count, stages);
        let max_sub = subs.iter().map(|s| s.count).max().unwrap_or(0);
        // Two alternating buffers, each holding one sub-slice.
        let x_span = if kernel.uses_x() { max_sub * wpe } else { 0 };
        let y_span = max_sub; // the output buffer (map kernels only)
        let buf_span = x_span + y_span;
        let args_word = 2 * buf_span;
        let required = args_word + kernel.scalar_args().len() as u64 + 1;
        let capacity = self.soc.config().tcdm_words;
        if required > capacity {
            return Err(OffloadError::TcdmOverflow { required, capacity });
        }

        let mut job_stages = Vec::with_capacity(stages);
        for (k, sub) in subs.iter().enumerate() {
            let parity = (k % 2) as u64;
            let x_buf = parity * buf_span;
            let y_buf = parity * buf_span + x_span;
            let abs_start = chunk.start + sub.start;

            let mut dma_in = Vec::new();
            if kernel.uses_x() && sub.count > 0 {
                dma_in.push(Transfer {
                    main_addr: layout.x.add_words(abs_start * wpe),
                    local_word: x_buf,
                    words: sub.count * wpe,
                });
            }
            if kernel.uses_y() && sub.count > 0 {
                dma_in.push(Transfer {
                    main_addr: layout.y.add_words(abs_start),
                    local_word: y_buf,
                    words: sub.count,
                });
            }
            let mut dma_out = Vec::new();
            if sub.count > 0 {
                dma_out.push(Transfer {
                    main_addr: layout.y.add_words(abs_start),
                    local_word: y_buf,
                    words: sub.count,
                });
            }

            let programs = split_even(sub.count, cores)
                .iter()
                .enumerate()
                .map(|(core, core_chunk)| {
                    let slice = mpsoc_kernels::CoreSlice {
                        elems: core_chunk.count,
                        x_base: (x_buf + core_chunk.start * wpe) * mpsoc_mem::WORD_BYTES,
                        y_base: (y_buf + core_chunk.start) * mpsoc_mem::WORD_BYTES,
                        out_base: (y_buf + core_chunk.start) * mpsoc_mem::WORD_BYTES,
                        args_base: args_word * mpsoc_mem::WORD_BYTES,
                        core_index: core,
                    };
                    kernel.codegen(&slice)
                })
                .collect::<Result<Vec<_>, _>>()?;

            job_stages.push(JobStage {
                dma_in,
                programs,
                dma_out,
            });
        }

        let completion = match strategy.sync {
            SyncStrategy::CreditCounter => CompletionSignal::Credit,
            SyncStrategy::SoftwareBarrier => CompletionSignal::Barrier {
                addr: layout.barrier,
            },
        };
        Ok(ClusterJob {
            stages: job_stages,
            args: kernel.scalar_args(),
            args_local_word: args_word,
            completion,
        })
    }

    /// Offloads to an arbitrary set of clusters (e.g. the upper half of
    /// the machine while the lower half runs another tenant's job).
    ///
    /// # Errors
    ///
    /// As [`Offloader::offload`].
    pub fn offload_to(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        mask: ClusterMask,
        strategy: OffloadStrategy,
    ) -> Result<OffloadRun, OffloadError> {
        let m = mask.count();
        if m == 0 {
            return Err(OffloadError::NoClusters);
        }
        let available = self.soc.config().clusters;
        if mask.highest().expect("non-empty") >= available {
            return Err(OffloadError::TooManyClusters {
                requested: mask.highest().expect("non-empty") + 1,
                available,
            });
        }
        // The job size is the output length; `x` must hold
        // `x_words_per_elem` words per element (1 for vector kernels,
        // `K` for matrix kernels like GEMV).
        let n = y.len() as u64;
        let x_words = n * kernel.x_words_per_elem();
        if x.len() as u64 != x_words {
            return Err(OffloadError::OperandMismatch {
                x_len: x.len(),
                y_len: y.len(),
            });
        }
        let cores = self.soc.config().cores_per_cluster;
        let partial_slots = (m * cores) as u64;

        let layout = MainLayout::plan(self.soc.map(), x_words, n, partial_slots)?;
        let geometry = JobGeometry::plan(kernel, n, m, cores, self.soc.config().tcdm_words)?;

        // Load operands (zero-time test-bench initialization, as the
        // paper's measurements also exclude input generation).
        self.soc
            .main_mut()
            .store_mut()
            .write_f64_slice(layout.x, x)?;
        self.soc
            .main_mut()
            .store_mut()
            .write_f64_slice(layout.y, y)?;

        // The reserved zero word feeds halo zero-fills at job edges.
        self.soc.main_mut().store_mut().write_u64(layout.zero, 0)?;

        // Bind one job per selected cluster; the job geometry is indexed
        // by *position* within the mask, not by cluster id.
        for (position, cluster) in mask.iter().enumerate() {
            let job =
                self.build_cluster_job(kernel, &geometry, &layout, position, n, cores, strategy)?;
            self.soc.bind_job(cluster, job);
        }

        let program = self.build_host_program(kernel, &layout, n, mask, cores, strategy);
        let outcome = self.soc.run_offload(program, mask)?;

        let result = match kernel.kind() {
            KernelKind::Map => {
                let out = self.soc.main().store().read_f64_slice(layout.y, n)?;
                OffloadResult::Vector(out)
            }
            KernelKind::Reduce => {
                let partials = self
                    .soc
                    .main()
                    .store()
                    .read_f64_slice(layout.partials, partial_slots)?;
                OffloadResult::Scalar(partials.iter().sum())
            }
        };

        Ok(OffloadRun {
            outcome,
            result,
            n,
            m,
            strategy,
        })
    }

    /// Opens a concurrent-job session: resets the SoC's virtual time,
    /// shared-resource models and statistics, and clears the runtime's
    /// region allocator. Jobs are then placed with
    /// [`Offloader::submit_at`] and driven with
    /// [`Offloader::advance_jobs`]; tenants on disjoint cluster
    /// partitions overlap in time on the shared NoC, HBM and host core.
    pub fn begin_jobs(&mut self) {
        self.soc.begin_jobs();
        self.pending.clear();
        self.regions.clear();
    }

    /// Submits `kernel` over `x`/`y` to the clusters in `mask` at
    /// session time `at` (clamped forward to "now"), returning a job
    /// handle. The job's operands live in a private main-memory region
    /// (deterministic first-fit), so concurrent tenants never alias.
    ///
    /// # Errors
    ///
    /// Everything [`Offloader::offload_to`] can return, plus
    /// [`mpsoc_soc::SocError::PartitionOverlap`] (via
    /// [`OffloadError::Soc`]) when `mask` intersects a tenant still in
    /// flight, and [`OffloadError::MainMemoryOverflow`] when no region
    /// fits between the live tenants.
    pub fn submit_at(
        &mut self,
        kernel: &dyn Kernel,
        x: &[f64],
        y: &[f64],
        mask: ClusterMask,
        strategy: OffloadStrategy,
        at: Cycle,
    ) -> Result<JobId, OffloadError> {
        let m = mask.count();
        if m == 0 {
            return Err(OffloadError::NoClusters);
        }
        let available = self.soc.config().clusters;
        if mask.highest().expect("non-empty") >= available {
            return Err(OffloadError::TooManyClusters {
                requested: mask.highest().expect("non-empty") + 1,
                available,
            });
        }
        let n = y.len() as u64;
        let x_words = n * kernel.x_words_per_elem();
        if x.len() as u64 != x_words {
            return Err(OffloadError::OperandMismatch {
                x_len: x.len(),
                y_len: y.len(),
            });
        }
        let cores = self.soc.config().cores_per_cluster;
        let partial_slots = (m * cores) as u64;

        let span = MainLayout::region_words(x_words, n);
        let region_word = self.alloc_region(span)?;
        let submitted = (|| {
            let layout =
                MainLayout::plan_at(self.soc.map(), region_word, x_words, n, partial_slots)?;
            let geometry = JobGeometry::plan(kernel, n, m, cores, self.soc.config().tcdm_words)?;

            self.soc
                .main_mut()
                .store_mut()
                .write_f64_slice(layout.x, x)?;
            self.soc
                .main_mut()
                .store_mut()
                .write_f64_slice(layout.y, y)?;
            self.soc.main_mut().store_mut().write_u64(layout.zero, 0)?;

            for (position, cluster) in mask.iter().enumerate() {
                let job = self
                    .build_cluster_job(kernel, &geometry, &layout, position, n, cores, strategy)?;
                self.soc.bind_job(cluster, job);
            }

            let program = self.build_host_program(kernel, &layout, n, mask, cores, strategy);
            let job = self.soc.submit_job(program, mask, at)?;
            Ok::<_, OffloadError>((job, layout))
        })();
        match submitted {
            Ok((job, layout)) => {
                self.pending.push(PendingJob {
                    job,
                    layout,
                    kind: kernel.kind(),
                    n,
                    m,
                    partial_slots,
                    strategy,
                    region_word,
                });
                Ok(job)
            }
            Err(e) => {
                self.free_region(region_word);
                Err(e)
            }
        }
    }

    /// Advances the session until a tenant completes, the event queue
    /// drains, or virtual time would pass `horizon`. On completion the
    /// tenant's result is read back from its region and the region is
    /// freed for later submissions.
    ///
    /// # Errors
    ///
    /// Fatal SoC execution errors and result read-back failures.
    pub fn advance_jobs(&mut self, horizon: Cycle) -> Result<SessionStep, OffloadError> {
        match self.soc.advance_jobs(horizon)? {
            SessionProgress::Completed(c) => {
                let at = self
                    .pending
                    .iter()
                    .position(|p| p.job == c.job)
                    .expect("completion for a job this runtime never submitted");
                let p = self.pending.remove(at);
                self.free_region(p.region_word);
                let result = match p.kind {
                    KernelKind::Map => OffloadResult::Vector(
                        self.soc.main().store().read_f64_slice(p.layout.y, p.n)?,
                    ),
                    KernelKind::Reduce => {
                        let partials = self
                            .soc
                            .main()
                            .store()
                            .read_f64_slice(p.layout.partials, p.partial_slots)?;
                        OffloadResult::Scalar(partials.iter().sum())
                    }
                };
                Ok(SessionStep::Completed(Box::new(TenantRun {
                    job: c.job,
                    submitted_at: c.submitted_at,
                    finished_at: c.finished_at,
                    host_wait_cycles: c.host_wait_cycles,
                    contention: c.contention,
                    corrupt_clusters: c.corrupt_clusters,
                    faults_injected: c.faults_injected,
                    run: OffloadRun {
                        outcome: c.outcome,
                        result,
                        n: p.n,
                        m: p.m,
                        strategy: p.strategy,
                    },
                })))
            }
            SessionProgress::Horizon => Ok(SessionStep::Horizon),
            SessionProgress::Idle => Ok(SessionStep::Idle),
        }
    }

    /// Current session virtual time.
    pub fn session_now(&self) -> Cycle {
        self.soc.session_now()
    }

    /// Jobs submitted but not yet completed.
    pub fn jobs_in_flight(&self) -> usize {
        self.soc.jobs_in_flight()
    }

    /// First-fit region allocation over the live-region list (kept
    /// sorted by start word), deterministic across runs.
    fn alloc_region(&mut self, words: u64) -> Result<u64, OffloadError> {
        let capacity = self.soc.map().main_words();
        let mut start = 0u64;
        for &(live_start, live_words) in &self.regions {
            if start + words <= live_start {
                break;
            }
            start = live_start + live_words;
        }
        if start + words > capacity {
            return Err(OffloadError::MainMemoryOverflow {
                required: start + words,
                capacity,
            });
        }
        let at = self
            .regions
            .iter()
            .position(|&(s, _)| s > start)
            .unwrap_or(self.regions.len());
        self.regions.insert(at, (start, words));
        Ok(start)
    }

    fn free_region(&mut self, start: u64) {
        self.regions.retain(|&(s, _)| s != start);
    }

    #[allow(clippy::too_many_arguments)] // internal builder mirroring the job's natural parameters
    fn build_cluster_job(
        &self,
        kernel: &dyn Kernel,
        geometry: &JobGeometry,
        layout: &MainLayout,
        position: usize,
        n: u64,
        cores: usize,
        strategy: OffloadStrategy,
    ) -> Result<ClusterJob, OffloadError> {
        let chunk = geometry.partition.clusters()[position];
        let tcdm = &geometry.tcdm[position];

        let mut dma_in = Vec::new();
        if kernel.uses_x() && chunk.count > 0 {
            let wpe = kernel.x_words_per_elem();
            let halo = kernel.x_halo();
            debug_assert!(
                halo == 0 || wpe == 1,
                "halos are only supported for one-word-per-element kernels"
            );
            // Fetch the slice plus as much halo as exists in the job;
            // job-edge halo slots are zero-filled from the reserved word.
            let fetch_start = chunk.start.saturating_sub(halo);
            let fetch_end = (chunk.end() + halo).min(n);
            let left_missing = halo - (chunk.start - fetch_start);
            let right_missing = halo - (fetch_end - chunk.end());
            for i in 0..left_missing {
                dma_in.push(Transfer {
                    main_addr: layout.zero,
                    local_word: tcdm.x_word + i,
                    words: 1,
                });
            }
            dma_in.push(Transfer {
                main_addr: layout.x.add_words(fetch_start * wpe),
                local_word: tcdm.x_word + left_missing,
                words: (fetch_end - fetch_start) * wpe,
            });
            for i in 0..right_missing {
                dma_in.push(Transfer {
                    main_addr: layout.zero,
                    local_word: tcdm.x_word + left_missing + (fetch_end - fetch_start) + i,
                    words: 1,
                });
            }
        }
        if kernel.uses_y() && chunk.count > 0 {
            dma_in.push(Transfer {
                main_addr: layout.y.add_words(chunk.start),
                local_word: tcdm.y_word,
                words: chunk.count,
            });
        }

        let mut dma_out = Vec::new();
        match kernel.kind() {
            KernelKind::Map => {
                if chunk.count > 0 {
                    dma_out.push(Transfer {
                        main_addr: layout.y.add_words(chunk.start),
                        local_word: tcdm.y_word,
                        words: chunk.count,
                    });
                }
            }
            KernelKind::Reduce => {
                dma_out.push(Transfer {
                    main_addr: layout.partials.add_words((position * cores) as u64),
                    local_word: tcdm.out_word,
                    words: cores as u64,
                });
            }
        }

        let programs = geometry
            .partition
            .cores(position)
            .iter()
            .enumerate()
            .map(|(core, &core_chunk)| {
                let slice = tcdm.core_slice(kernel, chunk.start, core, core_chunk);
                kernel.codegen(&slice)
            })
            .collect::<Result<Vec<_>, _>>()?;

        let completion = match strategy.sync {
            SyncStrategy::CreditCounter => CompletionSignal::Credit,
            SyncStrategy::SoftwareBarrier => CompletionSignal::Barrier {
                addr: layout.barrier,
            },
        };

        Ok(ClusterJob::single(
            programs,
            dma_in,
            dma_out,
            kernel.scalar_args(),
            tcdm.args_word,
            completion,
        ))
    }

    fn build_host_program(
        &self,
        kernel: &dyn Kernel,
        layout: &MainLayout,
        n: u64,
        mask: ClusterMask,
        cores: usize,
        strategy: OffloadStrategy,
    ) -> HostProgram {
        let costs = &self.costs;
        let m = mask.count();
        let mut ops = Vec::new();

        // 1. Marshal the job descriptor and write it out.
        ops.push(HostOp::Compute(costs.marshal_cycles));
        let args = kernel.scalar_args();
        let desc_len = self.soc.config().descriptor_words as usize;
        let mut desc = vec![0u64; desc_len];
        desc[0] = layout.x.as_u64();
        if desc_len > 1 {
            desc[1] = layout.y.as_u64();
        }
        if desc_len > 2 {
            desc[2] = m as u64;
        }
        for (i, a) in args.iter().enumerate() {
            if 3 + i < desc_len {
                desc[3 + i] = a.to_bits();
            }
        }
        ops.push(HostOp::WriteWords {
            addr: layout.desc,
            values: desc,
        });

        // 2. Serial operand preparation (the paper's N/4 data term):
        //    flush inputs to accelerator-visible memory and
        //    allocate/invalidate the output lines.
        let in_words = kernel.dma_in_words(n);
        let out_words = kernel.dma_out_words(n, (m * cores) as u64);
        ops.push(HostOp::PrepareOperands {
            words: in_words + out_words,
        });

        // 3. Prepare the synchronization mechanism.
        match strategy.sync {
            SyncStrategy::CreditCounter => {
                ops.push(HostOp::CreditArm {
                    threshold: m as u64,
                });
            }
            SyncStrategy::SoftwareBarrier => {
                ops.push(HostOp::StoreUncachedMain {
                    addr: layout.barrier,
                    value: 0,
                });
            }
        }

        // 4. Dispatch.
        match strategy.dispatch {
            DispatchStrategy::Multicast => {
                ops.push(HostOp::MulticastMailbox {
                    mask,
                    reg: ClusterReg::JobPtr,
                    value: layout.desc.as_u64(),
                });
                ops.push(HostOp::MulticastMailbox {
                    mask,
                    reg: ClusterReg::Wakeup,
                    value: 1,
                });
            }
            DispatchStrategy::Sequential => {
                for cluster in mask.iter() {
                    ops.push(HostOp::Compute(costs.dispatch_loop_cycles));
                    ops.push(HostOp::StoreMailbox {
                        cluster,
                        reg: ClusterReg::JobPtr,
                        value: layout.desc.as_u64(),
                    });
                    ops.push(HostOp::StoreMailbox {
                        cluster,
                        reg: ClusterReg::Wakeup,
                        value: 1,
                    });
                }
            }
        }

        // 5. Wait for completion.
        match strategy.sync {
            SyncStrategy::CreditCounter => {
                ops.push(HostOp::WaitIrq);
                ops.push(HostOp::Compute(costs.isr_cycles));
            }
            SyncStrategy::SoftwareBarrier => {
                ops.push(HostOp::PollUntilEq {
                    addr: layout.barrier,
                    value: m as u64,
                    spin_cycles: costs.spin_cycles,
                });
                ops.push(HostOp::Compute(costs.barrier_exit_cycles));
            }
        }

        // 6. Reductions: combine per-core partials on the host.
        if kernel.kind() == KernelKind::Reduce {
            let partials = (m * cores) as u64;
            ops.push(HostOp::Compute(costs.combine_per_partial_cycles * partials));
        }

        ops.push(HostOp::End);
        HostProgram::new(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernels::{Daxpy, Dot, Memset};

    fn offloader(clusters: usize) -> Offloader {
        Offloader::new(SocConfig::with_clusters(clusters)).unwrap()
    }

    fn ramp(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.25).collect();
        let y: Vec<f64> = (0..n).map(|i| 10.0 - (i % 31) as f64).collect();
        (x, y)
    }

    #[test]
    fn daxpy_round_trip_both_strategies() {
        let mut off = offloader(4);
        let kernel = Daxpy::new(2.5);
        let (x, y) = ramp(256);
        for strategy in [OffloadStrategy::baseline(), OffloadStrategy::extended()] {
            let run = off.offload(&kernel, &x, &y, 4, strategy).unwrap();
            let report = run.verify(&kernel, &x, &y);
            assert!(report.passed(), "{strategy}: {report}");
            assert!(run.cycles() > 0);
            assert_eq!(run.n, 256);
            assert_eq!(run.m, 4);
        }
    }

    #[test]
    fn extended_beats_baseline() {
        let mut off = offloader(8);
        let kernel = Daxpy::new(1.0);
        let (x, y) = ramp(1024);
        let base = off
            .offload(&kernel, &x, &y, 8, OffloadStrategy::baseline())
            .unwrap();
        let ext = off
            .offload(&kernel, &x, &y, 8, OffloadStrategy::extended())
            .unwrap();
        assert!(
            ext.cycles() < base.cycles(),
            "extended {} should beat baseline {}",
            ext.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn reduce_kernel_combines_partials() {
        let mut off = offloader(4);
        let kernel = Dot::new();
        let (x, y) = ramp(512);
        let run = off
            .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
            .unwrap();
        let report = run.verify(&kernel, &x, &y);
        assert!(report.passed(), "{report}");
        match run.result {
            OffloadResult::Scalar(s) => assert!(s.is_finite()),
            OffloadResult::Vector(_) => panic!("dot must produce a scalar"),
        }
    }

    #[test]
    fn memset_requires_no_input_streams() {
        let mut off = offloader(2);
        let kernel = Memset::new(7.5);
        let (x, y) = ramp(128);
        let run = off
            .offload(&kernel, &x, &y, 2, OffloadStrategy::extended())
            .unwrap();
        assert!(run.verify(&kernel, &x, &y).passed());
    }

    #[test]
    fn geometry_errors_are_surfaced() {
        let mut off = offloader(2);
        let kernel = Daxpy::new(1.0);
        let (x, y) = ramp(64);
        assert!(matches!(
            off.offload(&kernel, &x, &y, 3, OffloadStrategy::extended()),
            Err(OffloadError::TooManyClusters { .. })
        ));
        assert!(matches!(
            off.offload(&kernel, &x, &y, 0, OffloadStrategy::extended()),
            Err(OffloadError::NoClusters)
        ));
        assert!(matches!(
            off.offload(&kernel, &x[..10], &y, 2, OffloadStrategy::extended()),
            Err(OffloadError::OperandMismatch { .. })
        ));
    }

    #[test]
    fn repeated_offloads_are_deterministic() {
        let mut off = offloader(4);
        let kernel = Daxpy::new(3.0);
        let (x, y) = ramp(512);
        let a = off
            .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
            .unwrap();
        let b = off
            .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
            .unwrap();
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn session_single_tenant_matches_blocking_offload() {
        let kernel = Daxpy::new(2.5);
        let (x, y) = ramp(256);
        let mut legacy = offloader(4);
        let want = legacy
            .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
            .unwrap();

        let mut off = offloader(4);
        off.begin_jobs();
        let job = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::first(4),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap();
        let done = match off.advance_jobs(Cycle::MAX).unwrap() {
            SessionStep::Completed(t) => t,
            other => panic!("expected completion, got {other:?}"),
        };
        assert_eq!(done.job, job);
        assert_eq!(done.run.cycles(), want.cycles());
        assert_eq!(done.run.result, want.result);
        assert_eq!(done.host_wait_cycles, 0);
        assert!(matches!(
            off.advance_jobs(Cycle::MAX).unwrap(),
            SessionStep::Idle
        ));
        assert_eq!(off.jobs_in_flight(), 0);
    }

    #[test]
    fn concurrent_tenants_verify_and_interfere() {
        let kernel = Daxpy::new(1.5);
        let (x, y) = ramp(512);
        // Solo reference on the same partition shape.
        let mut solo = offloader(4);
        let solo_run = solo
            .offload_to(
                &kernel,
                &x,
                &y,
                ClusterMask::range(2, 2),
                OffloadStrategy::extended(),
            )
            .unwrap();

        let mut off = offloader(4);
        off.begin_jobs();
        let a = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::first(2),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap();
        let b = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::range(2, 2),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap();
        assert_eq!(off.jobs_in_flight(), 2);
        let mut done = Vec::new();
        while let SessionStep::Completed(t) = off.advance_jobs(Cycle::MAX).unwrap() {
            done.push(*t);
        }
        assert_eq!(done.len(), 2);
        for t in &done {
            assert!(t.run.verify(&kernel, &x, &y).passed(), "job {}", t.job);
        }
        let b_run = done.iter().find(|t| t.job == b).unwrap();
        let a_run = done.iter().find(|t| t.job == a).unwrap();
        // The second tenant queued behind the first on the serial host.
        assert!(b_run.host_wait_cycles > 0);
        assert!(b_run.run.cycles() > solo_run.cycles());
        assert!(a_run.run.cycles() >= solo_run.cycles());
    }

    #[test]
    fn session_rejects_overlapping_partitions_and_recovers() {
        let kernel = Daxpy::new(1.0);
        let (x, y) = ramp(128);
        let mut off = offloader(4);
        off.begin_jobs();
        off.submit_at(
            &kernel,
            &x,
            &y,
            ClusterMask::first(2),
            OffloadStrategy::extended(),
            Cycle::ZERO,
        )
        .unwrap();
        let err = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::first(4),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            OffloadError::Soc(mpsoc_soc::SocError::PartitionOverlap { .. })
        ));
        // The failed submission released its region: a disjoint tenant
        // still fits and the session drains cleanly.
        off.submit_at(
            &kernel,
            &x,
            &y,
            ClusterMask::range(2, 2),
            OffloadStrategy::extended(),
            Cycle::ZERO,
        )
        .unwrap();
        let mut completions = 0;
        while let SessionStep::Completed(_) = off.advance_jobs(Cycle::MAX).unwrap() {
            completions += 1;
        }
        assert_eq!(completions, 2);
    }

    #[test]
    fn region_allocator_is_first_fit_and_reuses_freed_space() {
        let kernel = Daxpy::new(1.0);
        let (x, y) = ramp(64);
        let mut off = offloader(4);
        off.begin_jobs();
        let first = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::single(0),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap();
        assert_eq!(off.regions.len(), 1);
        let (first_start, span) = off.regions[0];
        assert_eq!(first_start, 0);
        let _second = off
            .submit_at(
                &kernel,
                &x,
                &y,
                ClusterMask::single(1),
                OffloadStrategy::extended(),
                Cycle::ZERO,
            )
            .unwrap();
        assert_eq!(
            off.regions[1].0, span,
            "second tenant packs after the first"
        );
        // Drain the first completion, then a third tenant reuses slot 0.
        let done = loop {
            match off.advance_jobs(Cycle::MAX).unwrap() {
                SessionStep::Completed(t) => break t,
                SessionStep::Horizon => continue,
                SessionStep::Idle => panic!("jobs still pending"),
            }
        };
        assert_eq!(done.job, first);
        let at = off.session_now();
        off.submit_at(
            &kernel,
            &x,
            &y,
            ClusterMask::single(2),
            OffloadStrategy::extended(),
            at,
        )
        .unwrap();
        assert_eq!(off.regions[0].0, 0, "freed head region is reused first");
    }

    #[test]
    fn uneven_sizes_still_verify() {
        let mut off = offloader(4);
        let kernel = Daxpy::new(-0.5);
        for n in [1usize, 7, 63, 100, 257, 1000] {
            let (x, y) = ramp(n);
            let run = off
                .offload(&kernel, &x, &y, 4, OffloadStrategy::extended())
                .unwrap();
            assert!(
                run.verify(&kernel, &x, &y).passed(),
                "n={n} failed verification"
            );
        }
    }
}
