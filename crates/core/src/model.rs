//! The analytic offload runtime model (the paper's Eq. 1) and its
//! validation metric (Eq. 2).
//!
//! The paper models an offloaded DAXPY of size `N` on `M` clusters as
//!
//! ```text
//! t̂_offl(M, N) = 367 + N/4 + 2.6·N/(M·8)        (Eq. 1)
//! ```
//!
//! i.e. a constant offload overhead, a serial data-movement term linear
//! in `N`, and a parallel compute term in `N/M`. [`RuntimeModel`]
//! generalizes this to arbitrary coefficients `t̂ = c₀ + c_mem·N +
//! c_comp·N/M`, with [`RuntimeModel::paper`] giving the published
//! constants and [`RuntimeModel::fit`] recovering coefficients from
//! measured samples by ordinary least squares (normal equations, solved
//! by Gaussian elimination with partial pivoting — no external linear
//! algebra).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Anything that predicts an offload runtime from `(M, N)`; lets
/// [`mape`] and the decision helpers work with both the paper's
/// three-term model and the [`ExtendedModel`].
pub trait Predictor {
    /// Predicted runtime in cycles for `m` clusters and `n` elements.
    fn predict(&self, m: u64, n: u64) -> f64;
}

/// One runtime measurement: `(M, N) → cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Clusters employed.
    pub m: u64,
    /// Problem size (elements).
    pub n: u64,
    /// Measured offload runtime in cycles.
    pub cycles: f64,
}

/// The three-term offload runtime model `t̂ = c₀ + c_mem·N + c_comp·N/M`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeModel {
    /// Constant offload overhead (cycles).
    pub c0: f64,
    /// Serial data-movement coefficient (cycles per element).
    pub c_mem: f64,
    /// Parallel compute coefficient (cycles per element per cluster).
    pub c_comp: f64,
}

impl RuntimeModel {
    /// The paper's published Eq. 1 coefficients: `367 + N/4 + 2.6·N/(8M)`.
    pub fn paper() -> Self {
        RuntimeModel {
            c0: 367.0,
            c_mem: 0.25,
            c_comp: 2.6 / 8.0,
        }
    }

    /// Predicted runtime for `m` clusters and `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use mpsoc_offload::RuntimeModel;
    ///
    /// let model = RuntimeModel::paper();
    /// // The paper's Eq. 1 at M=32, N=1024: 367 + 256 + 10.4.
    /// assert!((model.predict(32, 1024) - 633.4).abs() < 1e-9);
    /// ```
    pub fn predict(&self, m: u64, n: u64) -> f64 {
        assert!(m > 0, "cluster count must be positive");
        self.c0 + self.c_mem * n as f64 + self.c_comp * n as f64 / m as f64
    }

    /// Fits the model to measured samples by ordinary least squares.
    ///
    /// Returns the fitted model plus goodness-of-fit diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when fewer than three samples are provided or
    /// the design matrix is singular (e.g. all samples share one `(M, N)`).
    pub fn fit(samples: &[Sample]) -> Result<FitReport, FitError> {
        if samples.len() < 3 {
            return Err(FitError::TooFewSamples { got: samples.len() });
        }
        // Basis functions: phi = [1, N, N/M].
        let mut ata = [[0.0f64; 3]; 3];
        let mut atb = [0.0f64; 3];
        for s in samples {
            let phi = [1.0, s.n as f64, s.n as f64 / s.m as f64];
            for i in 0..3 {
                for j in 0..3 {
                    ata[i][j] += phi[i] * phi[j];
                }
                atb[i] += phi[i] * s.cycles;
            }
        }
        let coeffs = solve_dense::<3>(ata, atb).ok_or(FitError::Singular)?;
        let model = RuntimeModel {
            c0: coeffs[0],
            c_mem: coeffs[1],
            c_comp: coeffs[2],
        };

        // Diagnostics.
        let mean = samples.iter().map(|s| s.cycles).sum::<f64>() / samples.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        let mut max_abs_pct = 0.0f64;
        for s in samples {
            let pred = model.predict(s.m, s.n);
            ss_res += (s.cycles - pred).powi(2);
            ss_tot += (s.cycles - mean).powi(2);
            if s.cycles != 0.0 {
                max_abs_pct = max_abs_pct.max(100.0 * (s.cycles - pred).abs() / s.cycles);
            }
        }
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Ok(FitReport {
            model,
            r_squared,
            max_abs_pct_err: max_abs_pct,
            samples: samples.len(),
        })
    }
}

impl Predictor for RuntimeModel {
    fn predict(&self, m: u64, n: u64) -> f64 {
        RuntimeModel::predict(self, m, n)
    }
}

impl fmt::Display for RuntimeModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t̂(M,N) = {:.1} + {:.4}·N + {:.4}·N/M",
            self.c0, self.c_mem, self.c_comp
        )
    }
}

/// A four-term extension of Eq. 1 with a per-cluster host-side term:
/// `t̂ = c₀ + c_mem·N + c_comp·N/M + c_host·M`.
///
/// The paper's three-term form assumes the host does no per-cluster work
/// after dispatch. Reduce kernels break that assumption: the host
/// combines one partial per worker core, a cost linear in `M`. This
/// extension (not in the paper) restores sub-1% MAPE for the reduction
/// kernels in the `kernel_sweep` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedModel {
    /// Constant offload overhead (cycles).
    pub c0: f64,
    /// Serial data-movement coefficient (cycles per element).
    pub c_mem: f64,
    /// Parallel compute coefficient (cycles per element per cluster).
    pub c_comp: f64,
    /// Per-cluster host-side coefficient (cycles per cluster).
    pub c_host: f64,
}

impl ExtendedModel {
    /// Predicted runtime for `m` clusters and `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn predict(&self, m: u64, n: u64) -> f64 {
        assert!(m > 0, "cluster count must be positive");
        self.c0 + self.c_mem * n as f64 + self.c_comp * n as f64 / m as f64 + self.c_host * m as f64
    }

    /// Fits the four-term model by ordinary least squares.
    ///
    /// # Errors
    ///
    /// [`FitError`] on fewer than four samples or a singular design.
    pub fn fit(samples: &[Sample]) -> Result<ExtendedFitReport, FitError> {
        if samples.len() < 4 {
            return Err(FitError::TooFewSamples { got: samples.len() });
        }
        let mut ata = [[0.0f64; 4]; 4];
        let mut atb = [0.0f64; 4];
        for s in samples {
            let phi = [1.0, s.n as f64, s.n as f64 / s.m as f64, s.m as f64];
            for i in 0..4 {
                for j in 0..4 {
                    ata[i][j] += phi[i] * phi[j];
                }
                atb[i] += phi[i] * s.cycles;
            }
        }
        let coeffs = solve_dense::<4>(ata, atb).ok_or(FitError::Singular)?;
        let model = ExtendedModel {
            c0: coeffs[0],
            c_mem: coeffs[1],
            c_comp: coeffs[2],
            c_host: coeffs[3],
        };
        let mean = samples.iter().map(|s| s.cycles).sum::<f64>() / samples.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for s in samples {
            ss_res += (s.cycles - model.predict(s.m, s.n)).powi(2);
            ss_tot += (s.cycles - mean).powi(2);
        }
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Ok(ExtendedFitReport { model, r_squared })
    }
}

impl Predictor for ExtendedModel {
    fn predict(&self, m: u64, n: u64) -> f64 {
        ExtendedModel::predict(self, m, n)
    }
}

impl fmt::Display for ExtendedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t̂(M,N) = {:.1} + {:.4}·N + {:.4}·N/M + {:.2}·M",
            self.c0, self.c_mem, self.c_comp, self.c_host
        )
    }
}

/// A fitted [`ExtendedModel`] plus its R².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedFitReport {
    /// The fitted coefficients.
    pub model: ExtendedModel,
    /// Coefficient of determination over the fit set.
    pub r_squared: f64,
}

/// Fit failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer than three samples.
    TooFewSamples {
        /// Samples provided.
        got: usize,
    },
    /// The normal equations are singular.
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { got } => {
                write!(
                    f,
                    "need at least 3 samples to fit 3 coefficients, got {got}"
                )
            }
            FitError::Singular => write!(f, "design matrix is singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted model plus goodness-of-fit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The fitted coefficients.
    pub model: RuntimeModel,
    /// Coefficient of determination over the fit set.
    pub r_squared: f64,
    /// Largest absolute percentage error over the fit set.
    pub max_abs_pct_err: f64,
    /// Number of samples used.
    pub samples: usize,
}

/// Solves a D×D linear system by Gaussian elimination with partial
/// pivoting; `None` if singular.
fn solve_dense<const D: usize>(mut a: [[f64; D]; D], mut b: [f64; D]) -> Option<[f64; D]> {
    for col in 0..D {
        // Pivot.
        let pivot = (col..D).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..D {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (cell, &p) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = [0.0; D];
    for col in (0..D).rev() {
        let mut acc = b[col];
        for k in col + 1..D {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// The paper's Eq. 2: mean absolute percentage error of `model` against
/// the measured samples of one problem size, averaged over the tested
/// cluster counts.
///
/// ```text
/// MAPE(N) = 100/|M| · Σ_M |t(M,N) − t̂(M,N)| / t(M,N)
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty or any sample has zero measured cycles.
///
/// # Example
///
/// ```
/// use mpsoc_offload::{mape, RuntimeModel, Sample};
///
/// let model = RuntimeModel::paper();
/// let samples: Vec<Sample> = [1u64, 2, 4].iter().map(|&m| Sample {
///     m,
///     n: 1024,
///     cycles: model.predict(m, 1024),
/// }).collect();
/// assert!(mape(&model, &samples) < 1e-12, "perfect data fits perfectly");
/// ```
pub fn mape<P: Predictor>(model: &P, samples: &[Sample]) -> f64 {
    assert!(!samples.is_empty(), "MAPE of an empty sample set");
    let total: f64 = samples
        .iter()
        .map(|s| {
            assert!(s.cycles > 0.0, "measured runtime must be positive");
            (s.cycles - model.predict(s.m, s.n)).abs() / s.cycles
        })
        .sum();
    100.0 * total / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients() {
        let m = RuntimeModel::paper();
        assert_eq!(m.c0, 367.0);
        assert_eq!(m.c_mem, 0.25);
        assert!((m.c_comp - 0.325).abs() < 1e-12);
        // Eq. 1 spot checks.
        assert!((m.predict(1, 256) - (367.0 + 64.0 + 83.2)).abs() < 1e-9);
        assert!((m.predict(16, 512) - (367.0 + 128.0 + 10.4)).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_synthetic_coefficients_exactly() {
        let truth = RuntimeModel {
            c0: 412.0,
            c_mem: 0.21,
            c_comp: 0.4,
        };
        let mut samples = Vec::new();
        for &n in &[256u64, 512, 1024, 2048] {
            for &m in &[1u64, 2, 4, 8, 16, 32] {
                samples.push(Sample {
                    m,
                    n,
                    cycles: truth.predict(m, n),
                });
            }
        }
        let report = RuntimeModel::fit(&samples).unwrap();
        assert!((report.model.c0 - truth.c0).abs() < 1e-6);
        assert!((report.model.c_mem - truth.c_mem).abs() < 1e-9);
        assert!((report.model.c_comp - truth.c_comp).abs() < 1e-9);
        assert!(report.r_squared > 0.999_999);
        assert!(report.max_abs_pct_err < 1e-6);
    }

    #[test]
    fn fit_tolerates_noise() {
        let truth = RuntimeModel::paper();
        let mut rng = mpsoc_sim::rng::SplitMix64::new(7);
        let mut samples = Vec::new();
        for &n in &[256u64, 512, 768, 1024] {
            for &m in &[1u64, 2, 4, 8, 16, 32] {
                let noise = 1.0 + 0.01 * (rng.next_f64() - 0.5);
                samples.push(Sample {
                    m,
                    n,
                    cycles: truth.predict(m, n) * noise,
                });
            }
        }
        let report = RuntimeModel::fit(&samples).unwrap();
        assert!((report.model.c0 - truth.c0).abs() < 20.0);
        assert!((report.model.c_mem - truth.c_mem).abs() < 0.02);
        assert!(report.r_squared > 0.99);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert_eq!(
            RuntimeModel::fit(&[]).unwrap_err(),
            FitError::TooFewSamples { got: 0 }
        );
        let same = Sample {
            m: 4,
            n: 1024,
            cycles: 100.0,
        };
        assert_eq!(
            RuntimeModel::fit(&[same; 5]).unwrap_err(),
            FitError::Singular
        );
    }

    #[test]
    fn mape_matches_hand_computation() {
        let model = RuntimeModel {
            c0: 0.0,
            c_mem: 0.0,
            c_comp: 1.0,
        };
        // predictions: n/m = 10, 5; measurements 8, 5.
        let samples = [
            Sample {
                m: 1,
                n: 10,
                cycles: 8.0,
            },
            Sample {
                m: 2,
                n: 10,
                cycles: 5.0,
            },
        ];
        // errors: |8-10|/8 = 0.25, |5-5|/5 = 0 -> mean 0.125 -> 12.5%.
        assert!((mape(&model, &samples) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn solver_handles_permuted_systems() {
        // x = [1, 2, 3] with rows needing pivoting.
        let a = [[0.0, 1.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 4.0]];
        let b = [2.0, 2.0, 12.0];
        let x = solve_dense::<3>(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn extended_model_recovers_m_term() {
        let truth = ExtendedModel {
            c0: 400.0,
            c_mem: 0.25,
            c_comp: 0.5,
            c_host: 24.0,
        };
        let mut samples = Vec::new();
        for &n in &[256u64, 512, 1024, 2048] {
            for &m in &[1u64, 2, 4, 8, 16, 32] {
                samples.push(Sample {
                    m,
                    n,
                    cycles: truth.predict(m, n),
                });
            }
        }
        let report = ExtendedModel::fit(&samples).unwrap();
        assert!((report.model.c_host - 24.0).abs() < 1e-6);
        assert!((report.model.c0 - 400.0).abs() < 1e-5);
        assert!(report.r_squared > 0.999_999);
        // A plain 3-term fit of the same data misses badly on the M term.
        let flat = RuntimeModel::fit(&samples).unwrap();
        assert!(mape(&flat.model, &samples) > mape(&report.model, &samples));
        // Display mentions the M term.
        assert!(report.model.to_string().contains("·M"));
    }

    #[test]
    fn extended_fit_rejects_too_few() {
        let s = Sample {
            m: 1,
            n: 10,
            cycles: 1.0,
        };
        assert_eq!(
            ExtendedModel::fit(&[s; 3]).unwrap_err(),
            FitError::TooFewSamples { got: 3 }
        );
    }

    #[test]
    fn display_shows_coefficients() {
        let s = RuntimeModel::paper().to_string();
        assert!(s.contains("367.0"));
        assert!(s.contains("N/M"));
    }

    #[test]
    #[should_panic(expected = "cluster count must be positive")]
    fn predict_zero_clusters_panics() {
        RuntimeModel::paper().predict(0, 10);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn mape_empty_panics() {
        mape(&RuntimeModel::paper(), &[]);
    }
}
