//! Memory-layout planning for offloaded jobs.

use mpsoc_kernels::partition::JobPartition;
use mpsoc_kernels::{CoreSlice, Kernel};
use mpsoc_mem::{Addr, MemoryMap, WORD_BYTES};

use crate::OffloadError;

/// Word offset of the job descriptor from the main-memory base.
const DESC_WORD: u64 = 0;
/// Word offset of the software-barrier counter.
const BARRIER_WORD: u64 = 16;
/// Word offset of a reserved always-zero word (halo zero-fill source).
const ZERO_WORD: u64 = 24;
/// Word offset of the reduction-partials area.
const PARTIALS_WORD: u64 = 32;
/// Word offset of the operand vectors (x, then y).
const DATA_WORD: u64 = 1024;

/// Main-memory placement of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MainLayout {
    pub desc: Addr,
    pub barrier: Addr,
    pub zero: Addr,
    pub partials: Addr,
    pub x: Addr,
    pub y: Addr,
}

impl MainLayout {
    /// Plans the placement of a job with `x_words` of `x` operand,
    /// `n` output elements and `partial_slots` reduction partials.
    pub fn plan(
        map: &MemoryMap,
        x_words: u64,
        n: u64,
        partial_slots: u64,
    ) -> Result<Self, OffloadError> {
        Self::plan_at(map, 0, x_words, n, partial_slots)
    }

    /// Words a job's main-memory region spans (control block + operands):
    /// the allocation unit of the concurrent-session region allocator.
    pub fn region_words(x_words: u64, n: u64) -> u64 {
        DATA_WORD + x_words + n
    }

    /// Plans the same placement as [`MainLayout::plan`] but shifted
    /// `region_word` words into main memory, so concurrent tenants get
    /// fully disjoint control blocks (descriptor, barrier counter, zero
    /// word, reduction partials) and operand vectors. `plan` is exactly
    /// `plan_at` with `region_word == 0`.
    pub fn plan_at(
        map: &MemoryMap,
        region_word: u64,
        x_words: u64,
        n: u64,
        partial_slots: u64,
    ) -> Result<Self, OffloadError> {
        let required = region_word + Self::region_words(x_words, n);
        if required > map.main_words() || PARTIALS_WORD + partial_slots > DATA_WORD {
            return Err(OffloadError::MainMemoryOverflow {
                required,
                capacity: map.main_words(),
            });
        }
        let base = map.main_base().add_words(region_word);
        Ok(MainLayout {
            desc: base.add_words(DESC_WORD),
            barrier: base.add_words(BARRIER_WORD),
            zero: base.add_words(ZERO_WORD),
            partials: base.add_words(PARTIALS_WORD),
            x: base.add_words(DATA_WORD),
            y: base.add_words(DATA_WORD + x_words),
        })
    }
}

/// TCDM placement of one cluster's slice of the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TcdmLayout {
    /// Local word of the x slice (present iff the kernel streams x).
    pub x_word: u64,
    /// Local word of the y slice (always present for map kernels — it is
    /// the output buffer — and absent for reductions that ignore y).
    pub y_word: u64,
    /// Local word of the per-core reduction partials (reduce kernels).
    pub out_word: u64,
    /// Local word of the scalar-argument area.
    pub args_word: u64,
    /// Total words used.
    pub used_words: u64,
}

impl TcdmLayout {
    /// Plans a cluster-local layout for `elems` elements of `kernel` run
    /// by `cores` worker cores.
    pub fn plan(
        kernel: &dyn Kernel,
        elems: u64,
        cores: u64,
        capacity: u64,
    ) -> Result<Self, OffloadError> {
        let uses_x = kernel.uses_x();
        let needs_y_buffer = match kernel.kind() {
            mpsoc_kernels::KernelKind::Map => true,
            mpsoc_kernels::KernelKind::Reduce => kernel.uses_y(),
        };
        let x_words = if uses_x {
            elems * kernel.x_words_per_elem() + 2 * kernel.x_halo()
        } else {
            0
        };
        let y_words = if needs_y_buffer { elems } else { 0 };
        let out_words = match kernel.kind() {
            mpsoc_kernels::KernelKind::Map => 0,
            mpsoc_kernels::KernelKind::Reduce => cores,
        };
        let args_words = kernel.scalar_args().len() as u64 + 1; // + zero word
        let x_word = 0;
        let y_word = x_words;
        let out_word = x_words + y_words;
        let args_word = out_word + out_words;
        let used_words = args_word + args_words;
        if used_words > capacity {
            return Err(OffloadError::TcdmOverflow {
                required: used_words,
                capacity,
            });
        }
        Ok(TcdmLayout {
            x_word,
            y_word,
            out_word,
            args_word,
            used_words,
        })
    }

    /// Builds the [`CoreSlice`] for worker `core` of a cluster whose
    /// chunk starts at absolute element `cluster_start`, given the
    /// absolute per-core chunk.
    pub fn core_slice(
        &self,
        kernel: &dyn Kernel,
        cluster_start: u64,
        core: usize,
        chunk: mpsoc_kernels::partition::Chunk,
    ) -> CoreSlice {
        let rel = chunk.start - cluster_start;
        let out_base = match kernel.kind() {
            mpsoc_kernels::KernelKind::Map => (self.y_word + rel) * WORD_BYTES,
            mpsoc_kernels::KernelKind::Reduce => (self.out_word + core as u64) * WORD_BYTES,
        };
        CoreSlice {
            elems: chunk.count,
            x_base: (self.x_word + kernel.x_halo() + rel * kernel.x_words_per_elem()) * WORD_BYTES,
            y_base: (self.y_word + rel) * WORD_BYTES,
            out_base,
            args_base: self.args_word * WORD_BYTES,
            core_index: core,
        }
    }
}

/// The per-cluster geometry shared by job building: partition plus TCDM
/// plan for each selected cluster.
pub(crate) struct JobGeometry {
    pub partition: JobPartition,
    pub tcdm: Vec<TcdmLayout>,
}

impl JobGeometry {
    pub fn plan(
        kernel: &dyn Kernel,
        n: u64,
        clusters: usize,
        cores: usize,
        tcdm_capacity: u64,
    ) -> Result<Self, OffloadError> {
        let partition = JobPartition::new(n, clusters, cores);
        let tcdm = partition
            .clusters()
            .iter()
            .map(|chunk| TcdmLayout::plan(kernel, chunk.count, cores as u64, tcdm_capacity))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobGeometry { partition, tcdm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernels::{Daxpy, Dot};

    #[test]
    fn main_layout_places_disjoint_regions() {
        let map = MemoryMap::new(4, 1 << 20);
        let l = MainLayout::plan(&map, 1024, 1024, 32).unwrap();
        assert!(l.desc < l.barrier);
        assert!(l.barrier < l.partials);
        assert!(l.partials < l.x);
        assert_eq!(l.y, l.x.add_words(1024));
    }

    #[test]
    fn plan_at_zero_matches_plan_and_offsets_shift_everything() {
        let map = MemoryMap::new(4, 1 << 20);
        let a = MainLayout::plan(&map, 256, 256, 8).unwrap();
        let b = MainLayout::plan_at(&map, 0, 256, 256, 8).unwrap();
        assert_eq!(a, b);
        let span = MainLayout::region_words(256, 256);
        let c = MainLayout::plan_at(&map, span, 256, 256, 8).unwrap();
        assert_eq!(c.desc, a.desc.add_words(span));
        assert_eq!(c.barrier, a.barrier.add_words(span));
        assert_eq!(c.y, a.y.add_words(span));
        assert!(matches!(
            MainLayout::plan_at(&map, (1 << 20) - 10, 256, 256, 8),
            Err(OffloadError::MainMemoryOverflow { .. })
        ));
    }

    #[test]
    fn main_layout_rejects_oversized_jobs() {
        let map = MemoryMap::new(4, 2048);
        assert!(matches!(
            MainLayout::plan(&map, 4096, 4096, 8),
            Err(OffloadError::MainMemoryOverflow { .. })
        ));
    }

    #[test]
    fn tcdm_layout_daxpy() {
        let k = Daxpy::new(2.0);
        let l = TcdmLayout::plan(&k, 128, 8, 1 << 15).unwrap();
        assert_eq!(l.x_word, 0);
        assert_eq!(l.y_word, 128);
        assert_eq!(l.args_word, 256);
        assert_eq!(l.used_words, 258); // a + zero word

        let slice = l.core_slice(
            &k,
            1000,
            2,
            mpsoc_kernels::partition::Chunk {
                start: 1032,
                count: 16,
            },
        );
        assert_eq!(slice.elems, 16);
        assert_eq!(slice.x_base, 32 * 8);
        assert_eq!(slice.y_base, (128 + 32) * 8);
        assert_eq!(slice.out_base, slice.y_base);
        assert_eq!(slice.args_base, 256 * 8);
    }

    #[test]
    fn tcdm_layout_reduce_has_partial_slots() {
        let k = Dot::new();
        let l = TcdmLayout::plan(&k, 64, 8, 1 << 15).unwrap();
        // x 64 + y 64 + 8 partials + 1 zero word (no scalars).
        assert_eq!(l.out_word, 128);
        assert_eq!(l.args_word, 136);
        assert_eq!(l.used_words, 137);
        let slice = l.core_slice(
            &k,
            0,
            3,
            mpsoc_kernels::partition::Chunk { start: 8, count: 8 },
        );
        assert_eq!(slice.out_base, (128 + 3) * 8);
    }

    #[test]
    fn tcdm_overflow_detected() {
        let k = Daxpy::new(1.0);
        assert!(matches!(
            TcdmLayout::plan(&k, 10_000, 8, 1024),
            Err(OffloadError::TcdmOverflow { .. })
        ));
    }

    #[test]
    fn geometry_plans_every_cluster() {
        let k = Daxpy::new(1.0);
        let g = JobGeometry::plan(&k, 1000, 3, 8, 1 << 15).unwrap();
        assert_eq!(g.tcdm.len(), 3);
        assert_eq!(g.partition.clusters().len(), 3);
    }
}
