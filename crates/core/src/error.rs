//! Offload-runtime errors.

use std::error::Error;
use std::fmt;

use mpsoc_isa::BuildError;
use mpsoc_soc::SocError;

/// An error raised by the offload runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum OffloadError {
    /// The underlying SoC failed.
    Soc(SocError),
    /// Kernel code generation failed.
    Codegen(BuildError),
    /// The requested cluster count exceeds the SoC.
    TooManyClusters {
        /// Requested clusters.
        requested: usize,
        /// Clusters available.
        available: usize,
    },
    /// The job does not fit in a cluster's TCDM.
    TcdmOverflow {
        /// Words required by the largest per-cluster slice.
        required: u64,
        /// TCDM capacity in words.
        capacity: u64,
    },
    /// Operand vectors have inconsistent lengths.
    OperandMismatch {
        /// Length of `x`.
        x_len: usize,
        /// Length of `y`.
        y_len: usize,
    },
    /// The job does not fit in main memory.
    MainMemoryOverflow {
        /// Words required.
        required: u64,
        /// Capacity in words.
        capacity: u64,
    },
    /// Zero clusters were requested.
    NoClusters,
    /// Pipelined offload requested for a kernel kind that does not
    /// support it (reductions accumulate across the whole slice).
    PipelineUnsupported {
        /// Kernel name.
        kernel: String,
    },
    /// Self-healing offload exhausted its retry budget without a
    /// verified-correct completion.
    RetriesExhausted {
        /// Attempts made (initial dispatch plus retries).
        attempts: u32,
    },
    /// After quarantine the surviving machine cannot run the job: no
    /// healthy clusters remain, or the Eq. 3 deadline check says the
    /// degraded cluster count is infeasible (and host fallback is off).
    DegradedInfeasible {
        /// Healthy clusters remaining.
        available: usize,
    },
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::Soc(e) => write!(f, "soc error: {e}"),
            OffloadError::Codegen(e) => write!(f, "kernel codegen failed: {e}"),
            OffloadError::TooManyClusters {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} clusters but the SoC has {available}"
            ),
            OffloadError::TcdmOverflow { required, capacity } => write!(
                f,
                "per-cluster slice needs {required} TCDM words, capacity is {capacity}"
            ),
            OffloadError::OperandMismatch { x_len, y_len } => {
                write!(f, "operand length mismatch: x has {x_len}, y has {y_len}")
            }
            OffloadError::MainMemoryOverflow { required, capacity } => write!(
                f,
                "job needs {required} main-memory words, capacity is {capacity}"
            ),
            OffloadError::NoClusters => write!(f, "at least one cluster must be selected"),
            OffloadError::PipelineUnsupported { kernel } => {
                write!(f, "kernel '{kernel}' does not support pipelined offload")
            }
            OffloadError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "no verified-correct completion after {attempts} attempts"
                )
            }
            OffloadError::DegradedInfeasible { available } => write!(
                f,
                "job is infeasible on the degraded machine ({available} healthy clusters)"
            ),
        }
    }
}

impl Error for OffloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OffloadError::Soc(e) => Some(e),
            OffloadError::Codegen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for OffloadError {
    fn from(e: SocError) -> Self {
        OffloadError::Soc(e)
    }
}

impl From<BuildError> for OffloadError {
    fn from(e: BuildError) -> Self {
        OffloadError::Codegen(e)
    }
}

impl From<mpsoc_mem::MemoryError> for OffloadError {
    fn from(e: mpsoc_mem::MemoryError) -> Self {
        OffloadError::Soc(SocError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = OffloadError::TooManyClusters {
            requested: 40,
            available: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        assert!(OffloadError::NoClusters
            .to_string()
            .contains("at least one"));
        let e = OffloadError::OperandMismatch { x_len: 1, y_len: 2 };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn sources_propagate() {
        let e = OffloadError::from(BuildError::Empty);
        assert!(e.source().is_some());
        let e = OffloadError::NoClusters;
        assert!(e.source().is_none());
    }
}
