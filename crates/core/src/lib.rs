//! # mpsoc-offload
//!
//! The primary contribution of *"Optimizing Offload Performance in
//! Heterogeneous MPSoCs"* (Colagrande & Benini, DATE 2024), reproduced in
//! Rust on a from-scratch cycle-accurate MPSoC simulator:
//!
//! 1. **Co-designed offload runtime** ([`Offloader`]): job descriptors,
//!    dispatch strategies (sequential unicast vs the **multicast**
//!    hardware extension) and completion-synchronization strategies
//!    (software polling barrier vs the **credit-counter unit** with its
//!    interrupt). The [`OffloadStrategy::baseline`] /
//!    [`OffloadStrategy::extended`] presets are the two configurations
//!    Fig. 1 compares.
//! 2. **Analytic runtime model** ([`RuntimeModel`], the paper's Eq. 1):
//!    `t̂(M, N) = c₀ + c_mem·N + c_comp·N/M`, with the paper's constants
//!    (367, 1/4, 2.6/8) available as [`RuntimeModel::paper`] and a
//!    least-squares [`RuntimeModel::fit`] over measured samples.
//!    [`model::mape`] implements the Eq. 2 validation metric.
//! 3. **Offload decision solver** ([`decision`], the paper's Eq. 3):
//!    the minimum number of clusters meeting a deadline, the maximum
//!    problem size under a deadline, and an energy-aware variant.
//!
//! # Quickstart
//!
//! ```
//! use mpsoc_offload::{Offloader, OffloadStrategy, RuntimeModel};
//! use mpsoc_kernels::Daxpy;
//! use mpsoc_soc::SocConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut offloader = Offloader::new(SocConfig::with_clusters(8))?;
//!
//! // A 1024-element DAXPY offloaded to 8 clusters, both configurations.
//! let n = 1024;
//! let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let y: Vec<f64> = vec![1.0; n];
//!
//! let base = offloader.offload(&Daxpy::new(2.0), &x, &y, 8, OffloadStrategy::baseline())?;
//! let ext = offloader.offload(&Daxpy::new(2.0), &x, &y, 8, OffloadStrategy::extended())?;
//! assert!(ext.outcome.total < base.outcome.total, "the co-design must win");
//! assert!(ext.verify(&Daxpy::new(2.0), &x, &y).passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
mod error;
mod layout;
pub mod model;
mod recovery;
mod runtime;
mod strategy;
mod verify;

pub use error::OffloadError;
pub use model::{mape, ExtendedModel, FitReport, Predictor, RuntimeModel, Sample};
pub use mpsoc_noc::ClusterMask;
pub use mpsoc_soc::{ContentionReport, JobId};
pub use recovery::{
    AttemptOutcome, AttemptRecord, RecoveredResult, RecoveryPolicy, ResilientReport,
};
pub use runtime::{OffloadResult, OffloadRun, Offloader, RuntimeCosts, SessionStep, TenantRun};
pub use strategy::{DispatchStrategy, OffloadStrategy, SyncStrategy};
pub use verify::VerifyReport;
