//! The offload decision problem (the paper's Eq. 3 and extensions).
//!
//! With an accurate runtime model, "how should I offload?" becomes an
//! optimization problem. The paper derives the minimum number of clusters
//! satisfying a deadline by inverting Eq. 1:
//!
//! ```text
//! M_min = ceil( 2.6·N / (8·(t_max − 367 − N/4)) )        (Eq. 3)
//! ```
//!
//! [`min_clusters`] implements that inversion for any [`RuntimeModel`];
//! [`max_problem_size`] inverts the model in `N` instead; and
//! [`decide`] wraps the former into a feasibility verdict against a
//! concrete machine size.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::RuntimeModel;

/// Outcome of an offload decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Offload to this many clusters (the minimum meeting the deadline).
    Offload {
        /// The chosen cluster count.
        m: u64,
    },
    /// No cluster count can meet the deadline: the serial fraction
    /// (constant overhead + data movement) alone exceeds it.
    Infeasible,
    /// The deadline is met only with more clusters than the machine has.
    NotEnoughClusters {
        /// The minimum required.
        required: u64,
    },
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Offload { m } => write!(f, "offload to {m} clusters"),
            Decision::Infeasible => write!(f, "infeasible: serial fraction exceeds the deadline"),
            Decision::NotEnoughClusters { required } => {
                write!(f, "needs {required} clusters, more than available")
            }
        }
    }
}

/// The minimum number of clusters for which the model predicts
/// `t̂(M, N) ≤ t_max` — the paper's Eq. 3. `None` when no finite `M`
/// suffices (the deadline is below the serial fraction `c₀ + c_mem·N`).
///
/// # Example
///
/// ```
/// use mpsoc_offload::{decision::min_clusters, RuntimeModel};
///
/// let model = RuntimeModel::paper();
/// // Eq. 3 for N=1024, t_max=650: ceil(2.6·1024 / (8·(650−367−256))).
/// assert_eq!(min_clusters(&model, 1024, 650.0), Some(13));
/// // An impossible deadline:
/// assert_eq!(min_clusters(&model, 1024, 600.0), None);
/// ```
pub fn min_clusters(model: &RuntimeModel, n: u64, t_max: f64) -> Option<u64> {
    let serial = model.c0 + model.c_mem * n as f64;
    let slack = t_max - serial;
    let parallel_work = model.c_comp * n as f64;
    if parallel_work <= 0.0 {
        // Nothing to parallelize: feasible with one cluster iff the
        // serial fraction fits.
        return (slack >= 0.0).then_some(1);
    }
    if slack <= 0.0 {
        return None;
    }
    let m = (parallel_work / slack).ceil().max(1.0);
    // Guard against pathological coefficients overflowing u64.
    if m > u64::MAX as f64 {
        return None;
    }
    Some(m as u64)
}

/// The largest problem size `N` for which the model predicts
/// `t̂(M, N) ≤ t_max` on `m` clusters; `None` when even `N = 0` misses
/// the deadline (i.e. `t_max < c₀`).
///
/// # Panics
///
/// Panics if `m` is zero.
///
/// # Example
///
/// ```
/// use mpsoc_offload::{decision::max_problem_size, RuntimeModel};
///
/// let model = RuntimeModel::paper();
/// let n = max_problem_size(&model, 32, 1000.0).unwrap();
/// assert!(model.predict(32, n) <= 1000.0);
/// assert!(model.predict(32, n + 1) > 1000.0);
/// ```
pub fn max_problem_size(model: &RuntimeModel, m: u64, t_max: f64) -> Option<u64> {
    assert!(m > 0, "cluster count must be positive");
    let slack = t_max - model.c0;
    if slack < 0.0 {
        return None;
    }
    let per_elem = model.c_mem + model.c_comp / m as f64;
    if per_elem <= 0.0 {
        return Some(u64::MAX);
    }
    Some((slack / per_elem).floor() as u64)
}

/// Solves the offload decision for a concrete machine: offload `n`
/// elements within `t_max` cycles on a SoC with `available` clusters.
///
/// # Example
///
/// ```
/// use mpsoc_offload::{decision::{decide, Decision}, RuntimeModel};
///
/// let model = RuntimeModel::paper();
/// assert_eq!(decide(&model, 1024, 650.0, 32), Decision::Offload { m: 13 });
/// assert_eq!(decide(&model, 1024, 640.0, 8),
///            Decision::NotEnoughClusters { required: 20 });
/// assert_eq!(decide(&model, 1024, 100.0, 32), Decision::Infeasible);
/// ```
pub fn decide(model: &RuntimeModel, n: u64, t_max: f64, available: u64) -> Decision {
    match min_clusters(model, n, t_max) {
        None => Decision::Infeasible,
        Some(required) if required > available => Decision::NotEnoughClusters { required },
        Some(m) => Decision::Offload { m },
    }
}

/// The energy-minimizing cluster count under a deadline, given that the
/// energy of an offload grows with the number of active clusters (idle
/// power and synchronization traffic) while the runtime shrinks.
///
/// With energy `E(M) ≈ e_active·M·t̂(M,N) + e_base·t̂(M,N)`, the minimum
/// over the feasible range is found by evaluating the model — the range
/// is tiny (`M ≤ 64`), so exhaustive evaluation is both exact and cheap.
/// Returns `(m, predicted_energy)`, or `None` when no `m` in
/// `1..=available` meets the deadline.
///
/// # Example
///
/// ```
/// use mpsoc_offload::{decision::min_energy_clusters, RuntimeModel};
///
/// let model = RuntimeModel::paper();
/// let (m, _) = min_energy_clusters(&model, 1024, 1000.0, 32, 1.0, 8.0).unwrap();
/// // The energy optimum uses as few clusters as the deadline allows.
/// assert!(model.predict(m, 1024) <= 1000.0);
/// ```
pub fn min_energy_clusters(
    model: &RuntimeModel,
    n: u64,
    t_max: f64,
    available: u64,
    e_active_per_cluster_cycle: f64,
    e_base_per_cycle: f64,
) -> Option<(u64, f64)> {
    let mut best: Option<(u64, f64)> = None;
    for m in 1..=available {
        let t = model.predict(m, n);
        if t > t_max {
            continue;
        }
        let energy = t * (e_base_per_cycle + e_active_per_cluster_cycle * m as f64);
        match best {
            Some((_, e)) if e <= energy => {}
            _ => best = Some((m, energy)),
        }
    }
    best
}

/// An analytic model of executing the kernel on the host core itself
/// (no offload): `t_host(N) = c₀ + c_elem·N`.
///
/// The paper's introduction frames the offload decision as *"determining
/// if a portion of the workload can benefit or not from offloading"* —
/// which requires a host-side cost to compare against. A CVA6-class
/// in-order core runs a scalar DAXPY at roughly 3.5 cycles/element
/// (two loads, one FMA, one store, loop overhead; single-issue FPU).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// Fixed loop setup cost (cycles).
    pub c0: f64,
    /// Cycles per element on the host.
    pub c_elem: f64,
}

impl HostModel {
    /// A CVA6-class scalar DAXPY cost model.
    pub fn cva6_daxpy() -> Self {
        HostModel {
            c0: 40.0,
            c_elem: 3.5,
        }
    }

    /// Predicted host-execution time for `n` elements.
    pub fn predict(&self, n: u64) -> f64 {
        self.c0 + self.c_elem * n as f64
    }
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel::cva6_daxpy()
    }
}

/// `true` when offloading `n` elements to `m` clusters beats executing
/// on the host.
///
/// # Example
///
/// ```
/// use mpsoc_offload::decision::{should_offload, HostModel};
/// use mpsoc_offload::RuntimeModel;
///
/// let host = HostModel::cva6_daxpy();
/// let accel = RuntimeModel::paper();
/// // Tiny jobs stay on the host (the 367-cycle overhead dominates)...
/// assert!(!should_offload(&host, &accel, 64, 32));
/// // ...large jobs offload.
/// assert!(should_offload(&host, &accel, 1024, 32));
/// ```
pub fn should_offload(host: &HostModel, accel: &RuntimeModel, n: u64, m: u64) -> bool {
    accel.predict(m, n) < host.predict(n)
}

/// The break-even problem size on `m` clusters: the smallest `N` at
/// which offloading beats host execution, `None` if offloading never
/// wins (the accelerator's per-element cost is not better than the
/// host's).
///
/// # Example
///
/// ```
/// use mpsoc_offload::decision::{break_even_n, should_offload, HostModel};
/// use mpsoc_offload::RuntimeModel;
///
/// let host = HostModel::cva6_daxpy();
/// let accel = RuntimeModel::paper();
/// let n_star = break_even_n(&host, &accel, 32).unwrap();
/// assert!(!should_offload(&host, &accel, n_star - 1, 32));
/// assert!(should_offload(&host, &accel, n_star, 32));
/// ```
pub fn break_even_n(host: &HostModel, accel: &RuntimeModel, m: u64) -> Option<u64> {
    assert!(m > 0, "cluster count must be positive");
    let accel_slope = accel.c_mem + accel.c_comp / m as f64;
    let offset = accel.c0 - host.c0;
    if accel_slope >= host.c_elem {
        // The accelerator is never catching up per element; it only wins
        // if it is already ahead at N = 0 (i.e. lower constant), in
        // which case it wins everywhere.
        return (offset < 0.0).then_some(0);
    }
    if offset <= 0.0 {
        return Some(0);
    }
    // First integer N with accel(N) < host(N).
    let crossover = offset / (host.c_elem - accel_slope);
    Some(crossover.floor() as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> RuntimeModel {
        RuntimeModel::paper()
    }

    #[test]
    fn eq3_closed_form_matches_paper_formula() {
        let model = paper();
        for &n in &[256u64, 512, 768, 1024] {
            for &t_max in &[500.0f64, 650.0, 700.0, 900.0, 1200.0] {
                let got = min_clusters(&model, n, t_max);
                // Paper's closed form.
                let denom = 8.0 * (t_max - 367.0 - n as f64 / 4.0);
                let want = if denom > 0.0 {
                    Some(((2.6 * n as f64) / denom).ceil().max(1.0) as u64)
                } else {
                    None
                };
                assert_eq!(got, want, "n={n} t_max={t_max}");
            }
        }
    }

    #[test]
    fn min_clusters_is_minimal_and_feasible() {
        let model = paper();
        for &n in &[256u64, 1024, 4096] {
            for &t_max in &[700.0f64, 800.0, 1500.0] {
                if let Some(m) = min_clusters(&model, n, t_max) {
                    assert!(
                        model.predict(m, n) <= t_max + 1e-9,
                        "M_min must meet the deadline"
                    );
                    if m > 1 {
                        assert!(
                            model.predict(m - 1, n) > t_max,
                            "M_min - 1 must miss the deadline"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_deadlines() {
        let model = paper();
        // Below the constant overhead.
        assert_eq!(min_clusters(&model, 1024, 300.0), None);
        // Exactly the serial fraction: still infeasible (slack must be
        // strictly positive for a finite M).
        assert_eq!(min_clusters(&model, 1024, 367.0 + 256.0), None);
    }

    #[test]
    fn generous_deadline_needs_one_cluster() {
        let model = paper();
        assert_eq!(min_clusters(&model, 256, 1e9), Some(1));
    }

    #[test]
    fn zero_compute_model() {
        let model = RuntimeModel {
            c0: 100.0,
            c_mem: 1.0,
            c_comp: 0.0,
        };
        assert_eq!(min_clusters(&model, 10, 200.0), Some(1));
        assert_eq!(min_clusters(&model, 10, 50.0), None);
    }

    #[test]
    fn max_problem_size_inverts_predict() {
        let model = paper();
        for &m in &[1u64, 4, 32] {
            for &t_max in &[500.0f64, 1000.0, 5000.0] {
                if let Some(n) = max_problem_size(&model, m, t_max) {
                    assert!(model.predict(m, n) <= t_max + 1e-9);
                    assert!(model.predict(m, n + 1) > t_max);
                }
            }
        }
        assert_eq!(max_problem_size(&model, 32, 100.0), None);
    }

    #[test]
    fn decide_covers_all_verdicts() {
        let model = paper();
        assert!(matches!(
            decide(&model, 1024, 2000.0, 32),
            Decision::Offload { m: 1 }
        ));
        assert!(matches!(
            decide(&model, 1024, 100.0, 32),
            Decision::Infeasible
        ));
        match decide(&model, 1024, 640.0, 8) {
            Decision::NotEnoughClusters { required } => assert!(required > 8),
            other => panic!("expected NotEnoughClusters, got {other}"),
        }
    }

    #[test]
    fn energy_optimum_prefers_fewer_clusters() {
        let model = paper();
        // Loose deadline: M=1 is feasible and minimizes active energy.
        let (m, _) = min_energy_clusters(&model, 1024, 1e6, 32, 1.0, 0.0).unwrap();
        assert_eq!(m, 1);
        // Tight deadline forces more clusters.
        let (m, _) = min_energy_clusters(&model, 1024, 650.0, 32, 1.0, 0.0).unwrap();
        assert_eq!(m, 13);
        // Impossible deadline.
        assert_eq!(min_energy_clusters(&model, 1024, 100.0, 32, 1.0, 0.0), None);
    }

    #[test]
    fn break_even_is_tight_for_every_cluster_count() {
        let host = HostModel::cva6_daxpy();
        let accel = paper();
        for m in [1u64, 2, 4, 8, 16, 32] {
            let n_star = break_even_n(&host, &accel, m).expect("accelerator wins eventually");
            assert!(n_star > 0, "the 367-cycle overhead must matter");
            assert!(
                !should_offload(&host, &accel, n_star - 1, m),
                "host must win just below break-even at m={m}"
            );
            assert!(
                should_offload(&host, &accel, n_star, m),
                "offload must win at break-even at m={m}"
            );
        }
    }

    #[test]
    fn break_even_decreases_with_more_clusters() {
        let host = HostModel::cva6_daxpy();
        let accel = paper();
        let n1 = break_even_n(&host, &accel, 1).unwrap();
        let n32 = break_even_n(&host, &accel, 32).unwrap();
        assert!(
            n32 < n1,
            "more clusters should amortize the overhead sooner"
        );
    }

    #[test]
    fn slow_accelerator_never_breaks_even() {
        let host = HostModel {
            c0: 0.0,
            c_elem: 1.0,
        };
        let accel = RuntimeModel {
            c0: 100.0,
            c_mem: 2.0,
            c_comp: 0.1,
        };
        assert_eq!(break_even_n(&host, &accel, 32), None);
    }

    #[test]
    fn free_accelerator_always_wins() {
        let host = HostModel {
            c0: 100.0,
            c_elem: 4.0,
        };
        let accel = RuntimeModel {
            c0: 10.0,
            c_mem: 0.1,
            c_comp: 0.1,
        };
        assert_eq!(break_even_n(&host, &accel, 1), Some(0));
    }

    #[test]
    fn host_model_accessors() {
        let h = HostModel::default();
        assert_eq!(h.predict(0), 40.0);
        assert_eq!(h.predict(100), 40.0 + 350.0);
    }

    #[test]
    fn decision_display() {
        assert!(Decision::Offload { m: 4 }.to_string().contains("4"));
        assert!(Decision::Infeasible.to_string().contains("infeasible"));
        assert!(Decision::NotEnoughClusters { required: 40 }
            .to_string()
            .contains("40"));
    }
}
