//! # mpsoc-faults
//!
//! Deterministic, seeded fault injection for the MPSoC simulator.
//!
//! A production MPSoC serving millions of offloads cannot assume every
//! dispatch beat, DMA burst and credit increment lands. This crate
//! defines *where* faults can strike (the [`FaultKind`] injection
//! points, each wired into a specific hardware model in `mpsoc-noc`,
//! `mpsoc-mem` and `mpsoc-soc`) and *when* they strike (a [`FaultPlan`]
//! of per-site rates and forced occurrences, drawn from the workspace's
//! [`SplitMix64`] stream).
//!
//! ## Determinism
//!
//! Fault decisions are a stateless pseudo-random function of
//! `(plan seed, site salt, occurrence index)` — not a shared consumed
//! stream. Two consequences:
//!
//! - Two identical processes running the same plan see the *same* fault
//!   sequence (CI can require byte-identical artifacts under injected
//!   faults).
//! - Occurrence counters persist across offload attempts on one SoC, so
//!   a *retry* of a faulted job sees fresh coin flips: transient faults
//!   are transient, exactly as on hardware, without sacrificing
//!   cross-process reproducibility.
//!
//! ## The no-op guarantee
//!
//! [`FaultPlan::none`] (all rates zero, no forced occurrences, no dead
//! clusters, no outages) must be observationally identical to running
//! without any plan installed: every hook reduces to a single untaken
//! branch, no RNG is consumed, and all timing artifacts stay
//! byte-stable. `mpsoc-offload` carries a property test enforcing this
//! across the kernel zoo and all dispatch × sync strategies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpsoc_sim::rng::SplitMix64;
use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Golden-ratio increment used to decorrelate occurrence indices before
/// they enter the per-site PRF (same constant as SplitMix64's stream
/// increment).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// The hardware points where a fault can strike.
///
/// Each variant corresponds to one hook wired into a hardware model;
/// the salt keeps the per-site PRF streams independent even under equal
/// seeds and occurrence indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A multicast (or sequential) dispatch beat to one cluster is
    /// silently dropped: the mailbox write never arrives.
    DispatchDrop,
    /// A dispatch beat is duplicated: the mailbox write lands twice.
    DispatchDup,
    /// A cluster's wakeup fires but the cores never come out of reset —
    /// the worker never wakes.
    WakeLoss,
    /// A completion credit increment is lost on its way to the credit
    /// counter; the barrier threshold is never reached.
    CreditLoss,
    /// A DMA burst is corrupted in flight. The engine's checksum unit
    /// detects the corruption and flags the cluster.
    DmaCorrupt,
    /// A DMA burst stalls for extra cycles before completing (link-level
    /// retry); timing-only, no data loss.
    DmaStall,
    /// An atomic fetch-add at the HBM AMO unit is acknowledged but the
    /// memory update is lost.
    AmoDrop,
    /// A delivery fell into a NoC outage window and was deferred until
    /// the link came back up.
    NocOutage,
    /// A cluster configured as permanently dead refused to wake.
    DeadCluster,
}

impl FaultKind {
    /// Every stochastic site kind, in a fixed order (excludes the
    /// window-based [`FaultKind::NocOutage`] and static
    /// [`FaultKind::DeadCluster`], which are not coin-flip sites).
    pub const SITES: [FaultKind; 7] = [
        FaultKind::DispatchDrop,
        FaultKind::DispatchDup,
        FaultKind::WakeLoss,
        FaultKind::CreditLoss,
        FaultKind::DmaCorrupt,
        FaultKind::DmaStall,
        FaultKind::AmoDrop,
    ];

    /// Short stable lowercase name (used in reports and tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DispatchDrop => "dispatch_drop",
            FaultKind::DispatchDup => "dispatch_dup",
            FaultKind::WakeLoss => "wake_loss",
            FaultKind::CreditLoss => "credit_loss",
            FaultKind::DmaCorrupt => "dma_corrupt",
            FaultKind::DmaStall => "dma_stall",
            FaultKind::AmoDrop => "amo_drop",
            FaultKind::NocOutage => "noc_outage",
            FaultKind::DeadCluster => "dead_cluster",
        }
    }

    /// The per-site PRF salt.
    const fn salt(self) -> u64 {
        match self {
            FaultKind::DispatchDrop => 0xD15B_A7C4_0001_A001,
            FaultKind::DispatchDup => 0xD15B_A7C4_0002_B003,
            FaultKind::WakeLoss => 0xD15B_A7C4_0003_C005,
            FaultKind::CreditLoss => 0xD15B_A7C4_0004_D007,
            FaultKind::DmaCorrupt => 0xD15B_A7C4_0005_E009,
            FaultKind::DmaStall => 0xD15B_A7C4_0006_F00B,
            FaultKind::AmoDrop => 0xD15B_A7C4_0007_A00D,
            FaultKind::NocOutage => 0xD15B_A7C4_0008_B00F,
            FaultKind::DeadCluster => 0xD15B_A7C4_0009_C011,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Specification of one stochastic fault site: a biased coin plus an
/// optional list of occurrence indices that fire deterministically
/// (`forced`), which is how experiments inject *exactly one* transient
/// fault at a chosen point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Probability in `[0, 1]` that any given occurrence faults.
    pub rate: f64,
    /// Occurrence indices (0-based, per site) that always fault.
    pub forced: Vec<u64>,
}

impl SiteSpec {
    /// A site that never fires.
    pub fn off() -> Self {
        SiteSpec {
            rate: 0.0,
            forced: Vec::new(),
        }
    }

    /// A purely stochastic site.
    pub fn rate(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        SiteSpec {
            rate,
            forced: Vec::new(),
        }
    }

    /// A site that fires exactly at the given occurrence index — the
    /// canonical "single transient fault".
    pub fn once_at(occurrence: u64) -> Self {
        SiteSpec {
            rate: 0.0,
            forced: vec![occurrence],
        }
    }

    /// Whether this site can ever fire.
    pub fn is_armed(&self) -> bool {
        self.rate > 0.0 || !self.forced.is_empty()
    }
}

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec::off()
    }
}

/// A transient NoC link outage: deliveries whose arrival cycle falls in
/// `[start, end)` are deferred to `end` (the link replays them once it
/// is back up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// First cycle of the outage.
    pub start: u64,
    /// First cycle after the outage (deliveries resume here).
    pub end: u64,
}

impl OutageWindow {
    /// Defers `at` to the end of the window if it falls inside it.
    pub fn defer(&self, at: Cycle) -> Option<Cycle> {
        let t = at.as_u64();
        (t >= self.start && t < self.end).then(|| Cycle::new(self.end))
    }
}

/// A complete, serializable fault-injection plan.
///
/// All fields default to "never fault"; [`FaultPlan::none`] is the
/// explicit no-op plan with the byte-identical guarantee documented at
/// the crate root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-site PRF streams.
    pub seed: u64,
    /// Dropped dispatch beats ([`FaultKind::DispatchDrop`]).
    pub dispatch_drop: SiteSpec,
    /// Duplicated dispatch beats ([`FaultKind::DispatchDup`]).
    pub dispatch_dup: SiteSpec,
    /// Lost cluster wakeups ([`FaultKind::WakeLoss`]).
    pub wake_loss: SiteSpec,
    /// Lost credit increments ([`FaultKind::CreditLoss`]).
    pub credit_loss: SiteSpec,
    /// Corrupted DMA bursts ([`FaultKind::DmaCorrupt`]).
    pub dma_corrupt: SiteSpec,
    /// Stalled DMA bursts ([`FaultKind::DmaStall`]).
    pub dma_stall: SiteSpec,
    /// Lost AMO updates ([`FaultKind::AmoDrop`]).
    pub amo_drop: SiteSpec,
    /// Extra cycles a stalled DMA burst takes.
    pub dma_stall_cycles: u64,
    /// Clusters that never wake, as a bitmask (bit `i` = cluster `i`).
    pub dead_clusters: u64,
    /// Clusters with a *flaky* DMA engine, as a bitmask: every DMA burst
    /// on a flaky cluster rolls an extra per-cluster corruption die at
    /// [`FaultPlan::flaky_corrupt_rate`]. Unlike the machine-wide
    /// [`FaultPlan::dma_corrupt`] site, corruption is correlated with
    /// the cluster — the hardware-degradation signature that
    /// strike-based quarantine exists to catch. Unlike
    /// [`FaultPlan::dead_clusters`], a flaky cluster still completes
    /// work, so sessions make progress while recovery pays per-attempt.
    pub flaky_clusters: u64,
    /// Per-burst corruption probability on flaky clusters, in `[0, 1]`.
    pub flaky_corrupt_rate: f64,
    /// Transient NoC link outages.
    pub noc_outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// The explicit no-fault plan: observationally identical to running
    /// without any plan installed.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            dispatch_drop: SiteSpec::off(),
            dispatch_dup: SiteSpec::off(),
            wake_loss: SiteSpec::off(),
            credit_loss: SiteSpec::off(),
            dma_corrupt: SiteSpec::off(),
            dma_stall: SiteSpec::off(),
            amo_drop: SiteSpec::off(),
            dma_stall_cycles: 0,
            dead_clusters: 0,
            flaky_clusters: 0,
            flaky_corrupt_rate: 0.0,
            noc_outages: Vec::new(),
        }
    }

    /// A no-fault plan carrying a seed (convenient base to build on).
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Whether the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        !self.dispatch_drop.is_armed()
            && !self.dispatch_dup.is_armed()
            && !self.wake_loss.is_armed()
            && !self.credit_loss.is_armed()
            && !self.dma_corrupt.is_armed()
            && !self.dma_stall.is_armed()
            && !self.amo_drop.is_armed()
            && self.dead_clusters == 0
            && !self.flaky_is_armed()
            && self.noc_outages.is_empty()
    }

    /// Whether any cluster can roll the flaky-DMA corruption die.
    pub fn flaky_is_armed(&self) -> bool {
        self.flaky_clusters != 0 && self.flaky_corrupt_rate > 0.0
    }

    /// Whether `cluster` carries a flaky DMA engine under this plan.
    pub fn cluster_is_flaky(&self, cluster: usize) -> bool {
        cluster < 64 && (self.flaky_clusters >> cluster) & 1 == 1 && self.flaky_corrupt_rate > 0.0
    }

    /// Builds the live per-cluster flaky-corruption site. Each cluster
    /// gets an independent PRF stream (the DMA-corrupt salt mixed with
    /// the cluster index), so flaky clusters never fault in lockstep and
    /// the sequence per cluster is a pure function of `(seed, cluster,
    /// occurrence)` — byte-identical across processes, like every other
    /// site.
    pub fn flaky_site(&self, cluster: usize) -> FaultSite {
        assert!(
            (0.0..=1.0).contains(&self.flaky_corrupt_rate),
            "flaky_corrupt_rate must be in [0, 1]"
        );
        FaultSite {
            seed: self.seed,
            salt: FaultKind::DmaCorrupt
                .salt()
                .wrapping_add((cluster as u64 + 1).wrapping_mul(MIX)),
            rate: if self.cluster_is_flaky(cluster) {
                self.flaky_corrupt_rate
            } else {
                0.0
            },
            forced: Vec::new(),
            occurrences: 0,
            fired: 0,
        }
    }

    /// The spec of one stochastic site.
    ///
    /// # Panics
    ///
    /// Panics for the non-site kinds [`FaultKind::NocOutage`] and
    /// [`FaultKind::DeadCluster`].
    pub fn spec(&self, kind: FaultKind) -> &SiteSpec {
        match kind {
            FaultKind::DispatchDrop => &self.dispatch_drop,
            FaultKind::DispatchDup => &self.dispatch_dup,
            FaultKind::WakeLoss => &self.wake_loss,
            FaultKind::CreditLoss => &self.credit_loss,
            FaultKind::DmaCorrupt => &self.dma_corrupt,
            FaultKind::DmaStall => &self.dma_stall,
            FaultKind::AmoDrop => &self.amo_drop,
            FaultKind::NocOutage | FaultKind::DeadCluster => {
                panic!("{kind} is not a stochastic site")
            }
        }
    }

    /// Builds the live state for one stochastic site.
    pub fn site(&self, kind: FaultKind) -> FaultSite {
        let spec = self.spec(kind);
        let mut forced = spec.forced.clone();
        forced.sort_unstable();
        FaultSite {
            seed: self.seed,
            salt: kind.salt(),
            rate: spec.rate,
            forced,
            occurrences: 0,
            fired: 0,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Live state of one stochastic fault site: the plan's coin plus a
/// persistent occurrence counter.
///
/// The decision for occurrence `i` is
/// `SplitMix64::new(seed ^ salt ^ mix(i)).next_f64() < rate` — a pure
/// function of the plan and the index, so identical processes agree on
/// the fault sequence while retries (which advance the counter) see
/// fresh draws.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSite {
    seed: u64,
    salt: u64,
    rate: f64,
    forced: Vec<u64>,
    occurrences: u64,
    fired: u64,
}

impl FaultSite {
    /// A site that never fires (no plan installed).
    pub fn off() -> Self {
        FaultPlan::none().site(FaultKind::DispatchDrop)
    }

    /// Whether this site can ever fire. Hooks check this first so a
    /// disarmed site is a single untaken branch: no counter bump, no
    /// RNG.
    pub fn is_armed(&self) -> bool {
        self.rate > 0.0 || !self.forced.is_empty()
    }

    /// Draws the next occurrence's fate.
    pub fn fire(&mut self) -> bool {
        if !self.is_armed() {
            return false;
        }
        let i = self.occurrences;
        self.occurrences += 1;
        let hit = if self.forced.binary_search(&i).is_ok() {
            true
        } else if self.rate > 0.0 {
            SplitMix64::new(self.seed ^ self.salt ^ i.wrapping_mul(MIX)).next_f64() < self.rate
        } else {
            false
        };
        if hit {
            self.fired += 1;
        }
        hit
    }

    /// Occurrences drawn so far.
    pub fn occurrences(&self) -> u64 {
        self.occurrences
    }

    /// Occurrences that faulted so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// One injected fault, for attribution, stats and telemetry.
///
/// Records are the injector's *ground truth* log. Recovery code must
/// not read it — detection works from observable hardware state (missed
/// watchdog deadlines, checksum flags, incomplete clusters) — but
/// benches and stats use it to validate detection coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Cycle the fault was injected.
    pub at: Cycle,
    /// What struck.
    pub kind: FaultKind,
    /// Cluster involved, when the site is cluster-attributable.
    pub cluster: Option<usize>,
    /// Job the faulted transaction belonged to.
    pub job: u64,
}

/// Aggregate injected-fault counts, serializable for JSON artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Dropped dispatch beats.
    pub dispatch_drop: u64,
    /// Duplicated dispatch beats.
    pub dispatch_dup: u64,
    /// Lost wakeups.
    pub wake_loss: u64,
    /// Lost credit increments.
    pub credit_loss: u64,
    /// Corrupted DMA bursts.
    pub dma_corrupt: u64,
    /// Stalled DMA bursts.
    pub dma_stall: u64,
    /// Dropped AMO updates.
    pub amo_drop: u64,
    /// Deliveries deferred by NoC outages.
    pub noc_outage: u64,
    /// Wakeups refused by permanently dead clusters.
    pub dead_cluster: u64,
}

impl FaultStats {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.dispatch_drop
            + self.dispatch_dup
            + self.wake_loss
            + self.credit_loss
            + self.dma_corrupt
            + self.dma_stall
            + self.amo_drop
            + self.noc_outage
            + self.dead_cluster
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DispatchDrop => self.dispatch_drop += 1,
            FaultKind::DispatchDup => self.dispatch_dup += 1,
            FaultKind::WakeLoss => self.wake_loss += 1,
            FaultKind::CreditLoss => self.credit_loss += 1,
            FaultKind::DmaCorrupt => self.dma_corrupt += 1,
            FaultKind::DmaStall => self.dma_stall += 1,
            FaultKind::AmoDrop => self.amo_drop += 1,
            FaultKind::NocOutage => self.noc_outage += 1,
            FaultKind::DeadCluster => self.dead_cluster += 1,
        }
    }
}

/// The aggregate injector a SoC owns: live site states, the static
/// dead-cluster set, the ground-truth fault log and running stats.
///
/// NoC outage windows and the AMO site are *not* held here — they are
/// installed directly into the interconnect and main-memory models,
/// which report their own counts.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    dispatch_drop: FaultSite,
    dispatch_dup: FaultSite,
    wake_loss: FaultSite,
    credit_loss: FaultSite,
    dma_corrupt: FaultSite,
    dma_stall: FaultSite,
    flaky: Vec<FaultSite>,
    records: Vec<FaultRecord>,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            dispatch_drop: plan.site(FaultKind::DispatchDrop),
            dispatch_dup: plan.site(FaultKind::DispatchDup),
            wake_loss: plan.site(FaultKind::WakeLoss),
            credit_loss: plan.site(FaultKind::CreditLoss),
            dma_corrupt: plan.site(FaultKind::DmaCorrupt),
            dma_stall: plan.site(FaultKind::DmaStall),
            flaky: Vec::new(),
            records: Vec::new(),
            stats: FaultStats::default(),
            plan,
        }
    }

    /// The no-op injector (equivalent to no plan installed).
    pub fn noop() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the injector can never fault anything.
    pub fn is_noop(&self) -> bool {
        self.plan.is_noop()
    }

    fn site_mut(&mut self, kind: FaultKind) -> &mut FaultSite {
        match kind {
            FaultKind::DispatchDrop => &mut self.dispatch_drop,
            FaultKind::DispatchDup => &mut self.dispatch_dup,
            FaultKind::WakeLoss => &mut self.wake_loss,
            FaultKind::CreditLoss => &mut self.credit_loss,
            FaultKind::DmaCorrupt => &mut self.dma_corrupt,
            FaultKind::DmaStall => &mut self.dma_stall,
            FaultKind::AmoDrop | FaultKind::NocOutage | FaultKind::DeadCluster => {
                panic!("{kind} is not injected through the SoC injector")
            }
        }
    }

    /// Draws one occurrence at site `kind`; on a hit, logs the fault.
    /// Disarmed sites return `false` without consuming anything.
    pub fn fire(&mut self, kind: FaultKind, at: Cycle, cluster: Option<usize>, job: u64) -> bool {
        let site = self.site_mut(kind);
        if !site.is_armed() {
            return false;
        }
        if site.fire() {
            self.note(kind, at, cluster, job);
            true
        } else {
            false
        }
    }

    /// Logs a fault decided elsewhere (dead clusters, units owning their
    /// own sites).
    pub fn note(&mut self, kind: FaultKind, at: Cycle, cluster: Option<usize>, job: u64) {
        self.records.push(FaultRecord {
            at,
            kind,
            cluster,
            job,
        });
        self.stats.bump(kind);
    }

    /// Rolls the per-cluster flaky-DMA corruption die for one burst on
    /// `cluster`; on a hit, logs it as a [`FaultKind::DmaCorrupt`].
    /// Clusters outside [`FaultPlan::flaky_clusters`] (and every cluster
    /// of an unarmed plan) return `false` on a single branch — per-site
    /// state is built lazily, so the no-op guarantee holds.
    pub fn flaky_fire(&mut self, at: Cycle, cluster: usize, job: u64) -> bool {
        if !self.plan.cluster_is_flaky(cluster) {
            return false;
        }
        while self.flaky.len() <= cluster {
            let next = self.flaky.len();
            self.flaky.push(self.plan.flaky_site(next));
        }
        if self.flaky[cluster].fire() {
            self.note(FaultKind::DmaCorrupt, at, Some(cluster), job);
            true
        } else {
            false
        }
    }

    /// Whether `cluster` is configured to never wake.
    pub fn cluster_is_dead(&self, cluster: usize) -> bool {
        cluster < 64 && (self.plan.dead_clusters >> cluster) & 1 == 1
    }

    /// Extra cycles a stalled DMA burst takes.
    pub fn dma_stall_cycles(&self) -> u64 {
        self.plan.dma_stall_cycles
    }

    /// The ground-truth fault log since the last [`FaultInjector::clear_records`].
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Clears the fault log (site counters persist — retries must see
    /// fresh draws, not a replay).
    pub fn clear_records(&mut self) {
        self.records.clear();
    }

    /// Running injected-fault counts since construction.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn noop_plan_never_fires_and_consumes_nothing() {
        let mut inj = FaultInjector::noop();
        assert!(inj.is_noop());
        for kind in FaultKind::SITES {
            if kind == FaultKind::AmoDrop {
                continue;
            }
            for _ in 0..100 {
                assert!(!inj.fire(kind, Cycle::new(5), Some(0), 0));
            }
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(inj.records().is_empty());
        // Disarmed sites must not even advance their counters.
        assert_eq!(inj.dispatch_drop.occurrences(), 0);
    }

    #[test]
    fn forced_occurrence_fires_exactly_once() {
        let mut plan = FaultPlan::with_seed(7);
        plan.credit_loss = SiteSpec::once_at(3);
        let mut inj = FaultInjector::new(plan);
        let fired: Vec<bool> = (0..8)
            .map(|i| inj.fire(FaultKind::CreditLoss, Cycle::new(i), Some(1), 42))
            .collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, false]
        );
        assert_eq!(inj.stats().credit_loss, 1);
        assert_eq!(inj.records().len(), 1);
        assert_eq!(inj.records()[0].kind, FaultKind::CreditLoss);
        assert_eq!(inj.records()[0].cluster, Some(1));
        assert_eq!(inj.records()[0].job, 42);
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_index() {
        let plan = {
            let mut p = FaultPlan::with_seed(0xFA_117);
            p.dispatch_drop = SiteSpec::rate(0.3);
            p
        };
        let draw = |n: usize| -> Vec<bool> {
            let mut inj = FaultInjector::new(plan.clone());
            (0..n)
                .map(|_| inj.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0))
                .collect()
        };
        assert_eq!(draw(200), draw(200));
        // A different seed decorrelates the stream.
        let other = {
            let mut p = plan.clone();
            p.seed ^= 1;
            let mut inj = FaultInjector::new(p);
            (0..200)
                .map(|_| inj.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0))
                .collect::<Vec<bool>>()
        };
        assert_ne!(draw(200), other);
    }

    #[test]
    fn sites_are_independent_streams() {
        let mut plan = FaultPlan::with_seed(9);
        plan.dispatch_drop = SiteSpec::rate(0.5);
        plan.credit_loss = SiteSpec::rate(0.5);
        let mut inj = FaultInjector::new(plan);
        let a: Vec<bool> = (0..64)
            .map(|_| inj.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| inj.fire(FaultKind::CreditLoss, Cycle::ZERO, None, 0))
            .collect();
        assert_ne!(a, b, "salts must decorrelate sites");
    }

    #[test]
    fn rates_are_respected_in_the_long_run() {
        let mut plan = FaultPlan::with_seed(3);
        plan.dma_stall = SiteSpec::rate(0.2);
        let mut site = plan.site(FaultKind::DmaStall);
        let n = 20_000;
        let mut hits = 0;
        for _ in 0..n {
            if site.fire() {
                hits += 1;
            }
        }
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.02,
            "observed rate {observed} too far from 0.2"
        );
    }

    #[test]
    fn outage_windows_defer_only_inside() {
        let w = OutageWindow {
            start: 100,
            end: 150,
        };
        assert_eq!(w.defer(Cycle::new(99)), None);
        assert_eq!(w.defer(Cycle::new(100)), Some(Cycle::new(150)));
        assert_eq!(w.defer(Cycle::new(149)), Some(Cycle::new(150)));
        assert_eq!(w.defer(Cycle::new(150)), None);
    }

    #[test]
    fn dead_clusters_decode_from_the_bitmask() {
        let mut plan = FaultPlan::none();
        plan.dead_clusters = 0b1010;
        let inj = FaultInjector::new(plan);
        assert!(!inj.cluster_is_dead(0));
        assert!(inj.cluster_is_dead(1));
        assert!(!inj.cluster_is_dead(2));
        assert!(inj.cluster_is_dead(3));
        assert!(!inj.cluster_is_dead(64));
    }

    #[test]
    fn flaky_corruption_is_cluster_local_and_deterministic() {
        let mut plan = FaultPlan::with_seed(0xF1A);
        plan.flaky_clusters = 0b0101; // clusters 0 and 2 are flaky
        plan.flaky_corrupt_rate = 0.5;
        assert!(!plan.is_noop());
        let draw = |cluster: usize| -> Vec<bool> {
            let mut inj = FaultInjector::new(plan.clone());
            (0..64)
                .map(|_| inj.flaky_fire(Cycle::ZERO, cluster, 7))
                .collect()
        };
        // Deterministic per cluster, decorrelated across clusters.
        assert_eq!(draw(0), draw(0));
        assert_ne!(draw(0), draw(2));
        assert!(draw(0).iter().any(|&hit| hit));
        // A healthy cluster never rolls the die.
        assert!(draw(1).iter().all(|&hit| !hit));
        assert!(draw(64).iter().all(|&hit| !hit));
    }

    #[test]
    fn flaky_hits_are_logged_as_dma_corruption() {
        let mut plan = FaultPlan::with_seed(2);
        plan.flaky_clusters = 0b10;
        plan.flaky_corrupt_rate = 1.0;
        let mut inj = FaultInjector::new(plan);
        assert!(inj.flaky_fire(Cycle::new(9), 1, 42));
        assert_eq!(inj.stats().dma_corrupt, 1);
        assert_eq!(inj.records().len(), 1);
        assert_eq!(inj.records()[0].kind, FaultKind::DmaCorrupt);
        assert_eq!(inj.records()[0].cluster, Some(1));
        assert_eq!(inj.records()[0].job, 42);
    }

    #[test]
    fn flaky_bitmask_without_a_rate_stays_a_noop() {
        let mut plan = FaultPlan::with_seed(5);
        plan.flaky_clusters = 0b111;
        assert!(plan.is_noop(), "rate 0 keeps the plan inert");
        let mut inj = FaultInjector::new(plan);
        for _ in 0..16 {
            assert!(!inj.flaky_fire(Cycle::ZERO, 0, 0));
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn flaky_streams_are_independent_of_the_machine_wide_site() {
        let mut plan = FaultPlan::with_seed(9);
        plan.dma_corrupt = SiteSpec::rate(0.5);
        plan.flaky_clusters = 0b1;
        plan.flaky_corrupt_rate = 0.5;
        let mut inj = FaultInjector::new(plan);
        let global: Vec<bool> = (0..64)
            .map(|_| inj.fire(FaultKind::DmaCorrupt, Cycle::ZERO, Some(0), 0))
            .collect();
        let flaky: Vec<bool> = (0..64).map(|_| inj.flaky_fire(Cycle::ZERO, 0, 0)).collect();
        assert_ne!(global, flaky, "per-cluster salts must decorrelate");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut plan = FaultPlan::with_seed(11);
        plan.dispatch_drop = SiteSpec::rate(0.1);
        plan.wake_loss = SiteSpec::once_at(2);
        plan.dma_stall_cycles = 400;
        plan.dead_clusters = 0b100;
        plan.flaky_clusters = 0b1001;
        plan.flaky_corrupt_rate = 0.25;
        plan.noc_outages = vec![OutageWindow { start: 10, end: 20 }];
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }

    proptest! {
        /// Any plan with every site disarmed is a no-op, regardless of
        /// seed or stall parameter.
        #[test]
        fn disarmed_plans_are_noops(seed in any::<u64>(), stall in 0u64..10_000) {
            let mut plan = FaultPlan::with_seed(seed);
            plan.dma_stall_cycles = stall; // irrelevant while the site is off
            prop_assert!(plan.is_noop());
            let mut inj = FaultInjector::new(plan);
            for _ in 0..32 {
                prop_assert!(!inj.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0));
                prop_assert!(!inj.fire(FaultKind::CreditLoss, Cycle::ZERO, None, 0));
            }
            prop_assert_eq!(inj.stats().total(), 0);
        }

        /// The PRF never depends on call interleaving: drawing sites in
        /// different orders yields the same per-site sequences.
        #[test]
        fn interleaving_does_not_change_streams(seed in any::<u64>()) {
            let mut plan = FaultPlan::with_seed(seed);
            plan.dispatch_drop = SiteSpec::rate(0.4);
            plan.dma_corrupt = SiteSpec::rate(0.4);
            // Sequential: all drops, then all corrupts.
            let mut a = FaultInjector::new(plan.clone());
            let drops_a: Vec<bool> =
                (0..32).map(|_| a.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0)).collect();
            let corrupts_a: Vec<bool> =
                (0..32).map(|_| a.fire(FaultKind::DmaCorrupt, Cycle::ZERO, None, 0)).collect();
            // Interleaved.
            let mut b = FaultInjector::new(plan);
            let mut drops_b = Vec::new();
            let mut corrupts_b = Vec::new();
            for _ in 0..32 {
                drops_b.push(b.fire(FaultKind::DispatchDrop, Cycle::ZERO, None, 0));
                corrupts_b.push(b.fire(FaultKind::DmaCorrupt, Cycle::ZERO, None, 0));
            }
            prop_assert_eq!(drops_a, drops_b);
            prop_assert_eq!(corrupts_a, corrupts_b);
        }
    }
}
