//! Property tests for the micro-op interpreter: determinism, time-shift
//! invariance and functional integrity under random programs.

use proptest::prelude::*;

use mpsoc_isa::{
    CoreTiming, FpReg, IntReg, Interpreter, MemoryPort, PortError, ProgramBuilder, VecPort,
};
use mpsoc_sim::Cycle;

/// Builds a random but well-formed straight-line program touching the
/// first `words` words of a TCDM: loads, stores, FP ops, int ops.
fn random_program(ops: &[u8], words: usize) -> mpsoc_isa::Program {
    let mut b = ProgramBuilder::new();
    let base = IntReg::new(1);
    b.li(base, 0);
    for (i, &op) in ops.iter().enumerate() {
        let word = (i * 7 + op as usize) % words;
        let offset = (word * 8) as i64;
        let fa = FpReg::new(op % 8);
        let fb = FpReg::new(op / 8 % 8);
        match op % 5 {
            0 => b.fld(fa, base, offset),
            1 => b.fsd(fa, base, offset),
            2 => b.fmadd(fa, fb, fa, fb),
            3 => b.fadd(fa, fa, fb),
            _ => b.addi(IntReg::new(2), IntReg::new(2), 1),
        }
    }
    b.halt();
    b.build().expect("well-formed by construction")
}

proptest! {
    /// Execution is deterministic: identical runs produce identical
    /// timing and identical memory.
    #[test]
    fn execution_is_deterministic(
        ops in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let program = random_program(&ops, 32);
        let run = || {
            let mut port = VecPort::new(vec![1.5; 32]);
            let report = Interpreter::new().run(&program, &mut port).expect("run");
            (report, port.data().to_vec())
        };
        let (r1, d1) = run();
        let (r2, d2) = run();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(d1, d2);
    }

    /// Starting the same program `t` cycles later shifts the finish time
    /// by exactly `t` and changes nothing else.
    #[test]
    fn time_shift_invariance(
        ops in prop::collection::vec(any::<u8>(), 1..150),
        shift in 0u64..100_000,
    ) {
        let program = random_program(&ops, 16);
        let mut port_a = VecPort::new(vec![0.25; 16]);
        let base = Interpreter::new().run(&program, &mut port_a).expect("run");
        let mut port_b = VecPort::new(vec![0.25; 16]);
        let shifted = Interpreter::new()
            .run_from(&program, Cycle::new(shift), &mut port_b)
            .expect("run");
        prop_assert_eq!(shifted.finish, base.finish + Cycle::new(shift));
        prop_assert_eq!(shifted.retired, base.retired);
        prop_assert_eq!(port_a.data(), port_b.data());
    }

    /// The retired-op count equals the program length for straight-line
    /// programs, and op-class counters add up.
    #[test]
    fn op_accounting_adds_up(
        ops in prop::collection::vec(any::<u8>(), 1..150),
    ) {
        let program = random_program(&ops, 16);
        let mut port = VecPort::new(vec![0.0; 16]);
        let report = Interpreter::new().run(&program, &mut port).expect("run");
        prop_assert_eq!(report.retired as usize, program.len());
        // halt is the only Ctrl op; li + addis are Int.
        prop_assert_eq!(
            report.mem_ops + report.fp_ops + report.int_ops + report.branches + 1,
            report.retired
        );
    }

    /// Finish time grows monotonically as ops are appended.
    #[test]
    fn finish_monotone_in_program_length(
        ops in prop::collection::vec(any::<u8>(), 2..120),
    ) {
        let full = random_program(&ops, 16);
        let prefix = random_program(&ops[..ops.len() / 2], 16);
        let mut pa = VecPort::new(vec![0.0; 16]);
        let mut pb = VecPort::new(vec![0.0; 16]);
        let t_full = Interpreter::new().run(&full, &mut pa).expect("run").finish;
        let t_prefix = Interpreter::new().run(&prefix, &mut pb).expect("run").finish;
        prop_assert!(t_full >= t_prefix);
    }

    /// A grant hook that delays every memory access by `d` cycles slows
    /// the program down by at least `d` (if it has any memory op) and by
    /// at most `d × mem_ops`.
    #[test]
    fn grant_delays_bound_the_slowdown(
        ops in prop::collection::vec(any::<u8>(), 1..100),
        delay in 1u64..8,
    ) {
        struct Delayed {
            inner: VecPort,
            delay: u64,
        }
        impl MemoryPort for Delayed {
            fn load(&mut self, addr: u64) -> Result<f64, PortError> {
                self.inner.load(addr)
            }
            fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError> {
                self.inner.store(addr, value)
            }
            fn grant(&mut self, _addr: u64, at: Cycle) -> Cycle {
                at + Cycle::new(self.delay)
            }
        }
        let program = random_program(&ops, 16);
        let mut fast = VecPort::new(vec![0.0; 16]);
        let base = Interpreter::new().run(&program, &mut fast).expect("run");
        let mut slow = Delayed {
            inner: VecPort::new(vec![0.0; 16]),
            delay,
        };
        let delayed = Interpreter::new().run(&program, &mut slow).expect("run");
        // Delays can hide under FP latency, so the lower bound is only
        // "never faster"; the upper bound is one delay per memory op.
        prop_assert!(delayed.finish >= base.finish);
        prop_assert!(
            delayed.finish <= base.finish + Cycle::new(delay * base.mem_ops)
        );
    }

    /// Fuel always terminates loops, never panics.
    #[test]
    fn fuel_terminates_any_loop(count in 1i64..1_000_000) {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(1), count);
        let top = b.label();
        b.bind(top);
        b.addi(IntReg::new(1), IntReg::new(1), -1);
        b.bnez(IntReg::new(1), top);
        b.halt();
        let program = b.build().unwrap();
        let mut timing = CoreTiming::snitch();
        timing.max_steps = 10_000;
        let mut port = VecPort::new(vec![]);
        let result = Interpreter::with_timing(timing).run(&program, &mut port);
        // The loop retires 2 ops/iteration plus `li` and `halt`; it
        // completes exactly when that fits in the fuel budget.
        let retires = 2 * (count as u64) + 2;
        prop_assert_eq!(result.is_ok(), retires <= 10_000);
    }
}
