//! The micro-op interpreter: functional semantics + issue timing.

use std::error::Error;
use std::fmt;

use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::{MicroOp, PipeClass, Program};

/// A memory access fault raised by a [`MemoryPort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortError {
    /// The faulting local byte address.
    pub addr: u64,
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory port fault at local address {:#x}", self.addr)
    }
}

impl Error for PortError {}

/// The data/timing interface between a core and its cluster TCDM.
///
/// Addresses are byte offsets local to the cluster. [`MemoryPort::grant`]
/// is the bank-arbitration hook: given the cycle an access *wants* to
/// issue, it returns the cycle the access is *granted* (possibly later on
/// a bank conflict). The default grants immediately.
pub trait MemoryPort {
    /// Reads the 64-bit word at `addr` as a double.
    ///
    /// # Errors
    ///
    /// Returns [`PortError`] on an out-of-range or misaligned address.
    fn load(&mut self, addr: u64) -> Result<f64, PortError>;

    /// Writes a double to the 64-bit word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PortError`] on an out-of-range or misaligned address.
    fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError>;

    /// Arbitration hook: earliest grant for an access to `addr` proposed
    /// at cycle `at`.
    fn grant(&mut self, _addr: u64, at: Cycle) -> Cycle {
        at
    }
}

/// A plain `Vec<f64>`-backed [`MemoryPort`] with no contention; handy for
/// tests and for running kernels outside the full SoC.
#[derive(Debug, Clone, Default)]
pub struct VecPort {
    data: Vec<f64>,
}

impl VecPort {
    /// Wraps a vector; element `i` lives at byte address `8·i`.
    pub fn new(data: Vec<f64>) -> Self {
        VecPort { data }
    }

    /// The backing data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the backing data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    fn index(&self, addr: u64) -> Result<usize, PortError> {
        if addr % 8 != 0 {
            return Err(PortError { addr });
        }
        let i = (addr / 8) as usize;
        if i >= self.data.len() {
            return Err(PortError { addr });
        }
        Ok(i)
    }
}

impl MemoryPort for VecPort {
    fn load(&mut self, addr: u64) -> Result<f64, PortError> {
        let i = self.index(addr)?;
        Ok(self.data[i])
    }

    fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError> {
        let i = self.index(addr)?;
        self.data[i] = value;
        Ok(())
    }
}

/// Latency parameters of the modeled in-order core.
///
/// The defaults are the calibrated Snitch-class values: with them, the
/// software-pipelined DAXPY kernel of `mpsoc-kernels` sustains 26 cycles
/// per 10 elements (2.6 cycles/element), the compute coefficient of the
/// paper's Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreTiming {
    /// Cycles from load issue to destination availability.
    pub load_latency: u64,
    /// Cycles from FP op issue to destination availability (pipelined).
    pub fp_latency: u64,
    /// Cycles from integer op issue to destination availability.
    pub int_latency: u64,
    /// Extra fetch bubble after a taken branch.
    pub branch_taken_penalty: u64,
    /// Execution fuel: maximum retired ops before aborting.
    pub max_steps: u64,
    /// When `true`, all ops contend for one issue slot per cycle (a
    /// scalar in-order core like the CVA6-class host); when `false`,
    /// the four pipes (LSU/FPU/ALU/branch) issue independently.
    pub single_issue: bool,
}

impl CoreTiming {
    /// The calibrated Snitch-class configuration.
    pub fn snitch() -> Self {
        CoreTiming {
            load_latency: 2,
            fp_latency: 3,
            int_latency: 1,
            branch_taken_penalty: 1,
            max_steps: 100_000_000,
            single_issue: false,
        }
    }

    /// A CVA6-class application core: scalar single-issue, longer FP and
    /// load latencies, costlier taken branches. Used to model executing
    /// a kernel on the host instead of offloading it.
    pub fn cva6() -> Self {
        CoreTiming {
            load_latency: 3,
            fp_latency: 5,
            int_latency: 1,
            branch_taken_penalty: 2,
            max_steps: 100_000_000,
            single_issue: true,
        }
    }
}

impl Default for CoreTiming {
    fn default() -> Self {
        CoreTiming::snitch()
    }
}

/// What happened during one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecReport {
    /// Completion time: when the last op's result is architecturally done.
    pub finish: Cycle,
    /// Total retired micro-ops.
    pub retired: u64,
    /// Retired loads/stores.
    pub mem_ops: u64,
    /// Retired FP ops.
    pub fp_ops: u64,
    /// Retired integer ops.
    pub int_ops: u64,
    /// Retired branches (taken or not).
    pub branches: u64,
    /// Cycles lost to operand/bank hazards beyond in-order flow.
    pub stall_cycles: u64,
}

/// An execution failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A memory access faulted.
    Port(PortError),
    /// The fuel limit was reached (runaway loop guard).
    FuelExhausted {
        /// Ops retired before giving up.
        steps: u64,
    },
    /// A branch target or fall-through left the program.
    PcOutOfRange {
        /// The offending op index.
        pc: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Port(e) => write!(f, "{e}"),
            ExecError::FuelExhausted { steps } => {
                write!(f, "execution fuel exhausted after {steps} ops")
            }
            ExecError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Port(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PortError> for ExecError {
    fn from(e: PortError) -> Self {
        ExecError::Port(e)
    }
}

/// Executes [`Program`]s with cycle-accurate issue timing.
///
/// The modeled core is a decoupled in-order design with four pipes
/// ([`PipeClass`]): per cycle, at most one op issues on each pipe, in
/// program order (issue times never decrease). Operand hazards stall
/// issue; a taken branch inserts a fetch bubble; loads/stores consult the
/// [`MemoryPort::grant`] hook so TCDM bank conflicts delay the LSU.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    timing: CoreTiming,
}

impl Interpreter {
    /// Creates an interpreter with [`CoreTiming::snitch`] timing.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Creates an interpreter with explicit timing.
    pub fn with_timing(timing: CoreTiming) -> Self {
        Interpreter { timing }
    }

    /// The timing parameters in effect.
    pub fn timing(&self) -> &CoreTiming {
        &self.timing
    }

    /// Runs `program` to completion starting at cycle 0.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(
        &self,
        program: &Program,
        port: &mut impl MemoryPort,
    ) -> Result<ExecReport, ExecError> {
        self.run_from(program, Cycle::ZERO, port)
    }

    /// Runs `program` to completion, with the first op eligible to issue
    /// at `start` (the cluster controller's go signal).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_from<P: MemoryPort>(
        &self,
        program: &Program,
        start: Cycle,
        port: &mut P,
    ) -> Result<ExecReport, ExecError> {
        let _prof = mpsoc_sim::profile::scope("isa.interpret");
        let t = &self.timing;
        let ops = program.ops();
        let mut int_regs = [0i64; 16];
        let mut fp_regs = [0f64; 32];
        let mut int_ready = [start; 16];
        let mut fp_ready = [start; 32];
        // Indexed by PipeClass order: Mem, Fp, Int, Ctrl.
        let mut pipe_free = [start; 4];
        let mut fetch_avail = start;
        let mut high_water = start;
        let mut report = ExecReport::default();
        let mut pc = 0usize;

        let single_issue = t.single_issue;
        let pipe_index = move |class: PipeClass| -> usize {
            if single_issue {
                return 0;
            }
            match class {
                PipeClass::Mem => 0,
                PipeClass::Fp => 1,
                PipeClass::Int => 2,
                PipeClass::Ctrl => 3,
            }
        };

        // SSR stream state (streams 0-2 alias f0-f2 while enabled).
        #[derive(Clone, Copy)]
        struct StreamState {
            addr: u64,
            stride: i64,
            remaining: u64,
        }
        let mut streams: [Option<StreamState>; 3] = [None, None, None];
        let mut ssr_enabled = false;
        // Active hardware loop: (first body pc, last body pc, iterations left).
        let mut frep: Option<(usize, usize, u64)> = None;

        fn stream_pop<P: MemoryPort>(
            streams: &mut [Option<StreamState>; 3],
            port: &mut P,
            idx: usize,
        ) -> Result<f64, ExecError> {
            let st = streams[idx]
                .as_mut()
                .ok_or(ExecError::Port(PortError { addr: u64::MAX }))?;
            if st.remaining == 0 {
                return Err(ExecError::Port(PortError { addr: st.addr }));
            }
            let value = port.load(st.addr)?;
            st.addr = st.addr.wrapping_add_signed(st.stride);
            st.remaining -= 1;
            Ok(value)
        }

        fn stream_push<P: MemoryPort>(
            streams: &mut [Option<StreamState>; 3],
            port: &mut P,
            idx: usize,
            value: f64,
        ) -> Result<(), ExecError> {
            let st = streams[idx]
                .as_mut()
                .ok_or(ExecError::Port(PortError { addr: u64::MAX }))?;
            if st.remaining == 0 {
                return Err(ExecError::Port(PortError { addr: st.addr }));
            }
            port.store(st.addr, value)?;
            st.addr = st.addr.wrapping_add_signed(st.stride);
            st.remaining -= 1;
            Ok(())
        }

        loop {
            if report.retired >= t.max_steps {
                return Err(ExecError::FuelExhausted {
                    steps: report.retired,
                });
            }
            let Some(&op) = ops.get(pc) else {
                return Err(ExecError::PcOutOfRange { pc });
            };
            let pipe = pipe_index(op.pipe());
            // In-order multi-issue: an op may share a cycle with the
            // previous op (different pipe) but never issue earlier.
            let base = fetch_avail.max(pipe_free[pipe]);

            let mut operand_ready = base;
            let ready_int = |r: crate::IntReg, operand_ready: &mut Cycle| {
                *operand_ready = (*operand_ready).max(int_ready[r.index()]);
            };
            let ready_fp = |r: crate::FpReg, operand_ready: &mut Cycle| {
                // Enabled streams are prefetched by dedicated SSR ports:
                // no register-file dependency.
                if ssr_enabled && r.index() < 3 && streams[r.index()].is_some() {
                    return;
                }
                *operand_ready = (*operand_ready).max(fp_ready[r.index()]);
            };

            match op {
                MicroOp::Li { .. } => {}
                MicroOp::Addi { rs, .. } => ready_int(rs, &mut operand_ready),
                MicroOp::Add { rs1, rs2, .. } => {
                    ready_int(rs1, &mut operand_ready);
                    ready_int(rs2, &mut operand_ready);
                }
                MicroOp::Fld { rs, .. } => ready_int(rs, &mut operand_ready),
                MicroOp::Fsd { fs, rs, .. } => {
                    ready_fp(fs, &mut operand_ready);
                    ready_int(rs, &mut operand_ready);
                }
                MicroOp::FsdPair { fs1, fs2, rs, .. } => {
                    ready_fp(fs1, &mut operand_ready);
                    ready_fp(fs2, &mut operand_ready);
                    ready_int(rs, &mut operand_ready);
                }
                MicroOp::Fmadd { fa, fb, fc, .. } => {
                    ready_fp(fa, &mut operand_ready);
                    ready_fp(fb, &mut operand_ready);
                    ready_fp(fc, &mut operand_ready);
                }
                MicroOp::Fadd { fa, fb, .. } | MicroOp::Fmul { fa, fb, .. } => {
                    ready_fp(fa, &mut operand_ready);
                    ready_fp(fb, &mut operand_ready);
                }
                MicroOp::Bnez { rs, .. } => ready_int(rs, &mut operand_ready),
                MicroOp::SsrCfg { base, .. } => ready_int(base, &mut operand_ready),
                MicroOp::SsrEnable | MicroOp::SsrDisable | MicroOp::Frep { .. } => {}
                MicroOp::Halt => {}
            }

            let mut issue = operand_ready;

            // Bank arbitration for memory ops.
            if op.is_mem() {
                let addr = match op {
                    MicroOp::Fld { rs, offset, .. }
                    | MicroOp::Fsd { rs, offset, .. }
                    | MicroOp::FsdPair { rs, offset, .. } => {
                        int_regs[rs.index()].wrapping_add(offset) as u64
                    }
                    _ => unreachable!("is_mem covers exactly the three mem ops"),
                };
                issue = port.grant(addr, issue);
            }

            report.stall_cycles += (issue - base).as_u64();

            // Execute (functional semantics) and set destination latency.
            let mut next_pc = pc + 1;
            match op {
                MicroOp::Li { rd, imm } => {
                    int_regs[rd.index()] = imm;
                    int_ready[rd.index()] = issue + Cycle::new(t.int_latency);
                    report.int_ops += 1;
                }
                MicroOp::Addi { rd, rs, imm } => {
                    int_regs[rd.index()] = int_regs[rs.index()].wrapping_add(imm);
                    int_ready[rd.index()] = issue + Cycle::new(t.int_latency);
                    report.int_ops += 1;
                }
                MicroOp::Add { rd, rs1, rs2 } => {
                    int_regs[rd.index()] =
                        int_regs[rs1.index()].wrapping_add(int_regs[rs2.index()]);
                    int_ready[rd.index()] = issue + Cycle::new(t.int_latency);
                    report.int_ops += 1;
                }
                MicroOp::Fld { fd, rs, offset } => {
                    let addr = int_regs[rs.index()].wrapping_add(offset) as u64;
                    fp_regs[fd.index()] = port.load(addr)?;
                    fp_ready[fd.index()] = issue + Cycle::new(t.load_latency);
                    report.mem_ops += 1;
                }
                MicroOp::Fsd { fs, rs, offset } => {
                    let addr = int_regs[rs.index()].wrapping_add(offset) as u64;
                    port.store(addr, fp_regs[fs.index()])?;
                    report.mem_ops += 1;
                }
                MicroOp::FsdPair {
                    fs1,
                    fs2,
                    rs,
                    offset,
                } => {
                    let addr = int_regs[rs.index()].wrapping_add(offset) as u64;
                    port.store(addr, fp_regs[fs1.index()])?;
                    port.store(addr + 8, fp_regs[fs2.index()])?;
                    report.mem_ops += 1;
                }
                MicroOp::Fmadd { fd, fa, fb, fc } => {
                    let fd_is_stream =
                        ssr_enabled && fd.index() < 3 && streams[fd.index()].is_some();
                    let read = |streams: &mut [Option<StreamState>; 3],
                                port: &mut P,
                                fp_regs: &[f64; 32],
                                r: crate::FpReg|
                     -> Result<f64, ExecError> {
                        if ssr_enabled && r.index() < 3 && streams[r.index()].is_some() {
                            stream_pop(streams, port, r.index())
                        } else {
                            Ok(fp_regs[r.index()])
                        }
                    };
                    let va = read(&mut streams, port, &fp_regs, fa)?;
                    let vb = read(&mut streams, port, &fp_regs, fb)?;
                    let vc = read(&mut streams, port, &fp_regs, fc)?;
                    let result = va.mul_add(vb, vc);
                    if fd_is_stream {
                        stream_push(&mut streams, port, fd.index(), result)?;
                    } else {
                        fp_regs[fd.index()] = result;
                        fp_ready[fd.index()] = issue + Cycle::new(t.fp_latency);
                    }
                    report.fp_ops += 1;
                }
                MicroOp::Fadd { fd, fa, fb } | MicroOp::Fmul { fd, fa, fb } => {
                    let is_mul = matches!(op, MicroOp::Fmul { .. });
                    let fd_is_stream =
                        ssr_enabled && fd.index() < 3 && streams[fd.index()].is_some();
                    let read = |streams: &mut [Option<StreamState>; 3],
                                port: &mut P,
                                fp_regs: &[f64; 32],
                                r: crate::FpReg|
                     -> Result<f64, ExecError> {
                        if ssr_enabled && r.index() < 3 && streams[r.index()].is_some() {
                            stream_pop(streams, port, r.index())
                        } else {
                            Ok(fp_regs[r.index()])
                        }
                    };
                    let va = read(&mut streams, port, &fp_regs, fa)?;
                    let vb = read(&mut streams, port, &fp_regs, fb)?;
                    let result = if is_mul { va * vb } else { va + vb };
                    if fd_is_stream {
                        stream_push(&mut streams, port, fd.index(), result)?;
                    } else {
                        fp_regs[fd.index()] = result;
                        fp_ready[fd.index()] = issue + Cycle::new(t.fp_latency);
                    }
                    report.fp_ops += 1;
                }
                MicroOp::Bnez { rs, target } => {
                    report.branches += 1;
                    if int_regs[rs.index()] != 0 {
                        next_pc = target;
                        // Taken branch: fetch bubble.
                        fetch_avail = issue + Cycle::new(1 + t.branch_taken_penalty);
                    }
                }
                MicroOp::SsrCfg {
                    stream,
                    base,
                    stride,
                    count,
                    ..
                } => {
                    streams[stream as usize] = Some(StreamState {
                        addr: int_regs[base.index()] as u64,
                        stride,
                        remaining: count,
                    });
                    report.int_ops += 1;
                }
                MicroOp::SsrEnable => {
                    ssr_enabled = true;
                    report.int_ops += 1;
                }
                MicroOp::SsrDisable => {
                    ssr_enabled = false;
                    report.int_ops += 1;
                }
                MicroOp::Frep { iterations, body } => {
                    let start = pc + 1;
                    let end = pc + body as usize;
                    if end >= ops.len() {
                        return Err(ExecError::PcOutOfRange { pc: end });
                    }
                    if iterations > 1 {
                        frep = Some((start, end, iterations - 1));
                    }
                    report.branches += 1;
                }
                MicroOp::Halt => {
                    report.retired += 1;
                    report.finish = high_water.max(issue);
                    return Ok(report);
                }
            }

            // Completion high-water mark (stores complete one cycle after
            // issue; results at their latency).
            let completion = match op.pipe() {
                PipeClass::Mem => issue + Cycle::new(1),
                PipeClass::Fp => issue + Cycle::new(t.fp_latency),
                PipeClass::Int => issue + Cycle::new(t.int_latency),
                PipeClass::Ctrl => issue + Cycle::new(1),
            };
            high_water = high_water.max(completion);

            pipe_free[pipe] = issue + Cycle::new(1);
            if !matches!(op, MicroOp::Bnez { rs, .. } if int_regs[rs.index()] != 0) {
                fetch_avail = fetch_avail.max(issue);
            }
            report.retired += 1;
            // Hardware-loop wraparound: when the body's last op retires
            // and iterations remain, jump back with zero overhead.
            if let Some((start, end, remaining)) = frep {
                if pc == end && next_pc == pc + 1 {
                    if remaining > 0 {
                        frep = Some((start, end, remaining - 1));
                        next_pc = start;
                    } else {
                        frep = None;
                    }
                }
            }
            pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpReg, IntReg, ProgramBuilder};

    fn x(i: u8) -> IntReg {
        IntReg::new(i)
    }
    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    #[test]
    fn functional_daxpy_one_element() {
        // y = a*x + y with a=2, x=3, y=10 -> 16.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fld(f(0), x(1), 0); // x
        b.fld(f(1), x(1), 8); // y
        b.fld(f(2), x(1), 16); // a
        b.fmadd(f(1), f(2), f(0), f(1));
        b.fsd(f(1), x(1), 8);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![3.0, 10.0, 2.0]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        assert_eq!(port.data()[1], 16.0);
        assert_eq!(report.retired, 7);
        assert_eq!(report.mem_ops, 4);
        assert_eq!(report.fp_ops, 1);
    }

    #[test]
    fn load_use_hazard_stalls() {
        // fld then an immediately dependent fmadd: the fmadd waits
        // load_latency cycles.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fld(f(0), x(1), 0);
        b.fmadd(f(1), f(0), f(0), f(0));
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![2.0]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        // li@0, fld@1 (waits x1 ready at 1), fmadd: f0 ready at 1+2=3.
        // stall = 3 - 2(base after fld at same cycle min) => recorded.
        assert!(report.stall_cycles >= 1, "expected a load-use stall");
    }

    #[test]
    fn independent_ops_dual_issue() {
        // An fld and an independent fadd should share a cycle.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fadd(f(2), f(1), f(1)); // fp pipe
        b.fld(f(0), x(1), 0); // mem pipe, independent
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![1.0]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        // li@0; fadd@0? (x-indep, fp pipe, fetch_avail 0) -> fadd@0;
        // fld needs x1 ready at 1 -> @1. halt@1. finish >= fadd compl. 3.
        assert_eq!(report.finish, Cycle::new(3));
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        // Sum 1.0 five times via a counted loop.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 5); // counter
        b.li(x(2), 0); // base
        b.fld(f(1), x(2), 0); // increment = 1.0
        let top = b.label();
        b.bind(top);
        b.fadd(f(0), f(0), f(1));
        b.addi(x(1), x(1), -1);
        b.bnez(x(1), top);
        b.fsd(f(0), x(2), 8);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![1.0, 0.0]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        assert_eq!(port.data()[1], 5.0);
        assert_eq!(report.branches, 5);
    }

    #[test]
    fn taken_branch_costs_a_bubble() {
        // Loop of pure int ops: steady-state II is limited by the branch.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 10);
        let top = b.label();
        b.bind(top);
        b.addi(x(1), x(1), -1);
        b.bnez(x(1), top);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![]);
        let r10 = Interpreter::new().run(&p, &mut port).unwrap();

        let mut b = ProgramBuilder::new();
        b.li(x(1), 20);
        let top = b.label();
        b.bind(top);
        b.addi(x(1), x(1), -1);
        b.bnez(x(1), top);
        b.halt();
        let p20 = b.build().unwrap();
        let r20 = Interpreter::new().run(&p20, &mut port).unwrap();

        // addi waits on its own previous result (int_latency 1), bnez
        // dual-issues, taken branch adds 2 to the next fetch: II = 3.
        let delta = r20.finish - r10.finish;
        assert_eq!(delta, Cycle::new(30), "10 extra iterations at II=3");
    }

    #[test]
    fn grant_hook_delays_memory_ops() {
        struct SlowPort {
            inner: VecPort,
            extra: u64,
        }
        impl MemoryPort for SlowPort {
            fn load(&mut self, addr: u64) -> Result<f64, PortError> {
                self.inner.load(addr)
            }
            fn store(&mut self, addr: u64, value: f64) -> Result<(), PortError> {
                self.inner.store(addr, value)
            }
            fn grant(&mut self, _addr: u64, at: Cycle) -> Cycle {
                at + Cycle::new(self.extra)
            }
        }
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fld(f(0), x(1), 0);
        b.fsd(f(0), x(1), 8);
        b.halt();
        let p = b.build().unwrap();

        let mut fast = VecPort::new(vec![1.0, 0.0]);
        let fast_finish = Interpreter::new().run(&p, &mut fast).unwrap().finish;

        let mut slow = SlowPort {
            inner: VecPort::new(vec![1.0, 0.0]),
            extra: 5,
        };
        let slow_finish = Interpreter::new().run(&p, &mut slow).unwrap().finish;
        assert!(slow_finish > fast_finish);
        assert_eq!(slow.inner.data()[1], 1.0);
    }

    #[test]
    fn paired_store_writes_both_words_in_one_access() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fld(f(0), x(1), 0);
        b.fld(f(1), x(1), 8);
        b.fsd_pair(f(0), f(1), x(1), 16);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![7.0, 8.0, 0.0, 0.0]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        assert_eq!(&port.data()[2..4], &[7.0, 8.0]);
        assert_eq!(report.mem_ops, 3); // two loads + one paired store
    }

    #[test]
    fn fuel_guard_stops_runaway_loops() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 1);
        let top = b.label();
        b.bind(top);
        b.bnez(x(1), top); // infinite
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![]);
        let mut timing = CoreTiming::snitch();
        timing.max_steps = 1000;
        let err = Interpreter::with_timing(timing)
            .run(&p, &mut port)
            .unwrap_err();
        assert!(matches!(err, ExecError::FuelExhausted { .. }));
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn port_fault_propagates() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 800); // out of range
        b.fld(f(0), x(1), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![0.0; 4]);
        let err = Interpreter::new().run(&p, &mut port).unwrap_err();
        assert!(matches!(err, ExecError::Port(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn run_from_offsets_all_timing() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.fld(f(0), x(1), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![1.0]);
        let base = Interpreter::new().run(&p, &mut port).unwrap().finish;
        let shifted = Interpreter::new()
            .run_from(&p, Cycle::new(100), &mut port)
            .unwrap()
            .finish;
        assert_eq!(shifted, base + Cycle::new(100));
    }

    #[test]
    fn ssr_streams_feed_fp_ops_without_explicit_loads() {
        // y[i] = a*x[i] + y[i] for 4 elements, entirely via streams:
        // stream 0 reads x, stream 1 reads y, stream 2 writes y.
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0); // x base
        b.li(x(2), 32); // y base
        b.ssr_cfg(0, x(1), 8, 4, false);
        b.ssr_cfg(1, x(2), 8, 4, false);
        b.ssr_cfg(2, x(2), 8, 4, true);
        b.fld(f(31), x(1), 64); // a at word 8
        b.ssr_enable();
        b.frep(4, 1);
        b.fmadd(f(2), f(31), f(0), f(1));
        b.ssr_disable();
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![
            1.0, 2.0, 3.0, 4.0, // x
            10.0, 20.0, 30.0, 40.0, // y
            2.0,  // a
        ]);
        let report = Interpreter::new().run(&p, &mut port).unwrap();
        assert_eq!(&port.data()[4..8], &[12.0, 24.0, 36.0, 48.0]);
        assert_eq!(report.fp_ops, 4, "one fmadd per frep iteration");
        assert_eq!(report.mem_ops, 1, "only the scalar load uses the LSU");
    }

    #[test]
    fn frep_fmadd_sustains_one_element_per_cycle() {
        let run_n = |n: u64| {
            let mut b = ProgramBuilder::new();
            b.li(x(1), 0);
            b.li(x(2), (n * 8) as i64);
            b.ssr_cfg(0, x(1), 8, n, false);
            b.ssr_cfg(1, x(2), 8, n, false);
            b.ssr_cfg(2, x(2), 8, n, true);
            b.fld(f(31), x(1), (2 * n * 8) as i64);
            b.ssr_enable();
            b.frep(n, 1);
            b.fmadd(f(2), f(31), f(0), f(1));
            b.ssr_disable();
            b.halt();
            let p = b.build().unwrap();
            let mut port = VecPort::new(vec![1.0; (2 * n + 1) as usize]);
            Interpreter::new()
                .run(&p, &mut port)
                .unwrap()
                .finish
                .as_u64()
        };
        let t100 = run_n(100);
        let t200 = run_n(200);
        assert_eq!(t200 - t100, 100, "streaming FMA must sustain II=1");
    }

    #[test]
    fn exhausted_stream_faults() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.ssr_cfg(0, x(1), 8, 1, false);
        b.ssr_enable();
        b.fadd(f(5), f(0), f(0)); // two pops from a 1-element stream
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![1.0; 4]);
        let err = Interpreter::new().run(&p, &mut port).unwrap_err();
        assert!(matches!(err, ExecError::Port(_)));
    }

    #[test]
    fn disabled_streams_are_plain_registers() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 0);
        b.ssr_cfg(0, x(1), 8, 4, false);
        // Not enabled: f0 is just a register (0.0).
        b.fadd(f(3), f(0), f(0));
        b.fsd(f(3), x(1), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut port = VecPort::new(vec![9.0; 2]);
        Interpreter::new().run(&p, &mut port).unwrap();
        assert_eq!(port.data()[0], 0.0);
    }

    #[test]
    fn frep_body_past_end_is_an_error() {
        // The builder now rejects this shape, so construct it raw: the
        // interpreter must still fault rather than run off the end.
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Frep {
                iterations: 3,
                body: 5,
            },
            MicroOp::Halt,
        ]);
        let mut port = VecPort::new(vec![]);
        let err = Interpreter::new().run(&p, &mut port).unwrap_err();
        assert!(matches!(err, ExecError::PcOutOfRange { .. }));
    }

    #[test]
    fn vec_port_misaligned_and_oob() {
        let mut p = VecPort::new(vec![0.0; 2]);
        assert!(p.load(4).is_err());
        assert!(p.load(16).is_err());
        assert!(p.store(16, 1.0).is_err());
        p.data_mut()[0] = 9.0;
        assert_eq!(p.load(0).unwrap(), 9.0);
    }
}
