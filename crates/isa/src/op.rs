//! Micro-op definitions and register names.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of integer registers.
pub const INT_REGS: u8 = 16;
/// Number of floating-point registers (Snitch-class cores have 32).
pub const FP_REGS: u8 = 32;

/// An integer register name (`x0`–`x15`).
///
/// Unlike RISC-V, `x0` is a normal register here; the micro-ISA has no
/// hardwired zero because immediates cover that use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IntReg(u8);

impl IntReg {
    /// Names register `x{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub const fn new(index: u8) -> Self {
        assert!(index < INT_REGS, "integer register index out of range");
        IntReg(index)
    }

    /// The register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point register name (`f0`–`f31`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FpReg(u8);

impl FpReg {
    /// Names register `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Self {
        assert!(index < FP_REGS, "fp register index out of range");
        FpReg(index)
    }

    /// The register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The execution pipe an op issues on.
///
/// The modeled core is a decoupled in-order design: one op per pipe may
/// issue per cycle, in program order (issue times are non-decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipeClass {
    /// Load/store unit: one TCDM access per cycle (a paired store moves
    /// two words in one access, modeling a 128-bit TCDM port).
    Mem,
    /// Floating-point unit (fully pipelined FMA).
    Fp,
    /// Integer ALU.
    Int,
    /// Branch unit.
    Ctrl,
}

/// One micro-operation.
///
/// Memory operands are byte addresses local to the executing cluster's
/// TCDM, formed as `base_register + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MicroOp {
    /// `rd <- imm`
    Li {
        /// Destination.
        rd: IntReg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd <- rs + imm`
    Addi {
        /// Destination.
        rd: IntReg,
        /// Source.
        rs: IntReg,
        /// Immediate addend.
        imm: i64,
    },
    /// `rd <- rs1 + rs2`
    Add {
        /// Destination.
        rd: IntReg,
        /// First source.
        rs1: IntReg,
        /// Second source.
        rs2: IntReg,
    },
    /// `fd <- mem[rs + offset]` (one 64-bit word)
    Fld {
        /// Destination.
        fd: FpReg,
        /// Base address register.
        rs: IntReg,
        /// Byte offset.
        offset: i64,
    },
    /// `mem[rs + offset] <- fs` (one 64-bit word)
    Fsd {
        /// Source.
        fs: FpReg,
        /// Base address register.
        rs: IntReg,
        /// Byte offset.
        offset: i64,
    },
    /// 128-bit paired store: `mem[rs+offset] <- fs1; mem[rs+offset+8] <- fs2`
    /// in a single TCDM access.
    FsdPair {
        /// First source (lower address).
        fs1: FpReg,
        /// Second source (upper address).
        fs2: FpReg,
        /// Base address register.
        rs: IntReg,
        /// Byte offset of the lower word.
        offset: i64,
    },
    /// `fd <- fa * fb + fc`
    Fmadd {
        /// Destination.
        fd: FpReg,
        /// Multiplicand.
        fa: FpReg,
        /// Multiplier.
        fb: FpReg,
        /// Addend.
        fc: FpReg,
    },
    /// `fd <- fa + fb`
    Fadd {
        /// Destination.
        fd: FpReg,
        /// First operand.
        fa: FpReg,
        /// Second operand.
        fb: FpReg,
    },
    /// `fd <- fa * fb`
    Fmul {
        /// Destination.
        fd: FpReg,
        /// First operand.
        fa: FpReg,
        /// Second operand.
        fb: FpReg,
    },
    /// Branch to `target` (an op index filled in by the builder) when
    /// `rs != 0`.
    Bnez {
        /// Condition register.
        rs: IntReg,
        /// Resolved target op index.
        target: usize,
    },
    /// Configures a stream semantic register (SSR): while streaming is
    /// enabled, reads of `f{stream}` pop successive elements from memory
    /// and writes push them, with no explicit load/store instructions —
    /// the Snitch cores' signature feature.
    SsrCfg {
        /// Stream index (0–2, aliasing `f0`–`f2`).
        stream: u8,
        /// Base-address register (byte address at configuration time).
        base: IntReg,
        /// Byte stride between elements.
        stride: i64,
        /// Number of elements the stream supplies/accepts.
        count: u64,
        /// `true` for a write (store) stream, `false` for a read stream.
        write: bool,
    },
    /// Enables SSR streaming (reads/writes of `f0`–`f2` become stream
    /// accesses).
    SsrEnable,
    /// Disables SSR streaming.
    SsrDisable,
    /// Hardware loop (FREP): repeats the next `body` ops `iterations`
    /// times with zero fetch/branch overhead.
    Frep {
        /// Total iterations (≥ 1).
        iterations: u64,
        /// Number of following ops forming the loop body (≥ 1).
        body: u8,
    },
    /// Stop execution.
    Halt,
}

impl MicroOp {
    /// The pipe this op issues on.
    pub fn pipe(self) -> PipeClass {
        match self {
            MicroOp::Li { .. }
            | MicroOp::Addi { .. }
            | MicroOp::Add { .. }
            | MicroOp::SsrCfg { .. }
            | MicroOp::SsrEnable
            | MicroOp::SsrDisable => PipeClass::Int,
            MicroOp::Fld { .. } | MicroOp::Fsd { .. } | MicroOp::FsdPair { .. } => PipeClass::Mem,
            MicroOp::Fmadd { .. } | MicroOp::Fadd { .. } | MicroOp::Fmul { .. } => PipeClass::Fp,
            MicroOp::Bnez { .. } | MicroOp::Frep { .. } | MicroOp::Halt => PipeClass::Ctrl,
        }
    }

    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        self.pipe() == PipeClass::Mem
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MicroOp::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            MicroOp::Addi { rd, rs, imm } => write!(f, "addi {rd}, {rs}, {imm}"),
            MicroOp::Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            MicroOp::Fld { fd, rs, offset } => write!(f, "fld {fd}, {offset}({rs})"),
            MicroOp::Fsd { fs, rs, offset } => write!(f, "fsd {fs}, {offset}({rs})"),
            MicroOp::FsdPair {
                fs1,
                fs2,
                rs,
                offset,
            } => write!(f, "fsdp {fs1}:{fs2}, {offset}({rs})"),
            MicroOp::Fmadd { fd, fa, fb, fc } => write!(f, "fmadd {fd}, {fa}, {fb}, {fc}"),
            MicroOp::Fadd { fd, fa, fb } => write!(f, "fadd {fd}, {fa}, {fb}"),
            MicroOp::Fmul { fd, fa, fb } => write!(f, "fmul {fd}, {fa}, {fb}"),
            MicroOp::Bnez { rs, target } => write!(f, "bnez {rs}, @{target}"),
            MicroOp::SsrCfg {
                stream,
                base,
                stride,
                count,
                write,
            } => write!(
                f,
                "ssr.cfg s{stream}, {base}, stride={stride}, count={count}, {}",
                if write { "write" } else { "read" }
            ),
            MicroOp::SsrEnable => write!(f, "ssr.enable"),
            MicroOp::SsrDisable => write!(f, "ssr.disable"),
            MicroOp::Frep { iterations, body } => write!(f, "frep {iterations}, body={body}"),
            MicroOp::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_construction_and_bounds() {
        assert_eq!(IntReg::new(0).index(), 0);
        assert_eq!(IntReg::new(15).index(), 15);
        assert_eq!(FpReg::new(31).index(), 31);
        assert_eq!(IntReg::new(3).to_string(), "x3");
        assert_eq!(FpReg::new(7).to_string(), "f7");
    }

    #[test]
    #[should_panic(expected = "integer register index")]
    fn int_reg_out_of_range() {
        let _ = IntReg::new(16);
    }

    #[test]
    #[should_panic(expected = "fp register index")]
    fn fp_reg_out_of_range() {
        let _ = FpReg::new(32);
    }

    #[test]
    fn pipe_classification() {
        let x = IntReg::new(1);
        let f = FpReg::new(1);
        assert_eq!(MicroOp::Li { rd: x, imm: 0 }.pipe(), PipeClass::Int);
        assert_eq!(
            MicroOp::Fld {
                fd: f,
                rs: x,
                offset: 0
            }
            .pipe(),
            PipeClass::Mem
        );
        assert_eq!(
            MicroOp::Fmadd {
                fd: f,
                fa: f,
                fb: f,
                fc: f
            }
            .pipe(),
            PipeClass::Fp
        );
        assert_eq!(MicroOp::Halt.pipe(), PipeClass::Ctrl);
        assert!(MicroOp::FsdPair {
            fs1: f,
            fs2: f,
            rs: x,
            offset: 0
        }
        .is_mem());
    }

    #[test]
    fn display_forms() {
        let x = IntReg::new(2);
        let f0 = FpReg::new(0);
        let f1 = FpReg::new(1);
        assert_eq!(
            MicroOp::Fld {
                fd: f0,
                rs: x,
                offset: 16
            }
            .to_string(),
            "fld f0, 16(x2)"
        );
        assert_eq!(
            MicroOp::FsdPair {
                fs1: f0,
                fs2: f1,
                rs: x,
                offset: 8
            }
            .to_string(),
            "fsdp f0:f1, 8(x2)"
        );
        assert_eq!(
            MicroOp::Bnez { rs: x, target: 4 }.to_string(),
            "bnez x2, @4"
        );
    }
}
