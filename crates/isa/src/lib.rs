//! # mpsoc-isa
//!
//! Micro-op ISA and cycle-accurate in-order core timing model for the
//! accelerator (Snitch-class) worker cores of the `mpsoc-offload`
//! simulator.
//!
//! Kernels are expressed as explicit [`Program`]s of [`MicroOp`]s —
//! loads, stores (including 128-bit paired stores), fused multiply-adds,
//! integer ops and branches — built with a [`ProgramBuilder`] that
//! resolves labels. The [`Interpreter`] executes a program against a
//! [`MemoryPort`] (the cluster TCDM), computing **both** the numerical
//! result on real `f64` data and the cycle-accurate issue schedule of a
//! decoupled in-order core with four pipes (LSU, FPU, ALU, branch unit).
//!
//! The calibrated DAXPY kernel in `mpsoc-kernels` reaches a steady-state
//! initiation interval of 26 cycles per 10 elements on this model —
//! the 2.6 cycles/element/core of the paper's Eq. 1 compute term.
//!
//! # Example
//!
//! ```
//! use mpsoc_isa::{FpReg, Interpreter, IntReg, MemoryPort, MicroOp, ProgramBuilder, VecPort};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y[0] = 2.0 * x[0]  with x[0] at byte 0 and y[0] at byte 8.
//! let mut b = ProgramBuilder::new();
//! let (x1, f0, f1, f2) = (IntReg::new(1), FpReg::new(0), FpReg::new(1), FpReg::new(2));
//! b.li(x1, 0);
//! b.fld(f0, x1, 0); // x[0]
//! b.fld(f1, x1, 8); // y[0]
//! b.fld(f2, x1, 16); // a
//! b.fmadd(f1, f2, f0, FpReg::new(3)); // f1 = a*x + 0
//! b.fsd(f1, x1, 8);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut port = VecPort::new(vec![3.0, 0.0, 2.0, 0.0]);
//! let report = Interpreter::new().run(&program, &mut port)?;
//! assert_eq!(port.data()[1], 6.0);
//! assert!(report.finish.as_u64() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod op;
mod program;

pub use exec::{CoreTiming, ExecError, ExecReport, Interpreter, MemoryPort, PortError, VecPort};
pub use op::{FpReg, IntReg, MicroOp, PipeClass, FP_REGS, INT_REGS};
pub use program::{BuildError, Label, ListingNote, Program, ProgramBuilder};
