//! Programs and the label-resolving builder.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{FpReg, IntReg, MicroOp};

/// A forward-referenceable jump target handed out by
/// [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An error from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A label was referenced by a branch but never bound.
    UnboundLabel {
        /// The label's internal id.
        label: usize,
    },
    /// The program has no terminating `halt` on its fall-through path.
    MissingHalt,
    /// The program is empty.
    Empty,
    /// A `frep` op asks for zero iterations.
    FrepZeroIterations {
        /// Index of the offending `frep`.
        op: usize,
    },
    /// A `frep` op has an empty body.
    FrepEmptyBody {
        /// Index of the offending `frep`.
        op: usize,
    },
    /// A `frep` body extends past the end of the program.
    FrepBodyOutOfRange {
        /// Index of the offending `frep`.
        op: usize,
        /// Index of the last body op it claims.
        body_end: usize,
        /// Program length.
        len: usize,
    },
    /// A branch targets the interior of a `frep` body (hardware loops
    /// cannot be entered sideways; branch to the `frep` op itself).
    BranchIntoFrepBody {
        /// Index of the offending branch.
        op: usize,
        /// Its resolved target.
        target: usize,
        /// Index of the `frep` whose body the target falls into.
        frep: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { label } => {
                write!(f, "label {label} referenced but never bound")
            }
            BuildError::MissingHalt => write!(f, "program does not end in halt"),
            BuildError::Empty => write!(f, "program is empty"),
            BuildError::FrepZeroIterations { op } => {
                write!(f, "frep at op {op} has zero iterations")
            }
            BuildError::FrepEmptyBody { op } => write!(f, "frep at op {op} has an empty body"),
            BuildError::FrepBodyOutOfRange { op, body_end, len } => write!(
                f,
                "frep at op {op} claims a body ending at op {body_end}, past the program end ({len} ops)"
            ),
            BuildError::BranchIntoFrepBody { op, target, frep } => write!(
                f,
                "branch at op {op} targets op {target}, inside the body of the frep at op {frep}"
            ),
        }
    }
}

impl Error for BuildError {}

/// A validated, executable sequence of micro-ops.
///
/// Construct with [`ProgramBuilder`]; a `Program` always ends in
/// [`MicroOp::Halt`] and all branch targets are resolved in-range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<MicroOp>,
}

/// One annotation attached to a [`Program::listing_annotated`] listing:
/// a note rendered under the op it refers to (or at the top of the
/// listing when `op` is `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingNote {
    /// The op index the note refers to, if any.
    pub op: Option<usize>,
    /// The note text, e.g. `"L004 error: ssr.cfg while streaming"`.
    pub text: String,
}

impl Program {
    /// Wraps raw ops into a `Program` **without** running the builder's
    /// validation.
    ///
    /// Exists for analysis tooling and tests that need deliberately
    /// malformed programs (unterminated, invalid `frep` geometry, …);
    /// executing such a program may fail with
    /// [`ExecError`](crate::ExecError). Regular code should always go
    /// through [`ProgramBuilder`].
    pub fn from_ops_unchecked(ops: Vec<MicroOp>) -> Self {
        Program { ops }
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program has no ops (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Renders a human-readable listing.
    pub fn listing(&self) -> String {
        self.listing_annotated(&[])
    }

    /// Renders a listing with `notes` interleaved: program-level notes
    /// (`op: None`) come first, per-op notes directly under their op —
    /// the format lint reports use so CI logs stay readable.
    pub fn listing_annotated(&self, notes: &[ListingNote]) -> String {
        let mut out = String::new();
        for note in notes.iter().filter(|n| n.op.is_none()) {
            out.push_str(&format!("       ! {}\n", note.text));
        }
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("{i:>5}: {op}\n"));
            for note in notes.iter().filter(|n| n.op == Some(i)) {
                out.push_str(&format!("       ^ {}\n", note.text));
            }
        }
        out
    }
}

/// Incrementally builds a [`Program`], resolving forward branch labels.
///
/// # Example
///
/// ```
/// use mpsoc_isa::{IntReg, ProgramBuilder};
///
/// # fn main() -> Result<(), mpsoc_isa::BuildError> {
/// let mut b = ProgramBuilder::new();
/// let x1 = IntReg::new(1);
/// b.li(x1, 3);
/// let top = b.label();
/// b.bind(top);
/// b.addi(x1, x1, -1);
/// b.bnez(x1, top); // loop three times
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<MicroOp>,
    /// For each label id: the op index it is bound to, if bound.
    labels: Vec<Option<usize>>,
    /// `(op_index, label_id)` pairs to patch at build time.
    fixups: Vec<(usize, usize)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no ops have been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted op.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.ops.len());
    }

    /// Emits a raw op.
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: IntReg, imm: i64) {
        self.push(MicroOp::Li { rd, imm });
    }

    /// Emits `addi rd, rs, imm`.
    pub fn addi(&mut self, rd: IntReg, rs: IntReg, imm: i64) {
        self.push(MicroOp::Addi { rd, rs, imm });
    }

    /// Emits `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(MicroOp::Add { rd, rs1, rs2 });
    }

    /// Emits `fld fd, offset(rs)`.
    pub fn fld(&mut self, fd: FpReg, rs: IntReg, offset: i64) {
        self.push(MicroOp::Fld { fd, rs, offset });
    }

    /// Emits `fsd fs, offset(rs)`.
    pub fn fsd(&mut self, fs: FpReg, rs: IntReg, offset: i64) {
        self.push(MicroOp::Fsd { fs, rs, offset });
    }

    /// Emits a 128-bit paired store.
    pub fn fsd_pair(&mut self, fs1: FpReg, fs2: FpReg, rs: IntReg, offset: i64) {
        self.push(MicroOp::FsdPair {
            fs1,
            fs2,
            rs,
            offset,
        });
    }

    /// Emits `fmadd fd, fa, fb, fc` (`fd = fa*fb + fc`).
    pub fn fmadd(&mut self, fd: FpReg, fa: FpReg, fb: FpReg, fc: FpReg) {
        self.push(MicroOp::Fmadd { fd, fa, fb, fc });
    }

    /// Emits `fadd fd, fa, fb`.
    pub fn fadd(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) {
        self.push(MicroOp::Fadd { fd, fa, fb });
    }

    /// Emits `fmul fd, fa, fb`.
    pub fn fmul(&mut self, fd: FpReg, fa: FpReg, fb: FpReg) {
        self.push(MicroOp::Fmul { fd, fa, fb });
    }

    /// Emits `bnez rs, label` (target patched at build time).
    pub fn bnez(&mut self, rs: IntReg, label: Label) {
        self.fixups.push((self.ops.len(), label.0));
        self.push(MicroOp::Bnez { rs, target: 0 });
    }

    /// Emits an SSR stream configuration.
    ///
    /// # Panics
    ///
    /// Panics if `stream >= 3`.
    pub fn ssr_cfg(&mut self, stream: u8, base: IntReg, stride: i64, count: u64, write: bool) {
        assert!(stream < 3, "only streams 0-2 exist");
        self.push(MicroOp::SsrCfg {
            stream,
            base,
            stride,
            count,
            write,
        });
    }

    /// Emits `ssr.enable`.
    pub fn ssr_enable(&mut self) {
        self.push(MicroOp::SsrEnable);
    }

    /// Emits `ssr.disable`.
    pub fn ssr_disable(&mut self) {
        self.push(MicroOp::SsrDisable);
    }

    /// Emits `frep iterations, body` (hardware loop over the next `body`
    /// ops).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` or `body` is zero.
    pub fn frep(&mut self, iterations: u64, body: u8) {
        assert!(iterations > 0, "frep needs at least one iteration");
        assert!(body > 0, "frep body cannot be empty");
        self.push(MicroOp::Frep { iterations, body });
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.push(MicroOp::Halt);
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// - [`BuildError::Empty`] for an empty program,
    /// - [`BuildError::MissingHalt`] when the last op is not `halt`,
    /// - [`BuildError::UnboundLabel`] when a branch references an unbound
    ///   label,
    /// - [`BuildError::FrepZeroIterations`], [`BuildError::FrepEmptyBody`]
    ///   and [`BuildError::FrepBodyOutOfRange`] for malformed hardware
    ///   loops (possible via [`ProgramBuilder::push`], which skips the
    ///   [`ProgramBuilder::frep`] assertions),
    /// - [`BuildError::BranchIntoFrepBody`] when a branch resolves into
    ///   the interior of a `frep` body.
    pub fn build(mut self) -> Result<Program, BuildError> {
        if self.ops.is_empty() {
            return Err(BuildError::Empty);
        }
        if !matches!(self.ops.last(), Some(MicroOp::Halt)) {
            return Err(BuildError::MissingHalt);
        }
        for &(op_index, label_id) in &self.fixups {
            let target =
                self.labels[label_id].ok_or(BuildError::UnboundLabel { label: label_id })?;
            if let MicroOp::Bnez { target: t, .. } = &mut self.ops[op_index] {
                *t = target;
            }
        }
        // Hardware-loop geometry: every frep body must be non-empty and
        // lie fully inside the program, and no branch may land in a
        // body's interior (re-entering a hardware loop sideways).
        let len = self.ops.len();
        let freps: Vec<(usize, usize)> = self
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match *op {
                MicroOp::Frep { iterations, body } => Some((i, iterations, body)),
                _ => None,
            })
            .map(|(i, iterations, body)| {
                if iterations == 0 {
                    return Err(BuildError::FrepZeroIterations { op: i });
                }
                if body == 0 {
                    return Err(BuildError::FrepEmptyBody { op: i });
                }
                let body_end = i + body as usize;
                if body_end >= len {
                    return Err(BuildError::FrepBodyOutOfRange {
                        op: i,
                        body_end,
                        len,
                    });
                }
                Ok((i, body_end))
            })
            .collect::<Result<_, _>>()?;
        for (op_index, op) in self.ops.iter().enumerate() {
            let MicroOp::Bnez { target, .. } = *op else {
                continue;
            };
            if let Some(&(frep, _)) = freps
                .iter()
                .find(|&&(i, body_end)| target > i && target <= body_end)
            {
                return Err(BuildError::BranchIntoFrepBody {
                    op: op_index,
                    target,
                    frep,
                });
            }
        }
        Ok(Program { ops: self.ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let x = IntReg::new(0);
        let skip = b.label(); // forward
        b.li(x, 1);
        b.bnez(x, skip);
        b.addi(x, x, 7); // skipped
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        match p.ops()[1] {
            MicroOp::Bnez { target, .. } => assert_eq!(target, 3),
            ref other => panic!("expected bnez, got {other}"),
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(ProgramBuilder::new().build(), Err(BuildError::Empty));
    }

    #[test]
    fn missing_halt_rejected() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(0), 1);
        assert_eq!(b.build(), Err(BuildError::MissingHalt));
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bnez(IntReg::new(0), l);
        b.halt();
        assert_eq!(b.build(), Err(BuildError::UnboundLabel { label: 0 }));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn listing_is_readable() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(1), 5);
        b.halt();
        let p = b.build().unwrap();
        let text = p.listing();
        assert!(text.contains("0: li x1, 5"));
        assert!(text.contains("1: halt"));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn errors_display() {
        assert!(BuildError::Empty.to_string().contains("empty"));
        assert!(BuildError::MissingHalt.to_string().contains("halt"));
        assert!(BuildError::UnboundLabel { label: 3 }
            .to_string()
            .contains("3"));
        assert!(BuildError::FrepZeroIterations { op: 2 }
            .to_string()
            .contains("zero iterations"));
        assert!(BuildError::FrepEmptyBody { op: 2 }
            .to_string()
            .contains("empty body"));
        assert!(BuildError::FrepBodyOutOfRange {
            op: 0,
            body_end: 5,
            len: 2
        }
        .to_string()
        .contains("past the program end"));
        assert!(BuildError::BranchIntoFrepBody {
            op: 4,
            target: 2,
            frep: 1
        }
        .to_string()
        .contains("inside the body"));
    }

    #[test]
    fn frep_zero_iterations_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(MicroOp::Frep {
            iterations: 0,
            body: 1,
        });
        b.fadd(FpReg::new(3), FpReg::new(3), FpReg::new(3));
        b.halt();
        assert_eq!(b.build(), Err(BuildError::FrepZeroIterations { op: 0 }));
    }

    #[test]
    fn frep_empty_body_rejected() {
        let mut b = ProgramBuilder::new();
        b.push(MicroOp::Frep {
            iterations: 4,
            body: 0,
        });
        b.halt();
        assert_eq!(b.build(), Err(BuildError::FrepEmptyBody { op: 0 }));
    }

    #[test]
    fn frep_body_out_of_range_rejected() {
        let mut b = ProgramBuilder::new();
        b.frep(3, 5); // body would cover ops 1..=5, but only op 1 exists
        b.halt();
        assert_eq!(
            b.build(),
            Err(BuildError::FrepBodyOutOfRange {
                op: 0,
                body_end: 5,
                len: 2
            })
        );
    }

    #[test]
    fn branch_into_frep_body_rejected() {
        let mut b = ProgramBuilder::new();
        let x = IntReg::new(1);
        b.li(x, 3); // 0
        let mid = b.label();
        b.frep(2, 2); // 1: body = ops 2..=3
        b.bind(mid); // binds to op 2, inside the body
        b.fadd(FpReg::new(3), FpReg::new(3), FpReg::new(3)); // 2
        b.fadd(FpReg::new(4), FpReg::new(4), FpReg::new(4)); // 3
        b.bnez(x, mid); // 4
        b.halt(); // 5
        assert_eq!(
            b.build(),
            Err(BuildError::BranchIntoFrepBody {
                op: 4,
                target: 2,
                frep: 1
            })
        );
    }

    #[test]
    fn branch_to_frep_op_itself_is_fine() {
        let mut b = ProgramBuilder::new();
        let x = IntReg::new(1);
        b.li(x, 3); // 0
        let top = b.label();
        b.bind(top); // op 1: the frep itself — a legal re-entry point
        b.frep(2, 1); // 1
        b.fadd(FpReg::new(3), FpReg::new(3), FpReg::new(3)); // 2
        b.addi(x, x, -1); // 3
        b.bnez(x, top); // 4
        b.halt(); // 5
        assert!(b.build().is_ok());
    }

    #[test]
    fn listing_annotated_interleaves_notes() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(1), 5);
        b.halt();
        let p = b.build().unwrap();
        let notes = vec![
            ListingNote {
                op: None,
                text: "program-level note".to_string(),
            },
            ListingNote {
                op: Some(1),
                text: "L999 something about halt".to_string(),
            },
        ];
        let text = p.listing_annotated(&notes);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("! program-level note"));
        assert!(lines[1].contains("0: li x1, 5"));
        assert!(lines[2].contains("1: halt"));
        assert!(lines[3].contains("^ L999 something about halt"));
        // Un-annotated listing is unchanged.
        assert_eq!(p.listing(), p.listing_annotated(&[]));
    }
}
