//! Property tests: the linter is total (never panics, even on garbage
//! op sequences that bypass builder validation) and structurally honest
//! (no false positives on invariants the builder already enforces).

use proptest::prelude::*;

use mpsoc_isa::{FpReg, IntReg, MicroOp, Program, ProgramBuilder};
use mpsoc_lint::{lint_program, DiagCode, LintContext};

/// Decodes one arbitrary — possibly malformed — op from fuzz bytes.
/// Branch targets, FREP geometry and stream indices are unconstrained,
/// so this exercises every structural-diagnostic path.
fn arbitrary_op(kind: u8, a: u8, b: u8, c: u8) -> MicroOp {
    let xr = |v: u8| IntReg::new(v % 16);
    let fr = |v: u8| FpReg::new(v % 32);
    match kind % 12 {
        0 => MicroOp::Li {
            rd: xr(a),
            imm: i64::from(b) * 8 - 64,
        },
        1 => MicroOp::Addi {
            rd: xr(a),
            rs: xr(b),
            imm: i64::from(c) - 128,
        },
        2 => MicroOp::Add {
            rd: xr(a),
            rs1: xr(b),
            rs2: xr(c),
        },
        3 => MicroOp::Fld {
            fd: fr(a),
            rs: xr(b),
            offset: i64::from(c) * 4 - 256,
        },
        4 => MicroOp::Fsd {
            fs: fr(a),
            rs: xr(b),
            offset: i64::from(c) * 4 - 256,
        },
        5 => MicroOp::Fmadd {
            fd: fr(a),
            fa: fr(b),
            fb: fr(c),
            fc: fr(a.wrapping_add(1)),
        },
        6 => MicroOp::Fadd {
            fd: fr(a),
            fa: fr(b),
            fb: fr(c),
        },
        7 => MicroOp::Bnez {
            rs: xr(a),
            target: usize::from(b), // may be far out of range
        },
        8 => MicroOp::SsrCfg {
            stream: a % 5, // may name a stream that does not exist
            base: xr(b),
            stride: i64::from(c) - 64,
            count: u64::from(b),
            write: a % 2 == 0,
        },
        9 => MicroOp::SsrEnable,
        10 => MicroOp::SsrDisable,
        _ => MicroOp::Frep {
            iterations: u64::from(a % 8),
            body: b % 8, // may be zero or reach past the end
        },
    }
}

/// A structurally-valid straight-line-with-loops program, mirroring the
/// invariants `ProgramBuilder::build` enforces.
fn valid_program(ops: &[u8]) -> Program {
    let mut b = ProgramBuilder::new();
    let base = IntReg::new(1);
    b.li(base, 0);
    for (i, &op) in ops.iter().enumerate() {
        let offset = ((i * 7 + op as usize) % 32 * 8) as i64;
        let fa = FpReg::new(op % 8 + 3);
        let fb = FpReg::new(op / 8 % 8 + 3);
        match op % 6 {
            0 => b.fld(fa, base, offset),
            1 => b.fsd(fa, base, offset),
            2 => b.fmadd(fa, fb, fa, fb),
            3 => b.fadd(fa, fa, fb),
            4 => {
                // A well-formed hardware loop.
                b.frep(u64::from(op % 4) + 1, 1);
                b.fadd(fa, fa, fa);
            }
            _ => b.addi(IntReg::new(2), IntReg::new(2), 1),
        }
    }
    b.halt();
    b.build().expect("well-formed by construction")
}

/// Unpacks fuzz words into ops (the shim's `Arbitrary` covers scalars,
/// not tuples, so each op is encoded in one `u32`).
fn decode_ops(raw: &[u32]) -> Vec<MicroOp> {
    raw.iter()
        .map(|w| {
            let [k, a, b, c] = w.to_le_bytes();
            arbitrary_op(k, a, b, c)
        })
        .collect()
}

proptest! {
    /// Totality: arbitrary op soup — malformed freps, wild branches,
    /// nonexistent streams — must produce diagnostics, never a panic.
    #[test]
    fn linter_never_panics_on_arbitrary_ops(
        raw in prop::collection::vec(any::<u32>(), 0..120),
    ) {
        let program = Program::from_ops_unchecked(decode_ops(&raw));
        let report = lint_program(&program, &LintContext::manticore());
        // The report must also render without panicking.
        let _ = report.annotate(&program);
        let _ = report.to_string();
    }

    /// No structural false positives: programs that passed builder
    /// validation can never trip the invariants the builder enforces
    /// (branch sanity, FREP geometry, stream indices).
    #[test]
    fn builder_valid_programs_have_no_structural_findings(
        ops in prop::collection::vec(any::<u8>(), 1..150),
    ) {
        let program = valid_program(&ops);
        let report = lint_program(&program, &LintContext::manticore());
        for d in &report.diagnostics {
            prop_assert!(
                !matches!(
                    d.code,
                    DiagCode::BranchIntoFrep
                        | DiagCode::FrepGeometry
                        | DiagCode::BranchOutOfRange
                        | DiagCode::SsrBadStream
                ),
                "builder-validated program tripped {}: {}",
                d.code,
                d.message
            );
        }
    }

    /// Sanity under fuzz: a linted-clean random program really has every
    /// read dominated by a write (spot-check the dataflow claim by
    /// asserting cleanliness is stable under re-linting).
    #[test]
    fn linting_is_deterministic(
        raw in prop::collection::vec(any::<u32>(), 0..80),
    ) {
        let program = Program::from_ops_unchecked(decode_ops(&raw));
        let cx = LintContext::manticore();
        prop_assert_eq!(lint_program(&program, &cx), lint_program(&program, &cx));
    }
}
