//! The linter must pass the entire kernel zoo with zero findings: every
//! kernel, every per-core slice, across sizes that exercise remainder
//! handling, software-pipeline prologues and halo geometry.

use mpsoc_kernels::{
    Axpby, Daxpy, DaxpySsr, Dot, Gemv, Kernel, Memset, Scale, Stencil3, Sum, VecAdd,
};
use mpsoc_lint::descriptor::{lint_core_tiles, reference_slices};
use mpsoc_lint::{lint_program, LintContext};

const SIZES: [u64; 5] = [1, 7, 10, 64, 250];
const CORES: usize = 8;

fn zoo() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Daxpy::new(2.0)),
        Box::new(DaxpySsr::new(2.0)),
        Box::new(Axpby::new(1.5, -0.5)),
        Box::new(Scale::new(3.0)),
        Box::new(VecAdd::new()),
        Box::new(Memset::new(7.0)),
        Box::new(Dot::new()),
        Box::new(Sum::new()),
        Box::new(Gemv::new(vec![1.0, 2.0, 3.0])),
        Box::new(Stencil3::new(0.25, 0.5, 0.25)),
    ]
}

#[test]
fn every_zoo_kernel_lints_clean_on_every_slice() {
    let cx = LintContext::manticore();
    for kernel in zoo() {
        for elems in SIZES {
            for slice in reference_slices(kernel.as_ref(), elems, CORES) {
                if slice.elems == 0 {
                    // Empty slices legitimately skip their loop; their
                    // preamble is dead by design.
                    continue;
                }
                let program = kernel.codegen(&slice).expect("codegen");
                let report = lint_program(&program, &cx);
                assert!(
                    report.is_clean(),
                    "{} (elems={elems}, core={}):\n{}",
                    kernel.name(),
                    slice.core_index,
                    report.annotate(&program)
                );
            }
        }
    }
}

#[test]
fn every_zoo_kernel_partitions_without_tile_races() {
    for kernel in zoo() {
        for elems in SIZES {
            let slices = reference_slices(kernel.as_ref(), elems, CORES);
            let diags = lint_core_tiles(kernel.as_ref(), &slices);
            assert!(
                diags.is_empty(),
                "{} (elems={elems}): {diags:?}",
                kernel.name()
            );
        }
    }
}
