//! JSON program fixtures: known-good programs checked into the repo that
//! must lint clean forever, plus seeded-violation checks proving the
//! linter (and therefore CI) actually fails when a protocol bug is
//! introduced.
//!
//! Regenerate the fixture files after an intentional codegen change with:
//!
//! ```text
//! cargo test -p mpsoc-lint --test fixtures -- --ignored regenerate
//! ```

use std::fs;
use std::path::PathBuf;

use mpsoc_isa::{MicroOp, Program};
use mpsoc_kernels::{Daxpy, DaxpySsr, Dot, Kernel, Stencil3};
use mpsoc_lint::descriptor::reference_slices;
use mpsoc_lint::{lint_program, DiagCode, LintContext};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// The fixture set: one representative per codegen style — plain loop,
/// SSR+FREP streaming, reduction, and halo-addressing stencil.
fn fixture_kernels() -> Vec<(&'static str, Box<dyn Kernel>)> {
    vec![
        ("daxpy", Box::new(Daxpy::new(2.0)) as Box<dyn Kernel>),
        ("daxpy_ssr", Box::new(DaxpySsr::new(2.0))),
        ("dot", Box::new(Dot::new())),
        ("stencil3", Box::new(Stencil3::new(0.25, 0.5, 0.25))),
    ]
}

fn fixture_program(kernel: &dyn Kernel) -> Program {
    // Core 0 of an 8-core cluster over 64 elements: big enough to get a
    // steady-state loop, small enough to stay readable in the JSON.
    let slices = reference_slices(kernel, 64, 8);
    kernel.codegen(&slices[0]).expect("codegen")
}

#[test]
fn all_fixtures_lint_clean() {
    let cx = LintContext::manticore();
    let dir = fixtures_dir();
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        seen += 1;
        let text = fs::read_to_string(&path).expect("read fixture");
        let program: Program = serde_json::from_str(&text).expect("parse fixture");
        let report = lint_program(&program, &cx);
        assert!(
            report.is_clean(),
            "{}:\n{}",
            path.display(),
            report.annotate(&program)
        );
    }
    assert_eq!(seen, fixture_kernels().len(), "missing fixture files");
}

#[test]
fn fixtures_match_current_codegen() {
    for (name, kernel) in fixture_kernels() {
        let path = fixtures_dir().join(format!("{name}.json"));
        let text = fs::read_to_string(&path).expect("read fixture");
        let stored: Program = serde_json::from_str(&text).expect("parse fixture");
        assert_eq!(
            stored,
            fixture_program(kernel.as_ref()),
            "{name}.json is stale; regenerate with \
             `cargo test -p mpsoc-lint --test fixtures -- --ignored regenerate`"
        );
    }
}

/// The CI failure mode the issue demands: seed an `ssr.cfg` between
/// `ssr.enable` and `ssr.disable` in a known-good program and the linter
/// must reject it with L004.
#[test]
fn seeded_ssr_cfg_while_enabled_is_caught() {
    let text = fs::read_to_string(fixtures_dir().join("daxpy_ssr.json")).expect("fixture");
    let program: Program = serde_json::from_str(&text).expect("parse fixture");
    assert!(lint_program(&program, &LintContext::manticore()).is_clean());

    let mut ops = program.ops().to_vec();
    let enable = ops
        .iter()
        .position(|op| matches!(op, MicroOp::SsrEnable))
        .expect("fixture streams");
    let reconfig = ops[enable - 1]; // the last pre-enable ssr.cfg
    assert!(matches!(reconfig, MicroOp::SsrCfg { .. }));
    ops.insert(enable + 1, reconfig);

    let broken = Program::from_ops_unchecked(ops);
    let report = lint_program(&broken, &LintContext::manticore());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::SsrCfgWhileEnabled),
        "seeded violation was not caught:\n{}",
        report.annotate(&broken)
    );
    assert!(report.has_errors());
}

/// A second seeded violation at the descriptor level: shrinking TCDM out
/// from under a linted program flips bounds checks to L010.
#[test]
fn seeded_tcdm_shrink_is_caught() {
    let text = fs::read_to_string(fixtures_dir().join("daxpy.json")).expect("fixture");
    let program: Program = serde_json::from_str(&text).expect("parse fixture");
    let tiny = LintContext {
        tcdm_words: 64,
        ..LintContext::manticore()
    };
    let report = lint_program(&program, &tiny);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::TcdmOutOfBounds),
        "{}",
        report.annotate(&program)
    );
}

#[test]
#[ignore = "writes fixture files; run after intentional codegen changes"]
fn regenerate() {
    let dir = fixtures_dir();
    fs::create_dir_all(&dir).expect("create fixtures dir");
    for (name, kernel) in fixture_kernels() {
        let program = fixture_program(kernel.as_ref());
        let report = lint_program(&program, &LintContext::manticore());
        assert!(
            report.is_clean(),
            "refusing to store a dirty fixture for {name}:\n{}",
            report.annotate(&program)
        );
        let json = serde_json::to_string_pretty(&program).expect("serialize");
        fs::write(dir.join(format!("{name}.json")), json + "\n").expect("write fixture");
    }
}
