//! Control-flow graph over a micro-op program, and the structural lints
//! that fall out of it (reachability, branch sanity, FREP geometry).

use mpsoc_isa::{MicroOp, PipeClass, Program};

use crate::diag::{DiagCode, Diagnostic};
use crate::{Lint, LintContext};

/// A hardware loop's extent: the `frep` op and its body `frep+1..=end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrepExtent {
    /// Index of the `frep` op itself.
    pub frep: usize,
    /// Index of the last body op (inclusive).
    pub body_end: usize,
    /// Iteration count.
    pub iterations: u64,
}

/// The control-flow graph: per-op successors plus derived structure.
///
/// Built once per lint run and shared by every dataflow pass. Edges:
///
/// - straight-line ops fall through to `pc + 1`;
/// - `bnez` adds an edge to its (in-range) target;
/// - the last op of a (well-formed) `frep` body adds a back edge to the
///   body start, modeling loop repetition;
/// - `halt` has no successors.
///
/// Malformed structure (out-of-range branches, bad FREP geometry) is
/// recorded in [`Cfg::structural`] rather than panicking, so the linter
/// stays total over arbitrary [`Program::from_ops_unchecked`] input.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor op indices, per op.
    pub succs: Vec<Vec<usize>>,
    /// Whether each op is reachable from op 0.
    pub reachable: Vec<bool>,
    /// Every well-formed hardware loop.
    pub freps: Vec<FrepExtent>,
    /// For each op: the index into [`Cfg::freps`] of the body containing
    /// it, if any.
    pub frep_body_of: Vec<Option<usize>>,
    /// Structural findings discovered during construction (L008, L009,
    /// L015).
    pub structural: Vec<Diagnostic>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    pub fn build(program: &Program) -> Self {
        let ops = program.ops();
        let len = ops.len();
        let mut structural = Vec::new();

        // Well-formed hardware loops; malformed ones get L009 and no
        // body edges (their `frep` op just falls through).
        let mut freps = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let MicroOp::Frep { iterations, body } = *op else {
                continue;
            };
            if iterations == 0 || body == 0 || i + body as usize >= len {
                structural.push(Diagnostic::at(
                    DiagCode::FrepGeometry,
                    i,
                    format!(
                        "malformed frep: iterations={iterations}, body={body}, program len={len}"
                    ),
                ));
                continue;
            }
            freps.push(FrepExtent {
                frep: i,
                body_end: i + body as usize,
                iterations,
            });
        }
        let mut frep_body_of = vec![None; len];
        for (fi, ext) in freps.iter().enumerate() {
            for slot in &mut frep_body_of[ext.frep + 1..=ext.body_end] {
                // Overlapping bodies: the innermost (latest) frep wins;
                // the overlap itself surfaces as L007 (a `frep` op is
                // not an FP op).
                *slot = Some(fi);
            }
        }

        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(len);
        for (i, op) in ops.iter().enumerate() {
            let mut s = Vec::with_capacity(2);
            match *op {
                MicroOp::Halt => {}
                MicroOp::Bnez { target, .. } => {
                    if i + 1 < len {
                        s.push(i + 1);
                    }
                    if target < len {
                        s.push(target);
                        if let Some(ext) = freps
                            .iter()
                            .find(|e| target > e.frep && target <= e.body_end)
                        {
                            structural.push(Diagnostic::at(
                                DiagCode::BranchIntoFrep,
                                i,
                                format!(
                                    "branch targets op {target}, inside the body of the frep \
                                     at op {}",
                                    ext.frep
                                ),
                            ));
                        }
                    } else {
                        structural.push(Diagnostic::at(
                            DiagCode::BranchOutOfRange,
                            i,
                            format!("branch targets op {target}, past the program end ({len} ops)"),
                        ));
                    }
                }
                _ => {
                    if i + 1 < len {
                        s.push(i + 1);
                    }
                }
            }
            // Loop back edge from the end of a frep body to its start.
            if let Some(fi) = frep_body_of[i] {
                let ext = freps[fi];
                if i == ext.body_end && ext.iterations > 1 {
                    s.push(ext.frep + 1);
                }
            }
            succs.push(s);
        }

        // Reachability from entry.
        let mut reachable = vec![false; len];
        if len > 0 {
            let mut stack = vec![0usize];
            while let Some(i) = stack.pop() {
                if std::mem::replace(&mut reachable[i], true) {
                    continue;
                }
                stack.extend(succs[i].iter().copied().filter(|&s| !reachable[s]));
            }
        }

        Cfg {
            succs,
            reachable,
            freps,
            frep_body_of,
            structural,
        }
    }
}

/// Structural lint: reachability (L003), FREP body content (L007), plus
/// the CFG construction findings (L008, L009, L015).
#[derive(Debug, Default, Clone, Copy)]
pub struct CfgLint;

impl Lint for CfgLint {
    fn name(&self) -> &'static str {
        "cfg"
    }

    fn run(&self, program: &Program, _cx: &LintContext, out: &mut Vec<Diagnostic>) {
        let cfg = Cfg::build(program);
        out.extend(cfg.structural.iter().cloned());

        // Unreachable ops, reported as contiguous runs.
        let ops = program.ops();
        let mut i = 0;
        while i < ops.len() {
            if cfg.reachable[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < ops.len() && !cfg.reachable[i] {
                i += 1;
            }
            let msg = if i - start == 1 {
                format!("op {start} is unreachable")
            } else {
                format!("ops {start}..={} are unreachable", i - 1)
            };
            out.push(Diagnostic::at(DiagCode::UnreachableOp, start, msg));
        }

        // FREP bodies must contain only FPU ops: the hardware loop
        // buffer replays FPU instructions, so anything else (memory,
        // integer, control — including a nested frep) is invalid.
        for ext in &cfg.freps {
            for (j, op) in ops
                .iter()
                .enumerate()
                .take(ext.body_end + 1)
                .skip(ext.frep + 1)
            {
                if op.pipe() != PipeClass::Fp {
                    out.push(Diagnostic::at(
                        DiagCode::FrepNonFpBody,
                        j,
                        format!(
                            "`{op}` is not an FPU op but sits in the body of the frep at op {}",
                            ext.frep
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{FpReg, IntReg, ProgramBuilder};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        CfgLint.run(p, &LintContext::manticore(), &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn straight_line_program_is_structurally_clean() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::new(1), 0);
        b.fld(FpReg::new(3), IntReg::new(1), 0);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn loops_reach_everything() {
        let mut b = ProgramBuilder::new();
        let x = IntReg::new(1);
        b.li(x, 3);
        let top = b.label();
        b.bind(top);
        b.addi(x, x, -1);
        b.bnez(x, top);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn code_after_an_unconditional_skip_is_unreachable() {
        // bnez is conditional so everything stays reachable; use ops
        // after halt instead.
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Halt,
            MicroOp::Li {
                rd: IntReg::new(1),
                imm: 0,
            },
            MicroOp::Li {
                rd: IntReg::new(2),
                imm: 0,
            },
        ]);
        let diags = lint(&p);
        assert_eq!(codes(&diags), vec![DiagCode::UnreachableOp]);
        assert!(diags[0].message.contains("1..=2"));
    }

    #[test]
    fn frep_with_fp_body_is_clean_and_registered() {
        let mut b = ProgramBuilder::new();
        b.frep(4, 1);
        b.fadd(FpReg::new(3), FpReg::new(3), FpReg::new(3));
        b.halt();
        let p = b.build().unwrap();
        assert!(lint(&p).is_empty());
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.freps.len(), 1);
        assert_eq!(cfg.frep_body_of[1], Some(0));
        // The body's back edge models repetition.
        assert!(cfg.succs[1].contains(&1));
    }

    #[test]
    fn non_fp_op_in_frep_body_is_flagged() {
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Frep {
                iterations: 2,
                body: 2,
            },
            MicroOp::Fadd {
                fd: FpReg::new(3),
                fa: FpReg::new(3),
                fb: FpReg::new(3),
            },
            MicroOp::Addi {
                rd: IntReg::new(1),
                rs: IntReg::new(1),
                imm: 8,
            },
            MicroOp::Halt,
        ]);
        let diags = lint(&p);
        assert_eq!(codes(&diags), vec![DiagCode::FrepNonFpBody]);
        assert_eq!(diags[0].op, Some(2));
    }

    #[test]
    fn malformed_frep_geometry_is_flagged_not_panicked() {
        for bad in [
            MicroOp::Frep {
                iterations: 0,
                body: 1,
            },
            MicroOp::Frep {
                iterations: 2,
                body: 0,
            },
            MicroOp::Frep {
                iterations: 2,
                body: 9,
            },
        ] {
            let p = Program::from_ops_unchecked(vec![
                bad,
                MicroOp::Fadd {
                    fd: FpReg::new(3),
                    fa: FpReg::new(3),
                    fb: FpReg::new(3),
                },
                MicroOp::Halt,
            ]);
            assert!(codes(&lint(&p)).contains(&DiagCode::FrepGeometry), "{bad}");
        }
    }

    #[test]
    fn branch_into_frep_body_is_flagged() {
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Frep {
                iterations: 2,
                body: 1,
            },
            MicroOp::Fadd {
                fd: FpReg::new(3),
                fa: FpReg::new(3),
                fb: FpReg::new(3),
            },
            MicroOp::Bnez {
                rs: IntReg::new(1),
                target: 1,
            },
            MicroOp::Halt,
        ]);
        assert!(codes(&lint(&p)).contains(&DiagCode::BranchIntoFrep));
    }

    #[test]
    fn branch_out_of_range_is_flagged() {
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Bnez {
                rs: IntReg::new(1),
                target: 99,
            },
            MicroOp::Halt,
        ]);
        let diags = lint(&p);
        assert!(codes(&diags).contains(&DiagCode::BranchOutOfRange));
    }

    #[test]
    fn empty_program_is_total() {
        let p = Program::from_ops_unchecked(vec![]);
        assert!(lint(&p).is_empty());
    }
}
