//! SSR protocol checks (L004–L006, L013, L014, L016).
//!
//! The stream semantics this pass models (mirroring the interpreter):
//!
//! - `ssr.cfg` snapshots a base address, stride and element count into
//!   one of three stream units, 0–2. The snapshot happens at config
//!   time; reconfiguring while streaming is enabled silently retargets
//!   in-flight streams (L004).
//! - While `ssr.enable` is in effect, FPU ops (`fmadd`/`fadd`/`fmul`)
//!   that name `f0`–`f2` pop (reads) or push (writes) the *configured*
//!   stream of that index instead of the register file. An enabled but
//!   unconfigured stream register behaves as a plain register.
//! - Explicit `fld`/`fsd` always move the architectural register file,
//!   even for `f0`–`f2` — mid-stream they silently bypass the stream
//!   ports (L006).
//! - Popping or pushing a drained stream (`remaining == 0`) faults, so
//!   an enable window that consumes more elements than configured is an
//!   error; leftovers are a warning (L014).

use mpsoc_isa::{FpReg, MicroOp, Program};

use crate::cfg::Cfg;
use crate::diag::{DiagCode, Diagnostic};
use crate::{Lint, LintContext};

/// Forward may-state at one op: bit 0 = streaming may be enabled,
/// bit 1 = streaming may be disabled, bits 2–4 = stream 0–2 may be
/// configured. Join is bitwise OR; `0` is the unvisited bottom.
type State = u8;

const MAY_ON: State = 1 << 0;
const MAY_OFF: State = 1 << 1;

const fn cfg_bit(stream: usize) -> State {
    1 << (2 + stream)
}

fn transfer(state: State, op: MicroOp) -> State {
    match op {
        MicroOp::SsrEnable => (state & !MAY_OFF) | MAY_ON,
        MicroOp::SsrDisable => (state & !MAY_ON) | MAY_OFF,
        MicroOp::SsrCfg { stream, .. } if (stream as usize) < 3 => state | cfg_bit(stream as usize),
        _ => state,
    }
}

/// Per-op in-states of the enable/config analysis.
fn in_states(program: &Program, cfg: &Cfg) -> Vec<State> {
    let ops = program.ops();
    let mut states = vec![0 as State; ops.len()];
    if ops.is_empty() {
        return states;
    }
    states[0] = MAY_OFF;
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let out = transfer(states[i], ops[i]);
        for &s in &cfg.succs[i] {
            let joined = states[s] | out;
            if joined != states[s] {
                states[s] = joined;
                work.push(s);
            }
        }
    }
    states
}

/// For each op, whether `f0`/`f1`/`f2` are stream-mapped there (SSR may
/// be enabled *and* the stream may be configured). Used by the dataflow
/// pass to exempt stream-backed registers from register tracking.
pub(crate) fn stream_mapped(program: &Program, cfg: &Cfg) -> Vec<[bool; 3]> {
    in_states(program, cfg)
        .into_iter()
        .map(|st| {
            let on = st & MAY_ON != 0;
            [
                on && st & cfg_bit(0) != 0,
                on && st & cfg_bit(1) != 0,
                on && st & cfg_bit(2) != 0,
            ]
        })
        .collect()
}

/// SSR protocol lint.
#[derive(Debug, Default, Clone, Copy)]
pub struct SsrLint;

impl Lint for SsrLint {
    fn name(&self) -> &'static str {
        "ssr"
    }

    fn run(&self, program: &Program, _cx: &LintContext, out: &mut Vec<Diagnostic>) {
        let ops = program.ops();
        if ops.is_empty() {
            return;
        }
        let cfg = Cfg::build(program);
        let states = in_states(program, &cfg);

        let shadowed = |r: FpReg, st: State| -> bool {
            r.index() < 3 && st & MAY_ON != 0 && st & cfg_bit(r.index()) != 0
        };

        for (i, &op) in ops.iter().enumerate() {
            if !cfg.reachable[i] {
                continue;
            }
            let st = states[i];
            match op {
                MicroOp::SsrEnable if st & MAY_ON != 0 => {
                    out.push(Diagnostic::at(
                        DiagCode::SsrUnbalanced,
                        i,
                        "ssr.enable while streaming may already be enabled",
                    ));
                }
                MicroOp::SsrDisable if st & MAY_ON == 0 => {
                    out.push(Diagnostic::at(
                        DiagCode::SsrUnbalanced,
                        i,
                        "ssr.disable while streaming is disabled",
                    ));
                }
                MicroOp::SsrCfg { stream, count, .. } => {
                    if stream as usize >= 3 {
                        out.push(Diagnostic::at(
                            DiagCode::SsrBadStream,
                            i,
                            format!("stream {stream} does not exist (streams 0-2)"),
                        ));
                    }
                    if st & MAY_ON != 0 {
                        out.push(Diagnostic::at(
                            DiagCode::SsrCfgWhileEnabled,
                            i,
                            format!(
                                "ssr.cfg of stream {stream} while streaming may be enabled \
                                 retargets an in-flight stream"
                            ),
                        ));
                    }
                    if count == 0 {
                        out.push(Diagnostic::at(
                            DiagCode::SsrZeroElements,
                            i,
                            format!("stream {stream} configured for zero elements"),
                        ));
                    }
                }
                MicroOp::Fld { fd, .. } if shadowed(fd, st) => {
                    out.push(Diagnostic::at(
                        DiagCode::SsrShadowedAccess,
                        i,
                        format!(
                            "fld writes f{} while stream {} maps it; FPU reads will pop \
                             the stream, not see this value",
                            fd.index(),
                            fd.index()
                        ),
                    ));
                }
                MicroOp::Fsd { fs, .. } if shadowed(fs, st) => {
                    out.push(Diagnostic::at(
                        DiagCode::SsrShadowedAccess,
                        i,
                        format!(
                            "fsd reads the stale register file value of f{} while stream \
                             {} maps it",
                            fs.index(),
                            fs.index()
                        ),
                    ));
                }
                MicroOp::FsdPair { fs1, fs2, .. } => {
                    for fs in [fs1, fs2] {
                        if shadowed(fs, st) {
                            out.push(Diagnostic::at(
                                DiagCode::SsrShadowedAccess,
                                i,
                                format!(
                                    "fsd.pair reads the stale register file value of f{} \
                                     while stream {} maps it",
                                    fs.index(),
                                    fs.index()
                                ),
                            ));
                        }
                    }
                }
                MicroOp::Halt if st & MAY_ON != 0 => {
                    out.push(Diagnostic::at(
                        DiagCode::SsrUnbalanced,
                        i,
                        "halt with streaming still enabled",
                    ));
                }
                _ => {}
            }
        }

        check_element_counts(program, &cfg, out);
    }
}

/// L014: in branch-free programs, compare each enable window's stream
/// accesses against the configured element count. Each FPU-op operand
/// occurrence of a mapped register pops/pushes one element (times the
/// surrounding `frep`'s iteration count). Branchy programs have
/// data-dependent trip counts, so the check stays silent there.
fn check_element_counts(program: &Program, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let ops = program.ops();
    if ops.iter().any(|op| matches!(op, MicroOp::Bnez { .. })) {
        return;
    }

    let mut enabled = false;
    // Per stream: (config op, configured count, elements accessed).
    let mut windows: [Option<(usize, u64, u64)>; 3] = [None; 3];

    let flush = |windows: &mut [Option<(usize, u64, u64)>; 3], out: &mut Vec<Diagnostic>| {
        for (s, w) in windows.iter_mut().enumerate() {
            let Some((at, count, used)) = w.take() else {
                continue;
            };
            if used > count {
                out.push(Diagnostic::at(
                    DiagCode::SsrCountMismatch,
                    at,
                    format!(
                        "stream {s} configured for {count} elements but the enable window \
                         accesses it {used} times; the stream drains and faults"
                    ),
                ));
            } else if used < count {
                out.push(
                    Diagnostic::at(
                        DiagCode::SsrCountMismatch,
                        at,
                        format!(
                            "stream {s} configured for {count} elements but the enable \
                             window accesses it only {used} times; {} elements are left \
                             in flight",
                            count - used
                        ),
                    )
                    .warning(),
                );
            }
        }
    };

    for (i, &op) in ops.iter().enumerate() {
        let mult = cfg.frep_body_of[i].map_or(1, |fi| cfg.freps[fi].iterations);
        let en = enabled;
        let access = |r: FpReg, windows: &mut [Option<(usize, u64, u64)>; 3]| {
            if !en || r.index() >= 3 {
                return;
            }
            if let Some((_, _, used)) = &mut windows[r.index()] {
                *used += mult;
            }
        };
        match op {
            MicroOp::SsrCfg { stream, count, .. } if (stream as usize) < 3 => {
                windows[stream as usize] = Some((i, count, 0));
            }
            MicroOp::SsrEnable => enabled = true,
            MicroOp::SsrDisable => {
                enabled = false;
                flush(&mut windows, out);
            }
            MicroOp::Fmadd { fd, fa, fb, fc } => {
                for r in [fa, fb, fc, fd] {
                    access(r, &mut windows);
                }
            }
            MicroOp::Fadd { fd, fa, fb } | MicroOp::Fmul { fd, fa, fb } => {
                for r in [fa, fb, fd] {
                    access(r, &mut windows);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{IntReg, ProgramBuilder};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        SsrLint.run(p, &LintContext::manticore(), &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    /// The canonical `DaxpySsr` shape: cfg ×3, enable, frep'd fmadd,
    /// disable, halt.
    fn daxpy_ssr(elems: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let (x1, x2, x4) = (IntReg::new(1), IntReg::new(2), IntReg::new(4));
        let a = FpReg::new(31);
        b.li(x1, 0);
        b.li(x2, 256);
        b.li(x4, 512);
        b.fld(a, x4, 0);
        b.ssr_cfg(0, x1, 8, elems, false);
        b.ssr_cfg(1, x2, 8, elems, false);
        b.ssr_cfg(2, x2, 8, elems, true);
        b.ssr_enable();
        b.frep(elems, 1);
        b.fmadd(FpReg::new(2), a, FpReg::new(0), FpReg::new(1));
        b.ssr_disable();
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn balanced_ssr_program_is_clean() {
        assert!(lint(&daxpy_ssr(16)).is_empty());
    }

    #[test]
    fn cfg_while_enabled_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 4, false);
        b.ssr_enable();
        b.ssr_cfg(0, x1, 8, 4, false); // L004
        b.ssr_disable();
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert!(codes(&diags).contains(&DiagCode::SsrCfgWhileEnabled));
        // The mismatch check also fires: configured 4, accessed 0.
        assert!(diags
            .iter()
            .all(|d| d.code != DiagCode::SsrCfgWhileEnabled || d.op == Some(3)));
    }

    #[test]
    fn double_enable_and_halt_while_on_are_unbalanced() {
        let mut b = ProgramBuilder::new();
        b.ssr_enable();
        b.ssr_enable(); // L005: double enable
        b.halt(); // L005: never disabled
        let diags = lint(&b.build().unwrap());
        let l005: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::SsrUnbalanced)
            .collect();
        assert_eq!(l005.len(), 2, "{diags:?}");
    }

    #[test]
    fn disable_while_off_is_unbalanced() {
        let mut b = ProgramBuilder::new();
        b.ssr_disable();
        b.halt();
        assert_eq!(
            codes(&lint(&b.build().unwrap())),
            vec![DiagCode::SsrUnbalanced]
        );
    }

    #[test]
    fn shadowed_fld_and_fsd_are_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 2, false);
        b.ssr_enable();
        b.fld(FpReg::new(0), x1, 0); // L006: write shadowed by stream
        b.fsd(FpReg::new(0), x1, 8); // L006: reads stale register
        b.fld(FpReg::new(1), x1, 16); // fine: stream 1 not configured
        b.ssr_disable();
        b.halt();
        let diags = lint(&b.build().unwrap());
        let l006: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::SsrShadowedAccess)
            .collect();
        assert_eq!(l006.len(), 2, "{diags:?}");
        assert_eq!(l006[0].op, Some(3));
        assert_eq!(l006[1].op, Some(4));
    }

    #[test]
    fn zero_element_stream_is_a_warning() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 0, false);
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![DiagCode::SsrZeroElements]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn bad_stream_index_is_flagged() {
        let p = Program::from_ops_unchecked(vec![
            MicroOp::SsrCfg {
                stream: 7,
                base: IntReg::new(1),
                stride: 8,
                count: 4,
                write: false,
            },
            MicroOp::Halt,
        ]);
        assert!(codes(&lint(&p)).contains(&DiagCode::SsrBadStream));
    }

    #[test]
    fn overconsumed_stream_is_an_error() {
        // Stream 0 configured for 4 elements, but the frep'd fmadd pops
        // it 8 times.
        let mut b = ProgramBuilder::new();
        let (x1, x2) = (IntReg::new(1), IntReg::new(2));
        b.li(x1, 0);
        b.li(x2, 256);
        b.ssr_cfg(0, x1, 8, 4, false);
        b.ssr_cfg(1, x2, 8, 8, false);
        b.ssr_cfg(2, x2, 8, 8, true);
        b.ssr_enable();
        b.frep(8, 1);
        b.fmadd(FpReg::new(2), FpReg::new(31), FpReg::new(0), FpReg::new(1));
        b.ssr_disable();
        b.halt();
        let diags = lint(&b.build().unwrap());
        let mismatch: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::SsrCountMismatch)
            .collect();
        assert_eq!(mismatch.len(), 1, "{diags:?}");
        assert_eq!(mismatch[0].severity, crate::Severity::Error);
        assert!(mismatch[0].message.contains("8 times"));
    }

    #[test]
    fn underconsumed_stream_is_a_warning() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 10, false);
        b.ssr_enable();
        b.fadd(FpReg::new(3), FpReg::new(0), FpReg::new(0)); // pops twice
        b.ssr_disable();
        b.halt();
        let diags = lint(&b.build().unwrap());
        let mismatch: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::SsrCountMismatch)
            .collect();
        assert_eq!(mismatch.len(), 1, "{diags:?}");
        assert_eq!(mismatch[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn branchy_programs_skip_the_count_check() {
        let mut b = ProgramBuilder::new();
        let (x1, x3) = (IntReg::new(1), IntReg::new(3));
        b.li(x1, 0);
        b.li(x3, 4);
        b.ssr_cfg(0, x1, 8, 4, false);
        b.ssr_enable();
        let top = b.label();
        b.bind(top);
        b.fadd(FpReg::new(3), FpReg::new(0), FpReg::new(3));
        b.addi(x3, x3, -1);
        b.bnez(x3, top);
        b.ssr_disable();
        b.halt();
        // f3 is read uninitialized — that's the dataflow pass's business;
        // here we only assert no count mismatch is guessed at.
        let diags = lint(&b.build().unwrap());
        assert!(
            !codes(&diags).contains(&DiagCode::SsrCountMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn stream_mapped_tracks_enable_window_and_configs() {
        let p = daxpy_ssr(8);
        let cfg = Cfg::build(&p);
        let mapped = stream_mapped(&p, &cfg);
        // At the fmadd (op 9) all three streams are mapped.
        assert_eq!(mapped[9], [true, true, true]);
        // Before enable nothing is mapped.
        assert_eq!(mapped[7], [false, false, false]);
    }
}
