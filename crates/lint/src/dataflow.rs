//! Register dataflow: use-before-def (L001) and dead stores (L002).
//!
//! Both analyses run over the [`Cfg`] with one 48-bit register set per
//! op (16 integer + 32 FP registers). Stream-mapped FP registers
//! (`f0`–`f2` while SSR streaming may be enabled and the stream is
//! configured) are excluded from both analyses: their reads pop and
//! their writes push memory-backed streams, so they are neither register
//! uses nor register defs.

use mpsoc_isa::{FpReg, IntReg, MicroOp, Program, FP_REGS, INT_REGS};

use crate::cfg::Cfg;
use crate::diag::{DiagCode, Diagnostic};
use crate::ssr;
use crate::{Lint, LintContext};

const FP_BASE: u32 = INT_REGS as u32;
const ALL_REGS: u64 = (1u64 << (INT_REGS as u32 + FP_REGS as u32)) - 1;

fn int_bit(r: IntReg) -> u64 {
    1u64 << (r.index() as u32)
}

fn fp_bit(r: FpReg) -> u64 {
    1u64 << (FP_BASE + r.index() as u32)
}

fn reg_name(bit: u32) -> String {
    if bit < FP_BASE {
        format!("x{bit}")
    } else {
        format!("f{}", bit - FP_BASE)
    }
}

/// `(uses, defs)` register sets of one op. `mapped` marks which of
/// `f0`–`f2` are stream-mapped at this op.
fn uses_defs(op: MicroOp, mapped: [bool; 3]) -> (u64, u64) {
    let fp = |r: FpReg| -> u64 {
        if r.index() < 3 && mapped[r.index()] {
            0
        } else {
            fp_bit(r)
        }
    };
    match op {
        MicroOp::Li { rd, .. } => (0, int_bit(rd)),
        MicroOp::Addi { rd, rs, .. } => (int_bit(rs), int_bit(rd)),
        MicroOp::Add { rd, rs1, rs2 } => (int_bit(rs1) | int_bit(rs2), int_bit(rd)),
        // Explicit loads/stores always move the architectural register
        // file, even for f0-f2 (they bypass the stream ports — which is
        // its own lint, L006).
        MicroOp::Fld { fd, rs, .. } => (int_bit(rs), fp_bit(fd)),
        MicroOp::Fsd { fs, rs, .. } => (fp_bit(fs) | int_bit(rs), 0),
        MicroOp::FsdPair { fs1, fs2, rs, .. } => (fp_bit(fs1) | fp_bit(fs2) | int_bit(rs), 0),
        MicroOp::Fmadd { fd, fa, fb, fc } => (fp(fa) | fp(fb) | fp(fc), fp(fd)),
        MicroOp::Fadd { fd, fa, fb } | MicroOp::Fmul { fd, fa, fb } => (fp(fa) | fp(fb), fp(fd)),
        MicroOp::Bnez { rs, .. } => (int_bit(rs), 0),
        MicroOp::SsrCfg { base, .. } => (int_bit(base), 0),
        MicroOp::SsrEnable | MicroOp::SsrDisable | MicroOp::Frep { .. } | MicroOp::Halt => (0, 0),
    }
}

/// Register dataflow lint.
#[derive(Debug, Default, Clone, Copy)]
pub struct DataflowLint;

impl Lint for DataflowLint {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn run(&self, program: &Program, _cx: &LintContext, out: &mut Vec<Diagnostic>) {
        let ops = program.ops();
        if ops.is_empty() {
            return;
        }
        let cfg = Cfg::build(program);
        let mapped = ssr::stream_mapped(program, &cfg);
        let ud: Vec<(u64, u64)> = ops
            .iter()
            .zip(&mapped)
            .map(|(&op, &m)| uses_defs(op, m))
            .collect();

        // --- Use-before-def: forward "must be initialized" analysis.
        // in-state = set of registers written on *every* path from entry
        // (join = intersection); entry starts with nothing initialized.
        let mut init_in = vec![ALL_REGS; ops.len()];
        init_in[0] = 0;
        let mut work: Vec<usize> = vec![0];
        while let Some(i) = work.pop() {
            let out_state = init_in[i] | ud[i].1;
            for &s in &cfg.succs[i] {
                let joined = init_in[s] & out_state;
                if joined != init_in[s] {
                    init_in[s] = joined;
                    work.push(s);
                }
            }
        }
        for (i, &(uses, _)) in ud.iter().enumerate() {
            if !cfg.reachable[i] {
                continue;
            }
            let mut missing = uses & !init_in[i];
            while missing != 0 {
                let bit = missing.trailing_zeros();
                missing &= missing - 1;
                out.push(Diagnostic::at(
                    DiagCode::UseBeforeDef,
                    i,
                    format!(
                        "`{}` reads {} before any write reaches it",
                        ops[i],
                        reg_name(bit)
                    ),
                ));
            }
        }

        // --- Dead stores: backward liveness (join = union).
        let mut live_in = vec![0u64; ops.len()];
        let mut work: Vec<usize> = (0..ops.len()).collect();
        while let Some(i) = work.pop() {
            let mut live_out = 0u64;
            for &s in &cfg.succs[i] {
                live_out |= live_in[s];
            }
            let new_in = (live_out & !ud[i].1) | ud[i].0;
            if new_in != live_in[i] {
                live_in[i] = new_in;
                // Predecessors are not indexed; re-run everything that
                // could flow here. Programs are tiny (hundreds of ops),
                // so the simple O(n²) schedule is fine.
                work.extend(0..ops.len());
            }
        }
        for (i, &(_, defs)) in ud.iter().enumerate() {
            if !cfg.reachable[i] || defs == 0 {
                continue;
            }
            let live_out = cfg.succs[i].iter().fold(0u64, |acc, &s| acc | live_in[s]);
            let mut dead = defs & !live_out;
            while dead != 0 {
                let bit = dead.trailing_zeros();
                dead &= dead - 1;
                out.push(Diagnostic::at(
                    DiagCode::DeadStore,
                    i,
                    format!(
                        "`{}` writes {} but no later op reads it",
                        ops[i],
                        reg_name(bit)
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{FpReg, IntReg, ProgramBuilder};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        DataflowLint.run(p, &LintContext::manticore(), &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn defined_before_use_is_clean() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 64);
        b.fld(FpReg::new(3), x1, 0);
        b.fadd(FpReg::new(4), FpReg::new(3), FpReg::new(3));
        b.fsd(FpReg::new(4), x1, 8);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn use_before_def_is_flagged_per_register() {
        let mut b = ProgramBuilder::new();
        // x2 and f5 are never written.
        b.fld(FpReg::new(3), IntReg::new(2), 0);
        b.fadd(FpReg::new(4), FpReg::new(3), FpReg::new(5));
        b.fsd(FpReg::new(4), IntReg::new(2), 8);
        b.halt();
        let diags = lint(&b.build().unwrap());
        let l001: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == DiagCode::UseBeforeDef)
            .collect();
        assert_eq!(l001.len(), 3, "{diags:?}"); // x2 twice, f5 once
        assert!(l001.iter().any(|d| d.message.contains("f5")));
        assert!(l001.iter().any(|d| d.message.contains("x2")));
    }

    #[test]
    fn partial_path_initialization_is_flagged() {
        // x2 is written only on the fallthrough path; the branch target
        // reads it either way.
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        let x2 = IntReg::new(2);
        b.li(x1, 1);
        let join = b.label();
        b.bnez(x1, join); // skips the write on one path
        b.li(x2, 7);
        b.bind(join);
        b.addi(x2, x2, 1);
        b.fsd_pair(FpReg::new(3), FpReg::new(4), x1, 0); // f3/f4 undefined too
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::UseBeforeDef && d.message.contains("x2")));
    }

    #[test]
    fn dead_store_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 5); // overwritten below, never read
        b.li(x1, 6);
        b.fld(FpReg::new(3), x1, 0);
        b.fsd(FpReg::new(3), x1, 8);
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![DiagCode::DeadStore]);
        assert_eq!(diags[0].op, Some(0));
    }

    #[test]
    fn loop_carried_values_are_not_dead() {
        // The classic kernel loop shape: pointer bumps are read by the
        // next iteration, the counter by the branch.
        let mut b = ProgramBuilder::new();
        let (x1, x3) = (IntReg::new(1), IntReg::new(3));
        b.li(x1, 0);
        b.li(x3, 4);
        let top = b.label();
        b.bind(top);
        b.fld(FpReg::new(3), x1, 0);
        b.fsd(FpReg::new(3), x1, 8);
        b.addi(x1, x1, 16);
        b.addi(x3, x3, -1);
        b.bnez(x3, top);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn ssr_mapped_registers_are_exempt() {
        // DaxpySsr's shape: f0/f1 are read and f2 written with no
        // explicit defs/uses — all three are stream-mapped.
        let mut b = ProgramBuilder::new();
        let (x1, x4) = (IntReg::new(1), IntReg::new(4));
        let a = FpReg::new(31);
        b.li(x1, 0);
        b.li(x4, 512);
        b.fld(a, x4, 0);
        b.ssr_cfg(0, x1, 8, 8, false);
        b.ssr_cfg(1, x1, 8, 8, false);
        b.ssr_cfg(2, x1, 8, 8, true);
        b.ssr_enable();
        b.frep(8, 1);
        b.fmadd(FpReg::new(2), a, FpReg::new(0), FpReg::new(1));
        b.ssr_disable();
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn unconfigured_fp_low_registers_still_tracked() {
        // SSR enabled but only stream 0 configured: f1 stays a normal
        // register, so reading it uninitialized is still L001.
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 4, false);
        b.ssr_enable();
        b.fadd(FpReg::new(3), FpReg::new(0), FpReg::new(1));
        b.ssr_disable();
        b.fsd(FpReg::new(3), x1, 0);
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::UseBeforeDef && d.message.contains("reads f1")),
            "{diags:?}"
        );
        assert!(
            !diags.iter().any(|d| d.message.contains("reads f0")),
            "f0 is stream-mapped: {diags:?}"
        );
    }
}
