//! Descriptor/SoC-level checks: tile races (L101), tenant cluster-mask
//! overlap (L102) and Eq. 3 deadline feasibility (L103).
//!
//! These lints run over job *descriptors* rather than programs: the
//! per-core TCDM tiles a job carves out, the cluster masks concurrent
//! tenants hold, and the deadline a job asks the Eq. 3 planner to meet.

use mpsoc_kernels::{CoreSlice, Kernel, KernelKind};
use mpsoc_noc::ClusterMask;
use mpsoc_offload::decision::min_clusters;
use mpsoc_offload::RuntimeModel;

use crate::diag::{DiagCode, Diagnostic};

/// The per-core [`CoreSlice`]s one cluster of `cores` workers would use
/// for `elems` elements of `kernel`, mirroring the runtime's TCDM
/// planner: `x` (with halo), then `y`, then reduction partials, then the
/// scalar-argument area.
///
/// This is the reference geometry the `lint_kernels` bench and the
/// scheduler's admission gate lint against.
pub fn reference_slices(kernel: &dyn Kernel, elems: u64, cores: usize) -> Vec<CoreSlice> {
    let x_words = if kernel.uses_x() {
        elems * kernel.x_words_per_elem() + 2 * kernel.x_halo()
    } else {
        0
    };
    let needs_y_buffer = match kernel.kind() {
        KernelKind::Map => true,
        KernelKind::Reduce => kernel.uses_y(),
    };
    let y_words = if needs_y_buffer { elems } else { 0 };
    let out_words = match kernel.kind() {
        KernelKind::Map => 0,
        KernelKind::Reduce => cores as u64,
    };
    let y_word = x_words;
    let out_word = x_words + y_words;
    let args_word = out_word + out_words;

    mpsoc_kernels::partition::split_even(elems, cores)
        .into_iter()
        .enumerate()
        .map(|(core, chunk)| {
            let rel = chunk.start;
            let y_base = (y_word + rel) * 8;
            CoreSlice {
                elems: chunk.count,
                x_base: (kernel.x_halo() + rel * kernel.x_words_per_elem()) * 8,
                y_base,
                out_base: match kernel.kind() {
                    KernelKind::Map => y_base,
                    KernelKind::Reduce => (out_word + core as u64) * 8,
                },
                args_base: args_word * 8,
                core_index: core,
            }
        })
        .collect()
}

/// Words of TCDM the [`reference_slices`] geometry occupies.
pub fn reference_used_words(kernel: &dyn Kernel, elems: u64, cores: usize) -> u64 {
    let slices = reference_slices(kernel, elems, cores);
    let args_words = kernel.scalar_args().len() as u64 + 1;
    slices
        .first()
        .map_or(args_words, |s| s.args_base / 8 + args_words)
}

/// L101: write-write and read-write races between the tiles of one
/// cluster's cores. Cores run concurrently with no intra-job barrier, so
/// any byte both written by one core and touched by another is a race.
pub fn lint_core_tiles(kernel: &dyn Kernel, slices: &[CoreSlice]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let footprints: Vec<_> = slices
        .iter()
        .map(|s| (s.core_index, s.read_ranges(kernel), s.write_ranges(kernel)))
        .collect();
    for (i, (core_a, reads_a, writes_a)) in footprints.iter().enumerate() {
        for (core_b, reads_b, writes_b) in footprints.iter().skip(i + 1) {
            for wa in writes_a {
                for wb in writes_b {
                    if wa.overlaps(wb) {
                        out.push(Diagnostic::global(
                            DiagCode::TileOverlap,
                            format!(
                                "cores {core_a} and {core_b} both write TCDM bytes \
                                 {}..{} / {}..{}",
                                wa.start, wa.end, wb.start, wb.end
                            ),
                        ));
                    }
                }
            }
            for (wr_core, rd_core, writes, reads) in [
                (core_a, core_b, writes_a, reads_b),
                (core_b, core_a, writes_b, reads_a),
            ] {
                for w in writes {
                    for r in reads {
                        if w.overlaps(r) {
                            out.push(Diagnostic::global(
                                DiagCode::TileOverlap,
                                format!(
                                    "core {wr_core} writes TCDM bytes {}..{} while core \
                                     {rd_core} reads {}..{}",
                                    w.start, w.end, r.start, r.end
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// L102: cluster masks of concurrently-running tenants must be disjoint —
/// an overlap means two jobs multicast to the same cluster and corrupt
/// each other's TCDM.
pub fn lint_tenant_masks(tenants: &[(&str, ClusterMask)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, (name_a, mask_a)) in tenants.iter().enumerate() {
        for (name_b, mask_b) in tenants.iter().skip(i + 1) {
            let shared = ClusterMask::from_bits(mask_a.bits() & mask_b.bits());
            if !shared.is_empty() {
                out.push(Diagnostic::global(
                    DiagCode::MaskOverlap,
                    format!(
                        "tenants {name_a:?} and {name_b:?} both hold cluster(s) {:?}",
                        shared.iter().collect::<Vec<_>>()
                    ),
                ));
            }
        }
    }
    out
}

/// L103: Eq. 3 feasibility of a deadline. Infeasible outright (the
/// serial fraction alone exceeds `t_max`) or infeasible on this machine
/// (Eq. 3 demands more clusters than `available`).
pub fn lint_deadline(model: &RuntimeModel, n: u64, t_max: f64, available: u64) -> Vec<Diagnostic> {
    match min_clusters(model, n, t_max) {
        None => vec![Diagnostic::global(
            DiagCode::DeadlineInfeasible,
            format!(
                "no cluster count meets the {t_max}-cycle deadline for n={n}: the serial \
                 fraction alone exceeds it (Eq. 3 has no solution)"
            ),
        )],
        Some(required) if required > available => vec![Diagnostic::global(
            DiagCode::DeadlineInfeasible,
            format!(
                "Eq. 3 needs {required} clusters for n={n} within {t_max} cycles, but the \
                 machine has {available}"
            ),
        )],
        Some(_) => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_kernels::{Daxpy, Dot, Gemv, Stencil3};

    #[test]
    fn reference_slices_match_the_runtime_planner() {
        // Mirror of the TcdmLayout daxpy test in mpsoc-offload.
        let k = Daxpy::new(2.0);
        let slices = reference_slices(&k, 128, 8);
        assert_eq!(slices.len(), 8);
        assert_eq!(slices[0].x_base, 0);
        assert_eq!(slices[0].y_base, 128 * 8);
        assert_eq!(slices[0].args_base, 256 * 8);
        assert_eq!(slices[2].elems, 16);
        assert_eq!(slices[2].x_base, 32 * 8);
        assert_eq!(slices[2].y_base, (128 + 32) * 8);
        assert_eq!(slices[2].out_base, slices[2].y_base);
        assert_eq!(reference_used_words(&k, 128, 8), 258);
    }

    #[test]
    fn reduce_slices_get_disjoint_partial_slots() {
        let k = Dot::new();
        let slices = reference_slices(&k, 64, 8);
        assert_eq!(slices[3].out_base, (128 + 3) * 8);
        assert_eq!(reference_used_words(&k, 64, 8), 137);
    }

    #[test]
    fn well_partitioned_tiles_do_not_race() {
        for (kernel, elems) in [
            (&Daxpy::new(2.0) as &dyn Kernel, 100u64),
            (&Dot::new(), 64),
            (&Gemv::new(vec![1.0, 2.0, 3.0]), 17),
            (&Stencil3::new(0.25, 0.5, 0.25), 33),
        ] {
            let slices = reference_slices(kernel, elems, 8);
            let diags = lint_core_tiles(kernel, &slices);
            assert!(diags.is_empty(), "{}: {diags:?}", kernel.name());
        }
    }

    #[test]
    fn overlapping_output_tiles_race() {
        let k = Daxpy::new(2.0);
        let mut slices = reference_slices(&k, 64, 4);
        // Misplace core 1's output on top of core 0's.
        slices[1].y_base = slices[0].y_base;
        slices[1].out_base = slices[0].out_base;
        let diags = lint_core_tiles(&k, &slices);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::TileOverlap),
            "{diags:?}"
        );
        // Both the W-W race and the R-W race (daxpy streams y in) show up.
        assert!(diags.len() >= 2, "{diags:?}");
    }

    #[test]
    fn write_into_neighbours_read_slice_races() {
        let k = Daxpy::new(2.0);
        let mut slices = reference_slices(&k, 64, 4);
        // Core 2's output lands in core 3's x slice.
        slices[2].out_base = slices[3].x_base;
        let diags = lint_core_tiles(&k, &slices);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::TileOverlap && d.message.contains("core 2 writes")));
    }

    #[test]
    fn shared_args_area_is_not_a_race() {
        // Every core reads the same scalar args — read-read sharing is
        // exactly what the layout intends.
        let k = Gemv::new(vec![1.0; 4]);
        let slices = reference_slices(&k, 8, 8);
        assert!(slices.windows(2).all(|w| w[0].args_base == w[1].args_base));
        assert!(lint_core_tiles(&k, &slices).is_empty());
    }

    #[test]
    fn disjoint_masks_are_clean_overlapping_masks_race() {
        let a = ClusterMask::from_bits(0b0000_1111);
        let b = ClusterMask::from_bits(0b1111_0000);
        assert!(lint_tenant_masks(&[("a", a), ("b", b)]).is_empty());

        let c = ClusterMask::from_bits(0b0001_1000);
        let diags = lint_tenant_masks(&[("a", a), ("b", b), ("c", c)]);
        assert_eq!(diags.len(), 2, "{diags:?}"); // c vs a and c vs b
        assert!(diags.iter().all(|d| d.code == DiagCode::MaskOverlap));
        assert!(diags[0].message.contains("[3]"));
    }

    #[test]
    fn deadline_feasibility_follows_eq3() {
        let model = RuntimeModel::paper();
        // Feasible: n=1024 within 650 cycles needs 13 of 32 clusters.
        assert!(lint_deadline(&model, 1024, 650.0, 32).is_empty());
        // Machine too small: needs 20, has 8.
        let diags = lint_deadline(&model, 1024, 640.0, 8);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("20 clusters"));
        // Outright infeasible: below the serial fraction.
        let diags = lint_deadline(&model, 1024, 100.0, 32);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no cluster count"));
        assert_eq!(diags[0].code, DiagCode::DeadlineInfeasible);
    }
}
