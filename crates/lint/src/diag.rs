//! Diagnostics: stable codes, severities and the lint report.

use std::fmt;

use mpsoc_isa::{ListingNote, Program};
use serde::Serialize;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (performance hazards, likely
    /// dead code). `lint_kernels --deny-warnings` still fails on these.
    Warning,
    /// A protocol or correctness violation: the program would fault,
    /// compute garbage, or race.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Every diagnostic the linter can emit, with a stable `Lxxx` code.
///
/// `L0xx` codes are program-level (over [`mpsoc_isa::Program`]); `L1xx`
/// codes are descriptor/SoC-level (over job tiles, cluster masks and
/// deadlines). Codes are append-only: existing numbers never change
/// meaning, so CI logs and suppressions stay stable across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DiagCode {
    /// L001: a register is read on some path before any write to it.
    UseBeforeDef,
    /// L002: a register write no later op can observe.
    DeadStore,
    /// L003: an op no path from entry reaches.
    UnreachableOp,
    /// L004: `ssr.cfg` reconfigures a stream while streaming is enabled.
    SsrCfgWhileEnabled,
    /// L005: unbalanced `ssr.enable`/`ssr.disable` (double enable,
    /// disable while off, or halt with streaming still enabled).
    SsrUnbalanced,
    /// L006: an explicit `fld`/`fsd` touches an SSR-mapped register
    /// (`f0`–`f2`) while streaming may be enabled.
    SsrShadowedAccess,
    /// L007: a non-FP op inside a `frep` body (the hardware loop buffer
    /// only replays FPU instructions).
    FrepNonFpBody,
    /// L008: a branch targets the interior of a `frep` body.
    BranchIntoFrep,
    /// L009: malformed `frep` geometry (zero iterations, empty body, or
    /// a body extending past the program end).
    FrepGeometry,
    /// L010: a memory access or SSR footprint falls outside the TCDM.
    TcdmOutOfBounds,
    /// L011: a memory address or SSR base/stride is not 8-byte aligned.
    Misaligned,
    /// L012: an SSR stride that lands every element in the same TCDM
    /// bank (stride in words divisible by the bank count).
    BankConflictStride,
    /// L013: an SSR stream configured for zero elements.
    SsrZeroElements,
    /// L014: the ops between enable/disable consume more (error) or
    /// fewer (warning) stream elements than the stream was configured
    /// for.
    SsrCountMismatch,
    /// L015: a branch target outside the program.
    BranchOutOfRange,
    /// L016: `ssr.cfg` names a stream index the core does not have
    /// (only streams 0–2 exist; anything else faults at issue).
    SsrBadStream,
    /// L020: the cost analyzer cannot bound a loop's trip count (the
    /// branch counter is not a single countdown of a positive literal,
    /// or the decrement does not divide the initial value).
    UnboundableLoop,
    /// L021: control flow the cost analyzer cannot reduce to nested
    /// counted loops (forward branches, overlapping loop regions, or a
    /// halt inside a loop body).
    UnstructuredFlow,
    /// L101: two cores' TCDM tiles race (write-write or read-write
    /// overlap with no barrier between them).
    TileOverlap,
    /// L102: two concurrent tenants' cluster masks intersect.
    MaskOverlap,
    /// L103: Eq. 3 has no solution — the job's deadline is unreachable
    /// at any cluster count the machine has.
    DeadlineInfeasible,
}

impl DiagCode {
    /// Every code, in code order.
    pub const ALL: [DiagCode; 21] = [
        DiagCode::UseBeforeDef,
        DiagCode::DeadStore,
        DiagCode::UnreachableOp,
        DiagCode::SsrCfgWhileEnabled,
        DiagCode::SsrUnbalanced,
        DiagCode::SsrShadowedAccess,
        DiagCode::FrepNonFpBody,
        DiagCode::BranchIntoFrep,
        DiagCode::FrepGeometry,
        DiagCode::TcdmOutOfBounds,
        DiagCode::Misaligned,
        DiagCode::BankConflictStride,
        DiagCode::SsrZeroElements,
        DiagCode::SsrCountMismatch,
        DiagCode::BranchOutOfRange,
        DiagCode::SsrBadStream,
        DiagCode::UnboundableLoop,
        DiagCode::UnstructuredFlow,
        DiagCode::TileOverlap,
        DiagCode::MaskOverlap,
        DiagCode::DeadlineInfeasible,
    ];

    /// The stable `Lxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::UseBeforeDef => "L001",
            DiagCode::DeadStore => "L002",
            DiagCode::UnreachableOp => "L003",
            DiagCode::SsrCfgWhileEnabled => "L004",
            DiagCode::SsrUnbalanced => "L005",
            DiagCode::SsrShadowedAccess => "L006",
            DiagCode::FrepNonFpBody => "L007",
            DiagCode::BranchIntoFrep => "L008",
            DiagCode::FrepGeometry => "L009",
            DiagCode::TcdmOutOfBounds => "L010",
            DiagCode::Misaligned => "L011",
            DiagCode::BankConflictStride => "L012",
            DiagCode::SsrZeroElements => "L013",
            DiagCode::SsrCountMismatch => "L014",
            DiagCode::BranchOutOfRange => "L015",
            DiagCode::SsrBadStream => "L016",
            DiagCode::UnboundableLoop => "L020",
            DiagCode::UnstructuredFlow => "L021",
            DiagCode::TileOverlap => "L101",
            DiagCode::MaskOverlap => "L102",
            DiagCode::DeadlineInfeasible => "L103",
        }
    }

    /// The severity this code carries unless a pass overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::DeadStore
            | DiagCode::UnreachableOp
            | DiagCode::BankConflictStride
            | DiagCode::SsrZeroElements
            | DiagCode::UnboundableLoop
            | DiagCode::UnstructuredFlow => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Error or warning.
    pub severity: Severity,
    /// The op index the finding anchors to (`None` for program- or
    /// descriptor-level findings).
    pub op: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A finding at `op` with the code's default severity.
    pub fn at(code: DiagCode, op: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            op: Some(op),
            message: message.into(),
        }
    }

    /// A finding not tied to any op, with the code's default severity.
    pub fn global(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            op: None,
            message: message.into(),
        }
    }

    /// The same finding downgraded to a warning.
    #[must_use]
    pub fn warning(mut self) -> Self {
        self.severity = Severity::Warning;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(op) => write!(
                f,
                "{} {} at op {}: {}",
                self.severity, self.code, op, self.message
            ),
            None => write!(f, "{} {}: {}", self.severity, self.code, self.message),
        }
    }
}

/// The outcome of linting one program or descriptor.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct LintReport {
    /// All findings, ordered by op index (program-level findings first).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over `diagnostics`, sorted by op index then code.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| (d.op.map_or((0, 0), |i| (1, i)), d.code.code()));
        LintReport { diagnostics }
    }

    /// `true` when nothing was found at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The findings as listing annotations.
    pub fn notes(&self) -> Vec<ListingNote> {
        self.diagnostics
            .iter()
            .map(|d| ListingNote {
                op: d.op,
                text: d.to_string(),
            })
            .collect()
    }

    /// Renders `program` with every finding interleaved at its op.
    pub fn annotate(&self, program: &Program) -> String {
        program.listing_annotated(&self.notes())
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in DiagCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {c}");
            assert!(c.code().starts_with('L'));
        }
        assert_eq!(DiagCode::UseBeforeDef.code(), "L001");
        assert_eq!(DiagCode::TileOverlap.code(), "L101");
    }

    #[test]
    fn report_counts_and_order() {
        let report = LintReport::new(vec![
            Diagnostic::at(DiagCode::DeadStore, 5, "x"),
            Diagnostic::global(DiagCode::DeadlineInfeasible, "y"),
            Diagnostic::at(DiagCode::UseBeforeDef, 1, "z"),
        ]);
        assert_eq!(report.error_count(), 2);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        // Global findings sort first, then by op.
        assert_eq!(report.diagnostics[0].op, None);
        assert_eq!(report.diagnostics[1].op, Some(1));
        assert_eq!(report.diagnostics[2].op, Some(5));
    }

    #[test]
    fn display_carries_code_and_severity() {
        let d = Diagnostic::at(DiagCode::UseBeforeDef, 3, "f1 read before any write");
        let text = d.to_string();
        assert!(text.contains("error L001 at op 3"));
        let w = Diagnostic::at(DiagCode::DeadStore, 0, "dead");
        assert!(w.to_string().starts_with("warning L002"));
    }
}
