//! Interval-domain abstract interpretation of the integer register file.
//!
//! Resolves the addresses `fld`/`fsd`/`ssr.cfg` will actually touch so
//! the memory pass can check them against the TCDM. The domain is the
//! classic interval lattice per register, with counted widening at join
//! points: after a few changing joins a register jumps to [`Value::Top`],
//! guaranteeing termination on loops. Loop-carried pointers therefore
//! widen to `Top` and their in-loop accesses are simply not checked —
//! the analysis trades completeness for zero false positives.

use mpsoc_isa::{IntReg, MicroOp, Program, INT_REGS};

use crate::cfg::Cfg;

/// Integer register file size, as a usize for array lengths.
const NREGS: usize = INT_REGS as usize;

/// How many changing joins a register survives before widening to Top.
const WIDEN_AFTER: u32 = 4;

/// An abstract integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Any value.
    Top,
    /// All values in `lo..=hi`.
    Range(i64, i64),
}

impl Value {
    /// The singleton interval for a known constant.
    pub fn exact(v: i64) -> Self {
        Value::Range(v, v)
    }

    /// The constant, if this interval is a singleton.
    pub fn as_exact(self) -> Option<i64> {
        match self {
            Value::Range(lo, hi) if lo == hi => Some(lo),
            _ => None,
        }
    }

    /// Bounds, unless Top.
    pub fn bounds(self) -> Option<(i64, i64)> {
        match self {
            Value::Range(lo, hi) => Some((lo, hi)),
            Value::Top => None,
        }
    }

    fn join(self, other: Value) -> Value {
        match (self, other) {
            (Value::Range(a, b), Value::Range(c, d)) => Value::Range(a.min(c), b.max(d)),
            _ => Value::Top,
        }
    }

    fn add(self, other: Value) -> Value {
        match (self, other) {
            (Value::Range(a, b), Value::Range(c, d)) => {
                match (a.checked_add(c), b.checked_add(d)) {
                    (Some(lo), Some(hi)) => Value::Range(lo, hi),
                    _ => Value::Top,
                }
            }
            _ => Value::Top,
        }
    }

    /// The interval shifted by a constant.
    #[must_use]
    pub fn offset(self, imm: i64) -> Value {
        self.add(Value::exact(imm))
    }
}

/// The abstract register file at one program point.
pub type Regs = [Value; NREGS];

fn transfer(regs: &Regs, op: MicroOp) -> Regs {
    let mut out = *regs;
    let set = |out: &mut Regs, rd: IntReg, v: Value| out[rd.index()] = v;
    match op {
        MicroOp::Li { rd, imm } => set(&mut out, rd, Value::exact(imm)),
        MicroOp::Addi { rd, rs, imm } => set(&mut out, rd, regs[rs.index()].offset(imm)),
        MicroOp::Add { rd, rs1, rs2 } => {
            set(&mut out, rd, regs[rs1.index()].add(regs[rs2.index()]));
        }
        _ => {}
    }
    out
}

/// Runs the analysis; returns the abstract register file *entering* each
/// op. Registers start at zero, mirroring the interpreter's reset state.
pub fn analyze(program: &Program, cfg: &Cfg) -> Vec<Regs> {
    let ops = program.ops();
    let len = ops.len();
    let mut states: Vec<Regs> = vec![[Value::exact(0); NREGS]; len];
    if len == 0 {
        return states;
    }
    // Unvisited ops hold the entry state until a join reaches them; only
    // ops the worklist touches contribute, and unreachable ops are never
    // consulted by the memory pass.
    let mut visited = vec![false; len];
    let mut widen_count = vec![[0u32; NREGS]; len];
    visited[0] = true;
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let out = transfer(&states[i], ops[i]);
        for &s in &cfg.succs[i] {
            if !visited[s] {
                visited[s] = true;
                states[s] = out;
                work.push(s);
                continue;
            }
            let mut changed = false;
            for r in 0..NREGS {
                let joined = states[s][r].join(out[r]);
                if joined != states[s][r] {
                    widen_count[s][r] += 1;
                    states[s][r] = if widen_count[s][r] >= WIDEN_AFTER {
                        Value::Top
                    } else {
                        joined
                    };
                    changed = true;
                }
            }
            if changed {
                work.push(s);
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{FpReg, ProgramBuilder};

    fn states(p: &Program) -> Vec<Regs> {
        analyze(p, &Cfg::build(p))
    }

    #[test]
    fn constants_propagate_through_arithmetic() {
        let mut b = ProgramBuilder::new();
        let (x1, x2, x3) = (IntReg::new(1), IntReg::new(2), IntReg::new(3));
        b.li(x1, 100);
        b.addi(x2, x1, 28);
        b.add(x3, x1, x2);
        b.halt();
        let st = states(&b.build().unwrap());
        // Entering halt (op 3): x1=100, x2=128, x3=228.
        assert_eq!(st[3][1].as_exact(), Some(100));
        assert_eq!(st[3][2].as_exact(), Some(128));
        assert_eq!(st[3][3].as_exact(), Some(228));
    }

    #[test]
    fn loop_carried_pointer_widens_to_top() {
        let mut b = ProgramBuilder::new();
        let (x1, x3) = (IntReg::new(1), IntReg::new(3));
        b.li(x1, 0);
        b.li(x3, 100);
        let top = b.label();
        b.bind(top);
        b.fld(FpReg::new(3), x1, 0);
        b.addi(x1, x1, 8);
        b.addi(x3, x3, -1);
        b.bnez(x3, top);
        b.halt();
        let st = states(&b.build().unwrap());
        // At the loop-head fld (op 2) the bumped pointer has widened.
        assert_eq!(st[2][1], Value::Top);
    }

    #[test]
    fn branch_join_takes_the_hull() {
        let mut b = ProgramBuilder::new();
        let (x1, x2) = (IntReg::new(1), IntReg::new(2));
        b.li(x1, 1);
        b.li(x2, 8);
        let join = b.label();
        b.bnez(x1, join);
        b.li(x2, 16);
        b.bind(join);
        b.halt();
        let st = states(&b.build().unwrap());
        assert_eq!(st[4][2], Value::Range(8, 16));
    }

    #[test]
    fn registers_start_at_zero() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let st = states(&b.build().unwrap());
        assert_eq!(st[0][5].as_exact(), Some(0));
    }
}
