//! # mpsoc-lint
//!
//! Static verification of offload programs and job descriptors, *before*
//! anything reaches the simulator. A buggy kernel program costs a full
//! simulation (or a silent wrong answer) to discover dynamically; most
//! of its failure modes — protocol violations, bad addresses, races —
//! are decidable from the program text and the job geometry alone.
//!
//! ## Program-level passes
//!
//! | Pass | Codes | What it proves |
//! |------|-------|----------------|
//! | [`CfgLint`] | L003, L007–L009, L015 | control flow is well-formed: no unreachable ops, FREP bodies are FPU-only with sane geometry, branches land inside the program and never into a hardware-loop body |
//! | [`DataflowLint`] | L001, L002 | every register read is dominated by a write; every write is observable |
//! | [`SsrLint`] | L004–L006, L013, L014, L016 | the SSR enable/config protocol is respected and stream element counts add up |
//! | [`cost::CostLint`] | L020, L021 | control flow reduces to nested counted loops, so the static cost analyzer ([`bound_program`]) can produce sound cycle bounds |
//! | [`MemLint`] | L010–L012 | statically-resolvable addresses (interval abstract interpretation) stay inside the TCDM, aligned, and off pathological bank strides |
//!
//! ## Descriptor-level checks
//!
//! [`descriptor::lint_core_tiles`] (L101), [`descriptor::lint_tenant_masks`]
//! (L102) and [`descriptor::lint_deadline`] (L103) verify job geometry:
//! per-core TCDM tiles must not race, concurrent tenants' cluster masks
//! must be disjoint, and a deadline must be Eq.-3-feasible.
//!
//! ## Example
//!
//! ```
//! use mpsoc_isa::{FpReg, IntReg, ProgramBuilder};
//! use mpsoc_lint::{lint_program, LintContext};
//!
//! let mut b = ProgramBuilder::new();
//! b.fld(FpReg::new(3), IntReg::new(1), 0); // x1 never written: L001...
//! b.fsd(FpReg::new(4), IntReg::new(1), 8); // ...and f4 neither: L001
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let report = lint_program(&program, &LintContext::manticore());
//! assert!(report.has_errors());
//! assert!(report.diagnostics.iter().any(|d| d.code.code() == "L001"));
//! // Findings render interleaved with the listing:
//! assert!(report.annotate(&program).contains("^ error L001"));
//! ```
//!
//! Adding a pass means implementing [`Lint`] and registering it with
//! [`Linter::with`]; everything else (report assembly, rendering, JSON)
//! is shared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Curated pedantic allowances: lint messages interpolate many numeric
// fields (readability beats `#[allow]`-free casts), and analysis code
// indexes parallel per-op vectors.
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_wrap)]
#![allow(clippy::cast_sign_loss)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::must_use_candidate)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::too_many_lines)]

mod cfg;
pub mod cost;
mod dataflow;
pub mod descriptor;
mod diag;
mod interval;
mod mem;
mod ssr;

pub use cfg::{Cfg, CfgLint, FrepExtent};
pub use cost::{
    bound_host_run, bound_offload, bound_program, bound_program_widened, loop_structure,
    ContentionEnvelope, CostError, CostLint, CycleBounds, OffloadBounds, ProgramCost, Seg,
};
pub use dataflow::DataflowLint;
pub use diag::{DiagCode, Diagnostic, LintReport, Severity};
pub use interval::Value;
pub use mem::MemLint;
pub use ssr::SsrLint;

use mpsoc_isa::Program;
use mpsoc_soc::SocConfig;

/// The machine facts program-level lints check against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintContext {
    /// Per-cluster TCDM capacity in 64-bit words.
    pub tcdm_words: u64,
    /// TCDM banks per cluster.
    pub tcdm_banks: u32,
}

impl LintContext {
    /// The calibrated Manticore-class geometry (256 KiB TCDM, 32 banks).
    pub fn manticore() -> Self {
        LintContext {
            tcdm_words: 256 * 1024 / 8,
            tcdm_banks: 32,
        }
    }

    /// The context matching a concrete [`SocConfig`].
    pub fn for_soc(config: &SocConfig) -> Self {
        LintContext {
            tcdm_words: config.tcdm_words,
            tcdm_banks: config.tcdm_banks as u32,
        }
    }
}

impl Default for LintContext {
    fn default() -> Self {
        LintContext::manticore()
    }
}

/// One static-analysis pass over a program.
///
/// Implementations must be *total*: any op sequence — including ones
/// that bypass [`mpsoc_isa::ProgramBuilder`] validation via
/// [`Program::from_ops_unchecked`] — must produce diagnostics, never a
/// panic.
pub trait Lint {
    /// Short stable pass name (for reports and filtering).
    fn name(&self) -> &'static str;

    /// Runs the pass, appending findings to `out`.
    fn run(&self, program: &Program, cx: &LintContext, out: &mut Vec<Diagnostic>);
}

/// A configured set of lint passes.
pub struct Linter {
    context: LintContext,
    passes: Vec<Box<dyn Lint>>,
}

impl Linter {
    /// A linter with every built-in program-level pass.
    pub fn new(context: LintContext) -> Self {
        Linter {
            context,
            passes: vec![
                Box::new(CfgLint),
                Box::new(DataflowLint),
                Box::new(SsrLint),
                Box::new(MemLint),
                Box::new(cost::CostLint),
            ],
        }
    }

    /// A linter with no passes; add them with [`Linter::with`].
    pub fn empty(context: LintContext) -> Self {
        Linter {
            context,
            passes: Vec::new(),
        }
    }

    /// Adds a pass.
    #[must_use]
    pub fn with(mut self, pass: impl Lint + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass over `program` and assembles the report.
    pub fn lint(&self, program: &Program) -> LintReport {
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            pass.run(program, &self.context, &mut diagnostics);
        }
        LintReport::new(diagnostics)
    }
}

/// Lints `program` with every built-in pass under `context`.
pub fn lint_program(program: &Program, context: &LintContext) -> LintReport {
    Linter::new(*context).lint(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{FpReg, IntReg, MicroOp, ProgramBuilder};

    #[test]
    fn default_linter_registers_all_passes() {
        let linter = Linter::new(LintContext::default());
        assert_eq!(
            linter.pass_names(),
            vec!["cfg", "dataflow", "ssr", "mem", "cost"]
        );
    }

    #[test]
    fn clean_program_yields_clean_report() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 64);
        b.fld(FpReg::new(3), x1, 0);
        b.fadd(FpReg::new(3), FpReg::new(3), FpReg::new(3));
        b.fsd(FpReg::new(3), x1, 8);
        b.halt();
        let report = lint_program(&b.build().unwrap(), &LintContext::manticore());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn a_thoroughly_broken_program_trips_many_passes() {
        // ssr.cfg while enabled, misaligned base, read of an unwritten
        // register, dead store, unreachable tail — one program, four
        // passes firing.
        let p = Program::from_ops_unchecked(vec![
            MicroOp::Li {
                rd: IntReg::new(1),
                imm: 13, // misaligned base
            },
            MicroOp::SsrEnable,
            MicroOp::SsrCfg {
                stream: 0,
                base: IntReg::new(1),
                stride: 8,
                count: 4,
                write: false,
            },
            MicroOp::Fsd {
                fs: FpReg::new(9), // never written
                rs: IntReg::new(2),
                offset: 0,
            },
            MicroOp::Li {
                rd: IntReg::new(3), // dead store
                imm: 0,
            },
            MicroOp::Halt, // streaming still enabled
            MicroOp::Halt, // unreachable
        ]);
        let report = lint_program(&p, &LintContext::manticore());
        let codes: std::collections::HashSet<&str> =
            report.diagnostics.iter().map(|d| d.code.code()).collect();
        for expected in ["L001", "L002", "L003", "L004", "L005", "L011"] {
            assert!(codes.contains(expected), "missing {expected}: {report}");
        }
        assert!(report.has_errors());
        assert!(report.error_count() >= 4);
    }

    #[test]
    fn custom_pass_registration() {
        struct Nitpick;
        impl Lint for Nitpick {
            fn name(&self) -> &'static str {
                "nitpick"
            }
            fn run(&self, program: &Program, _cx: &LintContext, out: &mut Vec<Diagnostic>) {
                if program.ops().len() > 3 {
                    out.push(Diagnostic::global(DiagCode::UnreachableOp, "too long"));
                }
            }
        }
        let linter = Linter::empty(LintContext::default()).with(Nitpick);
        assert_eq!(linter.pass_names(), vec!["nitpick"]);
        let mut b = ProgramBuilder::new();
        for _ in 0..4 {
            b.li(IntReg::new(1), 0);
        }
        b.halt();
        let report = linter.lint(&b.build().unwrap());
        assert_eq!(report.diagnostics.len(), 1);
    }

    #[test]
    fn context_tracks_soc_config() {
        let cx = LintContext::for_soc(&SocConfig::manticore());
        assert_eq!(cx, LintContext::manticore());
        let mut small = SocConfig::manticore();
        small.tcdm_words = 64;
        assert_eq!(LintContext::for_soc(&small).tcdm_words, 64);
    }
}
