//! Static cycle-bound analysis: sound `[best, worst]` cycle intervals
//! from micro-program to whole offload.
//!
//! Three layers, each feeding the next:
//!
//! 1. **Program bounds** ([`bound_program`]) — an *abstract clock
//!    executor* mirrors the interpreter's timing recurrence exactly
//!    (fetch/pipe/register ready clocks, SSR dependency skipping, FREP
//!    zero-overhead wraparound) over a *loop-structured* view of the
//!    program recovered by [`loop_structure`]. Counted loops (a single
//!    `li C` / `addi -d` / `bnez` countdown, or FREP geometry) execute
//!    exactly up to a cap and are then *extrapolated*: after warm-up
//!    passes reach a steady state, the per-pass clock delta is applied
//!    closed-form to the remaining trips — the maximum delta for the
//!    upper bound (unconditionally sound in a max-plus system), the
//!    minimum delta for the lower bound (sound once the fetch clock
//!    dominates every loop-constant clock — certified at run time).
//!    Control flow the analysis cannot reduce is diagnosed as
//!    [`DiagCode::UnstructuredFlow`] (L021); loops whose trip count it
//!    cannot infer as [`DiagCode::UnboundableLoop`] (L020).
//! 2. **Offload bounds** ([`bound_offload`]) — closed-form best/worst
//!    milestones for a whole offload (dispatch, DMA-in, compute,
//!    DMA-out, sync, total) from the [`SocConfig`] event model:
//!    host marshalling and operand-prep throughput, `NoC`
//!    unicast/multicast delivery, cluster wake/descriptor/setup chain,
//!    width-bound DMA with HBM latency, credit-counter IRQ or software
//!    barrier polling, and the reduce combine tail. A
//!    [`ContentionEnvelope`] widens only the *worst* side for
//!    co-resident tenants; the best side is always the solo bound
//!    (contention can only delay).
//! 3. **Verification hooks** — [`OffloadBounds::check_phases`] replays a
//!    recorded phase breakdown against the bounds (the trace-replay
//!    sanitizer), and [`CostLint`] surfaces L020/L021 through the
//!    regular lint pipeline.

use std::collections::HashMap;

use mpsoc_isa::{BuildError, CoreTiming, FpReg, IntReg, MicroOp, PipeClass, Program};
use mpsoc_kernels::partition::split_even;
use mpsoc_kernels::{Kernel, KernelKind};
use mpsoc_offload::{DispatchStrategy, OffloadStrategy, RuntimeCosts, SyncStrategy};
use mpsoc_soc::{BankMode, SocConfig};
use serde::{Deserialize, Serialize};

use crate::descriptor::reference_slices;
use crate::diag::{DiagCode, Diagnostic, LintReport};
use crate::{Lint, LintContext};

/// Loops at or below this trip count execute pass-by-pass; above it the
/// analyzer warms up and extrapolates.
const EXACT_CAP: u64 = 64;
/// Warm-up passes before the first extrapolation probe.
const WARMUP_PASSES: u64 = 4;
/// Probe rounds (two passes each) before giving up on extrapolation.
const PROBE_ROUNDS: u32 = 4;
/// Abstract-execution fuel: retired abstract ops before the analysis
/// aborts with L020 (guards pathological exact fallbacks).
const FUEL: u64 = 50_000_000;

/// A sound `[best, worst]` cycle interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBounds {
    /// No execution finishes earlier than this.
    pub best: u64,
    /// No execution finishes later than this.
    pub worst: u64,
}

impl CycleBounds {
    /// The `[0, 0]` interval.
    pub const ZERO: CycleBounds = CycleBounds { best: 0, worst: 0 };

    /// The degenerate interval `[c, c]`.
    pub fn point(c: u64) -> Self {
        CycleBounds { best: c, worst: c }
    }

    /// `true` when `cycles` lies within the interval.
    pub fn contains(self, cycles: u64) -> bool {
        self.best <= cycles && cycles <= self.worst
    }

    /// Componentwise maximum (the bound on `max(a, b)` of two events).
    #[must_use]
    pub fn join_max(self, other: CycleBounds) -> Self {
        CycleBounds {
            best: self.best.max(other.best),
            worst: self.worst.max(other.worst),
        }
    }

    /// Widens only the worst side by `extra` (saturating).
    #[must_use]
    pub fn widen_worst(self, extra: u64) -> Self {
        CycleBounds {
            best: self.best,
            worst: self.worst.saturating_add(extra),
        }
    }

    /// `best <= worst` — every constructor must preserve this.
    pub fn is_well_formed(self) -> bool {
        self.best <= self.worst
    }

    /// Upper-bound tightness `worst / actual` (for reporting only).
    pub fn tightness(self, actual: u64) -> f64 {
        if actual == 0 {
            1.0
        } else {
            self.worst as f64 / actual as f64
        }
    }
}

impl std::ops::Add for CycleBounds {
    type Output = CycleBounds;

    /// Interval sum (saturating).
    fn add(self, other: CycleBounds) -> Self {
        CycleBounds {
            best: self.best.saturating_add(other.best),
            worst: self.worst.saturating_add(other.worst),
        }
    }
}

/// The cost analysis failed: the program's control flow could not be
/// bounded. Carries the L020/L021 diagnostics explaining why.
#[derive(Debug, Clone)]
pub struct CostError {
    /// Why the program is unboundable.
    pub report: LintReport,
}

impl CostError {
    fn new(diagnostics: Vec<Diagnostic>) -> Self {
        CostError {
            report: LintReport::new(diagnostics),
        }
    }

    fn fuel() -> Self {
        CostError::new(vec![Diagnostic::global(
            DiagCode::UnboundableLoop,
            "analysis fuel exhausted: loop structure too large to bound statically",
        )])
    }

    fn build(err: &BuildError) -> Self {
        CostError::new(vec![Diagnostic::global(
            DiagCode::UnstructuredFlow,
            format!("kernel codegen failed: {err}"),
        )])
    }
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cost analysis failed: {}", self.report)
    }
}

impl std::error::Error for CostError {}

/// Static cost of one micro-program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramCost {
    /// Completion-cycle bounds (interpreter `finish` semantics).
    pub cycles: CycleBounds,
    /// Dynamic micro-ops retired.
    pub retired: u64,
    /// Explicit TCDM accesses (loads + stores; a paired store is one).
    pub mem_accesses: u64,
}

// ---------------------------------------------------------------------------
// Loop structure recovery
// ---------------------------------------------------------------------------

/// One node of the reduced control-flow view: either a straight-line op
/// or a counted loop with a known trip count.
#[derive(Debug, Clone)]
pub enum Seg {
    /// A single op at this index.
    Op(usize),
    /// A counted loop.
    Loop {
        /// The `frep` op index for hardware loops.
        frep_op: Option<usize>,
        /// The back-branch op index for software loops.
        bnez_op: Option<usize>,
        /// Body segments, in program order.
        body: Vec<Seg>,
        /// Total body executions (>= 1).
        trips: u64,
    },
}

fn int_dest(op: MicroOp) -> Option<IntReg> {
    match op {
        MicroOp::Li { rd, .. } | MicroOp::Addi { rd, .. } | MicroOp::Add { rd, .. } => Some(rd),
        _ => None,
    }
}

fn seg_writes_int(seg: &Seg, ops: &[MicroOp], reg: IntReg) -> bool {
    match seg {
        Seg::Op(i) => int_dest(ops[*i]) == Some(reg),
        Seg::Loop { body, .. } => body.iter().any(|s| seg_writes_int(s, ops, reg)),
    }
}

/// Recovers the nested counted-loop structure of `ops`.
///
/// Accepted shapes are exactly what the kernel zoo's builder emits:
/// FREP bodies free of control flow, and backward `bnez` do-while loops
/// whose counter is initialized by a reaching `li C` (`C > 0`) and
/// decremented by a single top-level `addi counter, counter, -d` with
/// `d | C` (trip count `C / d`). Anything else earns L020 (trip count
/// not inferable) or L021 (flow not reducible) and the analysis refuses
/// to produce bounds rather than guess.
///
/// # Errors
///
/// The diagnostics (`UnboundableLoop` / `UnstructuredFlow`) explaining
/// the first unsupported construct.
pub fn loop_structure(ops: &[MicroOp]) -> Result<Vec<Seg>, Vec<Diagnostic>> {
    // `emitted` holds completed top-level segments with their start pc;
    // a backward branch pops a suffix of it into a loop body.
    let mut emitted: Vec<(usize, Seg)> = Vec::new();
    let mut pc = 0usize;
    while pc < ops.len() {
        match ops[pc] {
            MicroOp::Frep { iterations, body } => {
                let body_len = body as usize;
                let end = pc + body_len;
                if body_len == 0 || end >= ops.len() {
                    return Err(vec![Diagnostic::at(
                        DiagCode::UnstructuredFlow,
                        pc,
                        format!("frep body of {body_len} ops extends past the program end"),
                    )]);
                }
                let mut body_segs = Vec::with_capacity(body_len);
                for (off, op) in ops[pc + 1..=end].iter().enumerate() {
                    let i = pc + 1 + off;
                    if matches!(
                        op,
                        MicroOp::Frep { .. } | MicroOp::Bnez { .. } | MicroOp::Halt
                    ) {
                        return Err(vec![Diagnostic::at(
                            DiagCode::UnstructuredFlow,
                            i,
                            "control-flow op inside a frep body",
                        )]);
                    }
                    body_segs.push(Seg::Op(i));
                }
                emitted.push((
                    pc,
                    Seg::Loop {
                        frep_op: Some(pc),
                        bnez_op: None,
                        body: body_segs,
                        trips: iterations.max(1),
                    },
                ));
                pc = end + 1;
            }
            MicroOp::Bnez { rs, target } => {
                if target > pc {
                    return Err(vec![Diagnostic::at(
                        DiagCode::UnstructuredFlow,
                        pc,
                        "forward branch: only backward counted loops are boundable",
                    )]);
                }
                let body_segs: Vec<Seg> = if target == pc {
                    Vec::new()
                } else {
                    let split = emitted.iter().position(|(s, _)| *s >= target);
                    match split {
                        Some(ix) if emitted[ix].0 == target => {
                            emitted.split_off(ix).into_iter().map(|(_, s)| s).collect()
                        }
                        _ => {
                            return Err(vec![Diagnostic::at(
                                DiagCode::UnstructuredFlow,
                                pc,
                                "branch targets the interior of an earlier loop body",
                            )]);
                        }
                    }
                };
                // Trip-count inference: exactly one top-level countdown
                // of the branch counter inside the body.
                let mut decrement: Option<u64> = None;
                let mut writes = 0usize;
                let mut nested_write = false;
                for seg in &body_segs {
                    match seg {
                        Seg::Op(i) => {
                            if int_dest(ops[*i]) == Some(rs) {
                                writes += 1;
                                if let MicroOp::Addi { rs: src, imm, .. } = ops[*i] {
                                    if src == rs && imm < 0 {
                                        decrement = Some(imm.unsigned_abs());
                                    }
                                }
                            }
                        }
                        Seg::Loop { .. } => {
                            if seg_writes_int(seg, ops, rs) {
                                nested_write = true;
                            }
                        }
                    }
                }
                if nested_write {
                    return Err(vec![Diagnostic::at(
                        DiagCode::UnboundableLoop,
                        pc,
                        format!("loop counter {rs} is written inside a nested loop"),
                    )]);
                }
                let Some(step) = decrement.filter(|_| writes == 1) else {
                    return Err(vec![Diagnostic::at(
                        DiagCode::UnboundableLoop,
                        pc,
                        format!(
                            "loop counter {rs} is not a single `addi {rs}, {rs}, -d` countdown"
                        ),
                    )]);
                };
                // Reaching definition of the counter before the loop.
                let mut init: Option<i64> = None;
                let mut found_def = false;
                for (_, seg) in emitted.iter().rev() {
                    match seg {
                        Seg::Op(i) => {
                            if int_dest(ops[*i]) == Some(rs) {
                                found_def = true;
                                if let MicroOp::Li { imm, .. } = ops[*i] {
                                    init = Some(imm);
                                }
                                break;
                            }
                        }
                        Seg::Loop { .. } => {
                            if seg_writes_int(seg, ops, rs) {
                                found_def = true;
                                break;
                            }
                        }
                    }
                }
                let trips = match init {
                    Some(c) if c > 0 && c.unsigned_abs() % step == 0 => c.unsigned_abs() / step,
                    _ => {
                        let why = if found_def && init.is_none() {
                            "initialized by a non-`li` op"
                        } else if init.is_some() {
                            "not a positive multiple of the decrement"
                        } else {
                            "never initialized before the loop"
                        };
                        return Err(vec![Diagnostic::at(
                            DiagCode::UnboundableLoop,
                            pc,
                            format!("loop counter {rs} init is {why}"),
                        )]);
                    }
                };
                emitted.push((
                    target,
                    Seg::Loop {
                        frep_op: None,
                        bnez_op: Some(pc),
                        body: body_segs,
                        trips,
                    },
                ));
                pc += 1;
            }
            MicroOp::Halt => {
                emitted.push((pc, Seg::Op(pc)));
                // Anything after an unconditional halt is unreachable.
                break;
            }
            _ => {
                emitted.push((pc, Seg::Op(pc)));
                pc += 1;
            }
        }
    }
    Ok(emitted.into_iter().map(|(_, s)| s).collect())
}

// ---------------------------------------------------------------------------
// Abstract clock executor
// ---------------------------------------------------------------------------

// Clock vector layout: the exact state of the interpreter's timing
// recurrence (functional register *values* are not tracked — trip
// counts already came from the structure pass).
const NCLK: usize = 54;
const CLK_FETCH: usize = 0;
const CLK_PIPE0: usize = 1; // 4 pipes: Mem, Fp, Int, Ctrl
const CLK_INT0: usize = 5; // 16 integer registers
const CLK_FP0: usize = 21; // 32 fp registers
const CLK_HIGH: usize = 53; // completion high-water mark

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Lower bound: ideal memory, minimum per-pass delta.
    Lo,
    /// Upper bound: widened memory, maximum per-pass delta.
    Hi,
}

/// Write-set / constant-read recorder for one probe pass.
struct Probe {
    written: [bool; NCLK],
    /// The write set of the previous probe pass; reads of clocks outside
    /// it contribute to `const_max`.
    frozen: Option<[bool; NCLK]>,
    const_max: u64,
}

struct AbsCore<'a> {
    ops: &'a [MicroOp],
    timing: &'a CoreTiming,
    mode: Mode,
    /// Extra cycles added to every explicit TCDM access (Hi mode only):
    /// the banked-TCDM widening.
    mem_extra: u64,
    clocks: [u64; NCLK],
    ssr_enabled: bool,
    configured: [bool; 3],
    finish: Option<u64>,
    last_issue: u64,
    retired: u64,
    mem_accesses: u64,
    fuel: u64,
    probe: Option<Probe>,
}

struct Overrun;

impl<'a> AbsCore<'a> {
    fn new(ops: &'a [MicroOp], timing: &'a CoreTiming, mode: Mode, mem_extra: u64) -> Self {
        AbsCore {
            ops,
            timing,
            mode,
            mem_extra,
            clocks: [0; NCLK],
            ssr_enabled: false,
            configured: [false; 3],
            finish: None,
            last_issue: 0,
            retired: 0,
            mem_accesses: 0,
            fuel: FUEL,
            probe: None,
        }
    }

    fn read_clk(&mut self, i: usize) -> u64 {
        if let Some(p) = self.probe.as_mut() {
            if let Some(frozen) = p.frozen {
                if !frozen[i] {
                    p.const_max = p.const_max.max(self.clocks[i]);
                }
            }
        }
        self.clocks[i]
    }

    fn write_clk(&mut self, i: usize, v: u64) {
        if let Some(p) = self.probe.as_mut() {
            p.written[i] = true;
        }
        self.clocks[i] = v;
    }

    fn ready_int(&mut self, r: IntReg, operand_ready: &mut u64) {
        let v = self.read_clk(CLK_INT0 + r.index());
        *operand_ready = (*operand_ready).max(v);
    }

    fn ready_fp(&mut self, r: FpReg, operand_ready: &mut u64) {
        // Enabled streams are prefetched by dedicated SSR ports: no
        // register-file dependency (mirrors the interpreter exactly).
        if self.ssr_enabled && r.index() < 3 && self.configured[r.index()] {
            return;
        }
        let v = self.read_clk(CLK_FP0 + r.index());
        *operand_ready = (*operand_ready).max(v);
    }

    fn fp_write(&mut self, fd: FpReg, ready: u64) {
        // Stream-mapped destinations push to memory: the register file
        // is untouched.
        if self.ssr_enabled && fd.index() < 3 && self.configured[fd.index()] {
            return;
        }
        self.write_clk(CLK_FP0 + fd.index(), ready);
    }

    /// Mirrors one step of `Interpreter::run_from` on the clock vector.
    fn exec_op(&mut self, idx: usize, taken: bool) -> Result<(), Overrun> {
        if self.fuel == 0 {
            return Err(Overrun);
        }
        self.fuel -= 1;
        let op = self.ops[idx];
        let t = self.timing;
        let pipe = if t.single_issue {
            0
        } else {
            match op.pipe() {
                PipeClass::Mem => 0,
                PipeClass::Fp => 1,
                PipeClass::Int => 2,
                PipeClass::Ctrl => 3,
            }
        };
        let fetch = self.read_clk(CLK_FETCH);
        let pipe_clk = self.read_clk(CLK_PIPE0 + pipe);
        let base = fetch.max(pipe_clk);
        let mut issue = base;
        match op {
            MicroOp::Li { .. }
            | MicroOp::SsrEnable
            | MicroOp::SsrDisable
            | MicroOp::Frep { .. }
            | MicroOp::Halt => {}
            MicroOp::Addi { rs, .. } | MicroOp::Fld { rs, .. } | MicroOp::Bnez { rs, .. } => {
                self.ready_int(rs, &mut issue);
            }
            MicroOp::Add { rs1, rs2, .. } => {
                self.ready_int(rs1, &mut issue);
                self.ready_int(rs2, &mut issue);
            }
            MicroOp::Fsd { fs, rs, .. } => {
                self.ready_fp(fs, &mut issue);
                self.ready_int(rs, &mut issue);
            }
            MicroOp::FsdPair { fs1, fs2, rs, .. } => {
                self.ready_fp(fs1, &mut issue);
                self.ready_fp(fs2, &mut issue);
                self.ready_int(rs, &mut issue);
            }
            MicroOp::Fmadd { fa, fb, fc, .. } => {
                self.ready_fp(fa, &mut issue);
                self.ready_fp(fb, &mut issue);
                self.ready_fp(fc, &mut issue);
            }
            MicroOp::Fadd { fa, fb, .. } | MicroOp::Fmul { fa, fb, .. } => {
                self.ready_fp(fa, &mut issue);
                self.ready_fp(fb, &mut issue);
            }
            MicroOp::SsrCfg { base: b, .. } => self.ready_int(b, &mut issue),
        }
        if op.is_mem() {
            // The interpreter consults the TCDM bank arbiter here. The
            // lower bound uses the ideal grant (never later than any
            // arbiter); the upper bound widens each access by the
            // configured conflict allowance.
            self.mem_accesses += 1;
            if self.mode == Mode::Hi {
                issue = issue.saturating_add(self.mem_extra);
            }
        }
        // Destinations.
        match op {
            MicroOp::Li { rd, .. } | MicroOp::Addi { rd, .. } | MicroOp::Add { rd, .. } => {
                self.write_clk(CLK_INT0 + rd.index(), issue.saturating_add(t.int_latency));
            }
            MicroOp::Fld { fd, .. } => {
                self.write_clk(CLK_FP0 + fd.index(), issue.saturating_add(t.load_latency));
            }
            MicroOp::Fmadd { fd, .. } | MicroOp::Fadd { fd, .. } | MicroOp::Fmul { fd, .. } => {
                self.fp_write(fd, issue.saturating_add(t.fp_latency));
            }
            MicroOp::SsrCfg { stream, .. } => {
                if (stream as usize) < 3 {
                    self.configured[stream as usize] = true;
                }
            }
            MicroOp::SsrEnable => self.ssr_enabled = true,
            MicroOp::SsrDisable => self.ssr_enabled = false,
            MicroOp::Halt => {
                let hw = self.read_clk(CLK_HIGH);
                self.finish = Some(hw.max(issue));
                self.retired += 1;
                return Ok(());
            }
            MicroOp::Fsd { .. }
            | MicroOp::FsdPair { .. }
            | MicroOp::Bnez { .. }
            | MicroOp::Frep { .. } => {}
        }
        let completion = match op.pipe() {
            PipeClass::Mem | PipeClass::Ctrl => issue.saturating_add(1),
            PipeClass::Fp => issue.saturating_add(t.fp_latency),
            PipeClass::Int => issue.saturating_add(t.int_latency),
        };
        let hw = self.read_clk(CLK_HIGH).max(completion);
        self.write_clk(CLK_HIGH, hw);
        self.write_clk(CLK_PIPE0 + pipe, issue.saturating_add(1));
        if matches!(op, MicroOp::Bnez { .. }) && taken {
            self.write_clk(CLK_FETCH, issue.saturating_add(1 + t.branch_taken_penalty));
        } else {
            let f = self.read_clk(CLK_FETCH).max(issue);
            self.write_clk(CLK_FETCH, f);
        }
        self.last_issue = issue;
        self.retired += 1;
        Ok(())
    }

    fn exec_segs(&mut self, segs: &[Seg], allow_extra: bool) -> Result<(), Overrun> {
        for seg in segs {
            if self.finish.is_some() {
                return Ok(());
            }
            match seg {
                Seg::Op(i) => self.exec_op(*i, false)?,
                Seg::Loop {
                    frep_op,
                    bnez_op,
                    body,
                    trips,
                } => self.exec_loop(*frep_op, *bnez_op, body, *trips, allow_extra)?,
            }
        }
        Ok(())
    }

    /// One loop pass: the body, then the back branch (`taken` decides
    /// whether it pays the fetch bubble).
    fn run_pass(
        &mut self,
        body: &[Seg],
        bnez_op: Option<usize>,
        taken: bool,
        allow_extra: bool,
    ) -> Result<(), Overrun> {
        self.exec_segs(body, allow_extra)?;
        if let Some(b) = bnez_op {
            if self.finish.is_none() {
                self.exec_op(b, taken)?;
            }
        }
        Ok(())
    }

    fn exec_loop(
        &mut self,
        frep_op: Option<usize>,
        bnez_op: Option<usize>,
        body: &[Seg],
        trips: u64,
        allow_extra: bool,
    ) -> Result<(), Overrun> {
        if let Some(f) = frep_op {
            self.exec_op(f, false)?;
        }
        // A bnez do-while runs `trips - 1` taken passes then one final
        // not-taken pass; a frep loop runs `trips` identical passes.
        let (uniform, has_final) = match bnez_op {
            Some(_) => (trips.saturating_sub(1), true),
            None => (trips, false),
        };
        let extrapolate = allow_extra && uniform > EXACT_CAP;
        if extrapolate {
            // Warm up into the steady state, then certify and apply the
            // per-pass delta closed-form. All probe passes run with
            // extrapolation disabled in nested loops so each pass is the
            // *exact* one-pass transfer function.
            let mut done = 0u64;
            while done < WARMUP_PASSES.min(uniform) {
                self.run_pass(body, bnez_op, true, false)?;
                done += 1;
            }
            let mut rounds = 0u32;
            while done + 2 <= uniform && rounds < PROBE_ROUNDS {
                rounds += 1;
                let flags_before = (self.ssr_enabled, self.configured);
                // Pass A: record the write set.
                self.probe = Some(Probe {
                    written: [false; NCLK],
                    frozen: None,
                    const_max: 0,
                });
                self.run_pass(body, bnez_op, true, false)?;
                let written = self.probe.take().map_or([false; NCLK], |p| p.written);
                done += 1;
                // Pass B: record constant reads + deltas against A's set.
                let start = self.clocks;
                let retired0 = self.retired;
                let mem0 = self.mem_accesses;
                self.probe = Some(Probe {
                    written: [false; NCLK],
                    frozen: Some(written),
                    const_max: 0,
                });
                self.run_pass(body, bnez_op, true, false)?;
                let probe = self.probe.take().expect("probe survives the pass");
                done += 1;
                let per_retired = self.retired - retired0;
                let per_mem = self.mem_accesses - mem0;
                let stable = probe.written == written
                    && (self.ssr_enabled, self.configured) == flags_before
                    && self.finish.is_none()
                    // Dominance certificate: once the fetch clock has
                    // passed every loop-constant clock, constants can
                    // never again decide a max, so the one-pass map is
                    // a pure max-plus shift on the written set.
                    && self.clocks[CLK_FETCH] >= probe.const_max;
                if !stable {
                    continue;
                }
                let mut d_min = u64::MAX;
                let mut d_max = 0u64;
                let mut any = false;
                for i in 0..NCLK {
                    if written[i] {
                        any = true;
                        let d = self.clocks[i] - start[i];
                        d_min = d_min.min(d);
                        d_max = d_max.max(d);
                    }
                }
                let delta = match self.mode {
                    Mode::Lo => {
                        if any {
                            d_min
                        } else {
                            0
                        }
                    }
                    Mode::Hi => d_max,
                };
                let remaining = uniform - done;
                let shift = delta.saturating_mul(remaining);
                for (clk, &w) in written.iter().enumerate() {
                    if w {
                        self.clocks[clk] = self.clocks[clk].saturating_add(shift);
                    }
                }
                self.retired = self
                    .retired
                    .saturating_add(per_retired.saturating_mul(remaining));
                self.mem_accesses = self
                    .mem_accesses
                    .saturating_add(per_mem.saturating_mul(remaining));
                done = uniform;
            }
            while done < uniform {
                self.run_pass(body, bnez_op, true, false)?;
                done += 1;
            }
        } else {
            for _ in 0..uniform {
                self.run_pass(body, bnez_op, true, allow_extra)?;
            }
        }
        if has_final && self.finish.is_none() {
            self.run_pass(body, bnez_op, false, allow_extra && !extrapolate)?;
        }
        Ok(())
    }

    fn finish_cycles(&self) -> u64 {
        self.finish
            .unwrap_or_else(|| self.clocks[CLK_HIGH].max(self.last_issue))
    }
}

fn run_abs(
    ops: &[MicroOp],
    segs: &[Seg],
    timing: &CoreTiming,
    mode: Mode,
    mem_extra: u64,
) -> Result<(u64, u64, u64), CostError> {
    let mut core = AbsCore::new(ops, timing, mode, mem_extra);
    core.exec_segs(segs, true)
        .map_err(|Overrun| CostError::fuel())?;
    Ok((core.finish_cycles(), core.retired, core.mem_accesses))
}

/// Sound completion-cycle bounds for `program` under `timing`, assuming
/// an ideal (conflict-free) memory port. For solo execution on an ideal
/// TCDM the bounds are *exact* whenever every loop runs pass-by-pass
/// (`best == worst`); extrapolated loops may open a small interval.
///
/// # Errors
///
/// [`CostError`] with L020/L021 diagnostics when the program's control
/// flow cannot be bounded.
pub fn bound_program(program: &Program, timing: &CoreTiming) -> Result<ProgramCost, CostError> {
    bound_program_widened(program, timing, 0)
}

/// Like [`bound_program`], but widens every explicit TCDM access on the
/// worst side by `mem_extra` cycles — the (coarse, sound) banked-TCDM
/// conflict allowance. The best side always uses the ideal port.
///
/// # Errors
///
/// See [`bound_program`].
pub fn bound_program_widened(
    program: &Program,
    timing: &CoreTiming,
    mem_extra: u64,
) -> Result<ProgramCost, CostError> {
    let ops = program.ops();
    let segs = loop_structure(ops).map_err(CostError::new)?;
    let (lo, _, _) = run_abs(ops, &segs, timing, Mode::Lo, 0)?;
    let (hi, retired, mem_accesses) = run_abs(ops, &segs, timing, Mode::Hi, mem_extra)?;
    Ok(ProgramCost {
        cycles: CycleBounds {
            best: lo,
            worst: hi.max(lo),
        },
        retired,
        mem_accesses,
    })
}

// ---------------------------------------------------------------------------
// Offload-level bounds
// ---------------------------------------------------------------------------

/// Upper-bound allowance for co-resident tenants sharing the `SoC`.
///
/// All zeros (the [`Default`]) models solo execution. Each field is an
/// upper bound on what *other* tenants consume concurrently; the worst
/// side of every milestone absorbs it, the best side never does
/// (contention can only delay an offload, never accelerate it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionEnvelope {
    /// HBM words other tenants move while this job is in flight.
    pub hbm_words: u64,
    /// Serial host-core cycles other tenants consume (marshalling,
    /// dispatch loops, ISRs).
    pub host_cycles: u64,
    /// Atomic operations other tenants issue at the synchronization
    /// counter's AMO unit.
    pub amo_ops: u64,
    /// `NoC` messages other tenants inject that can serialize ahead of
    /// this job's at the host ingress port.
    pub noc_messages: u64,
}

impl ContentionEnvelope {
    /// A sound envelope for the traffic **one** job of this shape
    /// contributes — what a co-tenant should budget for it.
    pub fn for_job(
        kernel: &dyn Kernel,
        elems: u64,
        clusters: usize,
        strategy: OffloadStrategy,
        config: &SocConfig,
        costs: &RuntimeCosts,
    ) -> Self {
        let m = clusters as u64;
        let cores = config.cores_per_cluster;
        let total_cores = m * cores as u64;
        let prep = kernel.dma_in_words(elems) + kernel.dma_out_words(elems, total_cores);
        let mut dma = 0u64;
        for chunk in split_even(elems, clusters) {
            dma += cluster_dma_words(kernel, chunk.count, cores).0;
            dma += cluster_dma_words(kernel, chunk.count, cores).1;
        }
        let prep_cycles = prep.div_ceil(config.host_prep_words_per_cycle.max(1));
        let inject = config.noc.inject_cycles.as_u64();
        let dispatch = match strategy.dispatch {
            DispatchStrategy::Multicast => 2 * inject,
            DispatchStrategy::Sequential => (costs.dispatch_loop_cycles + 2 * inject) * m,
        };
        let host_cycles = costs.marshal_cycles
            + config.descriptor_words
            + prep_cycles
            + inject
            + dispatch
            + costs.isr_cycles
            + costs.barrier_exit_cycles
            + costs.combine_per_partial_cycles * total_cores;
        ContentionEnvelope {
            hbm_words: prep + config.descriptor_words + 1 + dma,
            host_cycles,
            amo_ops: m + 1,
            noc_messages: 4 * m + 8,
        }
    }
}

/// Best/worst milestones for one offload, all measured from submission.
///
/// Milestones are cumulative (each is the *completion* time of its
/// phase across all clusters) and non-decreasing:
/// `dispatch <= dma_in <= compute <= dma_out <= sync <= total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadBounds {
    /// Last cluster wakeup delivery.
    pub dispatch: CycleBounds,
    /// Last cluster DMA-in completion.
    pub dma_in: CycleBounds,
    /// Last cluster compute completion.
    pub compute: CycleBounds,
    /// Last cluster DMA-out completion.
    pub dout: CycleBounds,
    /// Host-observed completion (IRQ fire or barrier poll hit).
    pub sync: CycleBounds,
    /// End-to-end offload runtime (the paper's Eq. 1 left side).
    pub total: CycleBounds,
}

impl OffloadBounds {
    /// `true` when every interval is well-formed and the milestone
    /// chain is monotone on both sides.
    pub fn is_well_formed(&self) -> bool {
        let ms = [
            self.dispatch,
            self.dma_in,
            self.compute,
            self.dout,
            self.sync,
            self.total,
        ];
        ms.iter().all(|b| b.is_well_formed())
            && ms
                .windows(2)
                .all(|w| w[0].best <= w[1].best && w[0].worst <= w[1].worst)
    }

    /// Replays a recorded phase breakdown (the five durations of
    /// `mpsoc_telemetry::PhaseBreakdown`, in order: dispatch, `dma_in`,
    /// compute, `dma_out`, sync) against the bounds — the trace-replay
    /// sanitizer. Milestones are reconstructed by prefix sum.
    ///
    /// # Errors
    ///
    /// A human-readable list of every violated milestone.
    pub fn check_phases(&self, durations: [u64; 5]) -> Result<(), String> {
        let mut milestone = 0u64;
        let mut violations = Vec::new();
        let names = ["dispatch", "dma_in", "compute", "dma_out", "total"];
        let bounds = [
            self.dispatch,
            self.dma_in,
            self.compute,
            self.dout,
            self.total,
        ];
        for (i, d) in durations.iter().enumerate() {
            milestone += d;
            if !bounds[i].contains(milestone) {
                violations.push(format!(
                    "{} milestone {} outside [{}, {}]",
                    names[i], milestone, bounds[i].best, bounds[i].worst
                ));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    }
}

/// DMA word counts `(in, out)` for one cluster working on `chunk` elems.
fn cluster_dma_words(kernel: &dyn Kernel, chunk: u64, cores: usize) -> (u64, u64) {
    let mut w_in = 0u64;
    if chunk > 0 {
        if kernel.uses_x() {
            w_in += chunk * kernel.x_words_per_elem() + 2 * kernel.x_halo();
        }
        if kernel.uses_y() {
            w_in += chunk;
        }
    }
    let w_out = match kernel.kind() {
        KernelKind::Map => chunk,
        KernelKind::Reduce => cores as u64,
    };
    (w_in, w_out)
}

/// Uncontended DMA task duration for `words` (zero-word tasks complete
/// immediately, mirroring the `SoC` model).
fn dma_cycles(words: u64, config: &SocConfig) -> u64 {
    if words == 0 {
        0
    } else {
        words.div_ceil(config.dma_words_per_cycle.max(1)) + config.mem_latency
    }
}

/// Per-cluster compute bounds: the slowest core's program bounds, with
/// the banked-TCDM widening applied when the config models conflicts.
fn cluster_compute_bounds(
    kernel: &dyn Kernel,
    chunk: u64,
    config: &SocConfig,
) -> Result<CycleBounds, CostError> {
    let cores = config.cores_per_cluster;
    let slices = reference_slices(kernel, chunk, cores);
    let mut programs = Vec::with_capacity(slices.len());
    for slice in &slices {
        programs.push(kernel.codegen(slice).map_err(|e| CostError::build(&e))?);
    }
    let mut base = Vec::with_capacity(programs.len());
    for p in &programs {
        base.push(bound_program(p, &config.core_timing)?);
    }
    let total_mem: u64 = base.iter().map(|c| c.mem_accesses).sum();
    let banked = config.bank_mode == BankMode::Banked;
    let mut out = CycleBounds::ZERO;
    for (i, cost) in base.iter().enumerate() {
        let worst = if banked && total_mem > cost.mem_accesses {
            // Coarse but sound: each access may wait behind every other
            // core's accesses in the worst interleaving.
            bound_program_widened(
                &programs[i],
                &config.core_timing,
                total_mem - cost.mem_accesses,
            )?
            .cycles
            .worst
        } else {
            cost.cycles.worst
        };
        out = out.join_max(CycleBounds {
            best: cost.cycles.best,
            worst,
        });
    }
    Ok(out)
}

/// Sound `[best, worst]` milestones for offloading `elems` elements of
/// `kernel` to `clusters` clusters under `strategy`, on a machine
/// described by `config` + `costs`, sharing the `SoC` with at most
/// `envelope` worth of co-resident traffic.
///
/// # Errors
///
/// [`CostError`] when any generated core program cannot be bounded.
///
/// # Panics
///
/// Panics if `clusters` is zero or exceeds `config.clusters`.
pub fn bound_offload(
    kernel: &dyn Kernel,
    elems: u64,
    clusters: usize,
    strategy: OffloadStrategy,
    config: &SocConfig,
    costs: &RuntimeCosts,
    envelope: &ContentionEnvelope,
) -> Result<OffloadBounds, CostError> {
    assert!(
        clusters >= 1 && clusters <= config.clusters,
        "cluster count {clusters} outside 1..={}",
        config.clusters
    );
    let m = clusters as u64;
    let cores = config.cores_per_cluster;
    let noc = &config.noc;
    let one_way = noc.one_way(config.clusters).as_u64();
    let levels = u64::from(noc.levels(config.clusters));
    let inject = noc.inject_cycles.as_u64();
    let ingress = noc.ingress_cycles.as_u64();
    let replicate = noc.replicate_cycles.as_u64();

    // --- Host issue: marshal, descriptor write, operand prep, arm. ---
    let prep_words = kernel.dma_in_words(elems) + kernel.dma_out_words(elems, m * cores as u64);
    let prep_cycles = prep_words.div_ceil(config.host_prep_words_per_cycle.max(1));
    let p_host = costs.marshal_cycles + config.descriptor_words + prep_cycles + inject;

    // --- Wakeup delivery per cluster + host-ready time. ---
    let (deliveries, host_ready): (Vec<u64>, u64) = match strategy.dispatch {
        DispatchStrategy::Multicast => {
            let injected = p_host + 2 * inject;
            let delivered = injected + one_way + replicate * levels + ingress;
            (vec![delivered; clusters], injected)
        }
        DispatchStrategy::Sequential => {
            let block = costs.dispatch_loop_cycles + 2 * inject;
            let deliveries = (1..=m)
                .map(|i| p_host + block * i + one_way + ingress)
                .collect();
            (deliveries, p_host + block * m)
        }
    };

    // --- Contention widenings (worst side only). ---
    let chunks = split_even(elems, clusters);
    let mut job_hbm = prep_words + config.descriptor_words + 1;
    for chunk in &chunks {
        let (w_in, w_out) = cluster_dma_words(kernel, chunk.count, cores);
        job_hbm += w_in + w_out;
    }
    let hbm_allow = job_hbm
        .saturating_add(envelope.hbm_words)
        .div_ceil(config.mem_words_per_cycle.max(1));
    let host_extra = envelope.host_cycles;
    let noc_extra = envelope.noc_messages.saturating_mul(ingress);
    let amo_extra = envelope.amo_ops.saturating_mul(config.amo_service);

    // --- Per-cluster chains: wake → descriptor → setup → DMA-in →
    //     compute → DMA-out, folded with max across clusters. ---
    let desc_fetch = 2 * one_way
        + config.mem_latency
        + config
            .descriptor_words
            .div_ceil(config.mem_words_per_cycle.max(1));
    let chain_lead = config.cluster_wake_cycles + desc_fetch + config.cluster_setup_cycles;
    let mut compute_memo: HashMap<u64, CycleBounds> = HashMap::new();
    let mut dispatch = CycleBounds::ZERO;
    let mut dma_in = CycleBounds::ZERO;
    let mut compute = CycleBounds::ZERO;
    let mut dout = CycleBounds::ZERO;
    for (i, chunk) in chunks.iter().enumerate() {
        let (w_in, w_out) = cluster_dma_words(kernel, chunk.count, cores);
        let prog = if let Some(b) = compute_memo.get(&chunk.count) {
            *b
        } else {
            let b = cluster_compute_bounds(kernel, chunk.count, config)?;
            compute_memo.insert(chunk.count, b);
            b
        };
        let del = deliveries[i];
        let del_hi = del + host_extra + noc_extra;
        let start_lo = del + chain_lead;
        let start_hi = del_hi + chain_lead + hbm_allow; // descriptor fetch shares HBM
        let din_lo = start_lo + dma_cycles(w_in, config);
        let din_hi = start_hi + dma_cycles(w_in, config) + hbm_allow;
        let comp_lo = din_lo + config.core_start_cycles + prog.best;
        let comp_hi = din_hi + config.core_start_cycles + prog.worst;
        let dout_lo = comp_lo + dma_cycles(w_out, config);
        let dout_hi = comp_hi + dma_cycles(w_out, config) + hbm_allow;
        dispatch = dispatch.join_max(CycleBounds {
            best: del,
            worst: del_hi,
        });
        dma_in = dma_in.join_max(CycleBounds {
            best: din_lo,
            worst: din_hi,
        });
        compute = compute.join_max(CycleBounds {
            best: comp_lo,
            worst: comp_hi,
        });
        dout = dout.join_max(CycleBounds {
            best: dout_lo,
            worst: dout_hi,
        });
    }

    // --- Synchronization + host tail. ---
    let reduce_tail = match kernel.kind() {
        KernelKind::Reduce => costs.combine_per_partial_cycles * m * cores as u64,
        KernelKind::Map => 0,
    };
    let (sync, total) = match strategy.sync {
        SyncStrategy::CreditCounter => {
            let arrive_lo = dout.best + one_way + ingress;
            let arrive_hi = dout.worst + one_way + ingress + amo_extra;
            let sync_lo = arrive_lo + config.irq_latency;
            let sync_hi = arrive_hi + config.irq_latency;
            let resume_lo = sync_lo.max(host_ready);
            let resume_hi = sync_hi.max(host_ready + host_extra);
            let sync = CycleBounds {
                best: sync_lo,
                worst: sync_hi,
            };
            let total = CycleBounds {
                best: resume_lo + costs.isr_cycles + reduce_tail,
                worst: resume_hi + costs.isr_cycles + reduce_tail,
            };
            (sync, total)
        }
        SyncStrategy::SoftwareBarrier => {
            // Barrier arrivals serialize at the host ingress: the last
            // counter update lands within [+0, +(m-1)] of the last
            // arrival, plus the AMO allowance under contention.
            let visible_lo = dout.best + one_way + ingress;
            let visible_hi = dout.worst + one_way + ingress + (m - 1) + amo_extra;
            let read_latency = 2 * one_way + config.mem_latency;
            let period = read_latency + costs.spin_cycles;
            // The host polls on a grid anchored at its ready time; the
            // hit can land up to one full period after visibility.
            let sync_lo = host_ready.max(visible_lo) + read_latency;
            let sync_hi = (host_ready + host_extra).max(visible_hi + period - 1) + read_latency;
            let sync = CycleBounds {
                best: sync_lo,
                worst: sync_hi,
            };
            let total = CycleBounds {
                best: sync_lo + costs.barrier_exit_cycles + reduce_tail,
                worst: sync_hi + costs.barrier_exit_cycles + reduce_tail,
            };
            (sync, total)
        }
    };

    // Normalize the milestone chain to be monotone on both sides.
    let dma_in = dma_in.join_max(dispatch);
    let compute = compute.join_max(dma_in);
    let dout = dout.join_max(compute);
    let sync = sync.join_max(dout);
    let total = total.join_max(sync);
    Ok(OffloadBounds {
        dispatch,
        dma_in,
        compute,
        dout,
        sync,
        total,
    })
}

/// Bounds for running `elems` elements of `kernel` entirely on the host
/// core (the scheduler's fallback path): the single-slice program under
/// the host's `cva6` timing.
///
/// # Errors
///
/// See [`bound_program`].
pub fn bound_host_run(kernel: &dyn Kernel, elems: u64) -> Result<ProgramCost, CostError> {
    let slices = reference_slices(kernel, elems, 1);
    let program = kernel
        .codegen(&slices[0])
        .map_err(|e| CostError::build(&e))?;
    bound_program(&program, &CoreTiming::cva6())
}

// ---------------------------------------------------------------------------
// Lint pass
// ---------------------------------------------------------------------------

/// Lint pass: is the program's control flow statically boundable?
///
/// Emits [`DiagCode::UnboundableLoop`] / [`DiagCode::UnstructuredFlow`]
/// warnings (the program may still be *correct* — it just cannot pass a
/// cost gate).
#[derive(Debug, Default)]
pub struct CostLint;

impl Lint for CostLint {
    fn name(&self) -> &'static str {
        "cost"
    }

    fn run(&self, program: &Program, _cx: &LintContext, out: &mut Vec<Diagnostic>) {
        if let Err(diags) = loop_structure(program.ops()) {
            out.extend(diags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{Interpreter, ProgramBuilder, VecPort};
    use mpsoc_kernels::{Axpby, Daxpy, DaxpySsr, Dot, Gemv, Memset, Scale, Stencil3, Sum, VecAdd};
    use mpsoc_offload::Offloader;
    use proptest::prelude::*;

    fn x(i: u8) -> IntReg {
        IntReg::new(i)
    }
    fn f(i: u8) -> FpReg {
        FpReg::new(i)
    }

    fn zoo() -> Vec<Box<dyn Kernel>> {
        vec![
            Box::new(Daxpy::new(2.0)),
            Box::new(DaxpySsr::new(2.0)),
            Box::new(Axpby::new(1.5, -0.5)),
            Box::new(Scale::new(3.0)),
            Box::new(VecAdd::new()),
            Box::new(Memset::new(7.0)),
            Box::new(Dot::new()),
            Box::new(Sum::new()),
            Box::new(Gemv::new(vec![0.5, -1.0, 2.0, 0.25])),
            Box::new(Stencil3::new(0.25, 0.5, 0.25)),
        ]
    }

    fn measure(program: &Program, timing: &CoreTiming) -> u64 {
        let mut port = VecPort::new(vec![0.0; 1 << 16]);
        Interpreter::with_timing(*timing)
            .run(program, &mut port)
            .expect("program executes")
            .finish
            .as_u64()
    }

    #[test]
    fn empty_and_halt_only_have_zero_bounds() {
        let empty = Program::from_ops_unchecked(vec![]);
        let cost = bound_program(&empty, &CoreTiming::snitch()).expect("boundable");
        assert_eq!(cost.cycles, CycleBounds::ZERO);
        assert_eq!(cost.retired, 0);
        let halt = Program::from_ops_unchecked(vec![MicroOp::Halt]);
        let cost = bound_program(&halt, &CoreTiming::snitch()).expect("boundable");
        assert_eq!(cost.cycles, CycleBounds::ZERO);
        assert_eq!(cost.retired, 1);
    }

    #[test]
    fn straight_line_bounds_are_exact() {
        let mut b = ProgramBuilder::new();
        b.li(x(1), 64);
        b.fld(f(4), x(1), 0);
        b.fld(f(5), x(1), 8);
        b.fmadd(f(6), f(4), f(5), f(6));
        b.fsd(f(6), x(1), 16);
        b.halt();
        let program = b.build().expect("valid");
        for timing in [CoreTiming::snitch(), CoreTiming::cva6()] {
            let cost = bound_program(&program, &timing).expect("boundable");
            let actual = measure(&program, &timing);
            assert_eq!(cost.cycles.best, cost.cycles.worst, "exact on ideal TCDM");
            assert_eq!(cost.cycles.best, actual, "matches the interpreter");
        }
    }

    #[test]
    fn counted_loop_bounds_are_exact_and_sound() {
        // A software countdown loop long enough to extrapolate.
        for trips in [1u64, 3, 17, 64, 65, 200, 5_000] {
            let mut b = ProgramBuilder::new();
            b.li(x(1), 0);
            b.li(x(2), i64::try_from(trips).expect("fits"));
            let top = b.label();
            b.bind(top);
            b.fld(f(4), x(1), 0);
            b.fmadd(f(6), f(4), f(4), f(6));
            b.addi(x(1), x(1), 8);
            b.addi(x(2), x(2), -1);
            b.bnez(x(2), top);
            b.halt();
            let program = b.build().expect("valid");
            let timing = CoreTiming::snitch();
            let cost = bound_program(&program, &timing).expect("boundable");
            let actual = measure(&program, &timing);
            assert!(
                cost.cycles.contains(actual),
                "trips={trips}: {actual} outside [{}, {}]",
                cost.cycles.best,
                cost.cycles.worst
            );
            if trips <= EXACT_CAP {
                assert_eq!(cost.cycles.best, cost.cycles.worst, "exact below the cap");
            }
        }
    }

    #[test]
    fn frep_loop_bounds_are_sound() {
        for iterations in [1u64, 4, 64, 300, 10_000] {
            let mut b = ProgramBuilder::new();
            b.li(x(1), 0);
            b.ssr_cfg(0, x(1), 8, iterations, false);
            b.ssr_cfg(1, x(1), 8, iterations, false);
            b.ssr_enable();
            b.frep(iterations, 1);
            b.fmadd(f(3), f(0), f(1), f(3));
            b.ssr_disable();
            b.halt();
            let program = b.build().expect("valid");
            let timing = CoreTiming::snitch();
            let cost = bound_program(&program, &timing).expect("boundable");
            let actual = measure(&program, &timing);
            assert!(
                cost.cycles.contains(actual),
                "iterations={iterations}: {actual} outside [{}, {}]",
                cost.cycles.best,
                cost.cycles.worst
            );
        }
    }

    #[test]
    fn zoo_program_bounds_contain_interpreter_cycles() {
        for kernel in zoo() {
            for elems in [0u64, 1, 7, 33, 64, 257, 1024] {
                for cores in [1usize, 8] {
                    for slice in reference_slices(kernel.as_ref(), elems, cores) {
                        let program = kernel.codegen(&slice).expect("zoo codegen");
                        for timing in [CoreTiming::snitch(), CoreTiming::cva6()] {
                            let cost = bound_program(&program, &timing)
                                .expect("zoo programs are boundable");
                            assert!(cost.cycles.is_well_formed());
                            let actual = measure(&program, &timing);
                            assert!(
                                cost.cycles.contains(actual),
                                "{} elems={elems} cores={cores}: {actual} outside [{}, {}]",
                                kernel.name(),
                                cost.cycles.best,
                                cost.cycles.worst
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unstructured_flow_is_diagnosed() {
        // Forward branch.
        let fwd = Program::from_ops_unchecked(vec![
            MicroOp::Li { rd: x(1), imm: 1 },
            MicroOp::Bnez {
                rs: x(1),
                target: 3,
            },
            MicroOp::Li { rd: x(2), imm: 2 },
            MicroOp::Halt,
        ]);
        let err = bound_program(&fwd, &CoreTiming::snitch()).expect_err("forward branch");
        assert_eq!(err.report.diagnostics[0].code, DiagCode::UnstructuredFlow);
        // Non-countdown loop.
        let inf = Program::from_ops_unchecked(vec![
            MicroOp::Li { rd: x(1), imm: 5 },
            MicroOp::Addi {
                rd: x(1),
                rs: x(1),
                imm: 1,
            },
            MicroOp::Bnez {
                rs: x(1),
                target: 1,
            },
            MicroOp::Halt,
        ]);
        let err = bound_program(&inf, &CoreTiming::snitch()).expect_err("counting up");
        assert_eq!(err.report.diagnostics[0].code, DiagCode::UnboundableLoop);
        // Self-loop with no countdown at all.
        let spin = Program::from_ops_unchecked(vec![
            MicroOp::Li { rd: x(1), imm: 1 },
            MicroOp::Bnez {
                rs: x(1),
                target: 1,
            },
            MicroOp::Halt,
        ]);
        let err = bound_program(&spin, &CoreTiming::snitch()).expect_err("spin");
        assert_eq!(err.report.diagnostics[0].code, DiagCode::UnboundableLoop);
    }

    #[test]
    fn offload_bounds_contain_simulated_runs() {
        let config = SocConfig::manticore();
        let costs = RuntimeCosts::default();
        let envelope = ContentionEnvelope::default();
        let cases: Vec<(Box<dyn Kernel>, u64)> = vec![
            (Box::new(Daxpy::new(2.0)), 96),
            (Box::new(Daxpy::new(2.0)), 4_096),
            (Box::new(Memset::new(1.0)), 64),
            (Box::new(Dot::new()), 512),
            (Box::new(Sum::new()), 33),
        ];
        for (kernel, n) in &cases {
            let x_len = (n * kernel.x_words_per_elem() + 2 * kernel.x_halo()) as usize;
            let xs = vec![1.0; x_len];
            let ys = vec![0.5; *n as usize];
            for m in [1usize, 2, 5] {
                for strategy in OffloadStrategy::all() {
                    let bounds =
                        bound_offload(kernel.as_ref(), *n, m, strategy, &config, &costs, &envelope)
                            .expect("zoo offloads are boundable");
                    assert!(bounds.is_well_formed(), "{} n={n} m={m}", kernel.name());
                    let mut off = Offloader::new(config.clone()).expect("offloader");
                    let run = off
                        .offload(kernel.as_ref(), &xs, &ys, m, strategy)
                        .expect("offload runs");
                    let total = run.outcome.total.as_u64();
                    assert!(
                        bounds.total.contains(total),
                        "{} n={n} m={m} {strategy:?}: total {total} outside [{}, {}]",
                        kernel.name(),
                        bounds.total.best,
                        bounds.total.worst
                    );
                    let ph = &run.outcome.phases;
                    for (name, milestone, b) in [
                        ("dispatch", ph.last_dispatch.as_u64(), bounds.dispatch),
                        ("dma_in", ph.last_dma_in.as_u64(), bounds.dma_in),
                        ("compute", ph.last_compute.as_u64(), bounds.compute),
                        ("dma_out", ph.last_dma_out.as_u64(), bounds.dout),
                        ("sync", ph.sync_done.as_u64(), bounds.sync),
                    ] {
                        assert!(
                            b.contains(milestone),
                            "{} n={n} m={m} {strategy:?}: {name} {milestone} outside [{}, {}]",
                            kernel.name(),
                            b.best,
                            b.worst
                        );
                    }
                    let bd = &run.outcome.phase_breakdown;
                    bounds
                        .check_phases([bd.dispatch, bd.dma_in, bd.compute, bd.dma_out, bd.sync])
                        .expect("phase sanitizer accepts the recorded breakdown");
                }
            }
        }
    }

    #[test]
    fn host_run_bounds_are_sound() {
        for kernel in zoo() {
            for elems in [1u64, 64, 500] {
                let cost = bound_host_run(kernel.as_ref(), elems).expect("boundable");
                let slices = reference_slices(kernel.as_ref(), elems, 1);
                let program = kernel.codegen(&slices[0]).expect("codegen");
                let actual = measure(&program, &CoreTiming::cva6());
                assert!(
                    cost.cycles.contains(actual),
                    "{} elems={elems}: {actual} outside [{}, {}]",
                    kernel.name(),
                    cost.cycles.best,
                    cost.cycles.worst
                );
            }
        }
    }

    proptest! {
        #[test]
        fn bounds_well_formed_and_monotone_in_n(
            kernel_ix in 0usize..10,
            n in 1u64..1500,
            delta in 1u64..700,
            cores_ix in 0usize..3,
        ) {
            let cores = [1usize, 4, 8][cores_ix];
            let kernel = &zoo()[kernel_ix];
            let timing = CoreTiming::snitch();
            let lo_slices = reference_slices(kernel.as_ref(), n, cores);
            let hi_slices = reference_slices(kernel.as_ref(), n + delta, cores);
            let a = bound_program(
                &kernel.codegen(&lo_slices[0]).expect("codegen"),
                &timing,
            ).expect("boundable");
            let b = bound_program(
                &kernel.codegen(&hi_slices[0]).expect("codegen"),
                &timing,
            ).expect("boundable");
            prop_assert!(a.cycles.is_well_formed());
            prop_assert!(b.cycles.is_well_formed());
            // Core 0 always gets at least as many elements at n+delta.
            prop_assert!(b.cycles.worst >= a.cycles.best,
                "worst({}) < best({}) when n grew", b.cycles.worst, a.cycles.best);
            prop_assert!(b.cycles.best >= a.cycles.best,
                "best bound shrank when n grew: {} -> {}", a.cycles.best, b.cycles.best);
        }

        #[test]
        fn offload_bounds_monotone_in_n(
            kernel_ix in 0usize..10,
            n in 1u64..2000,
            delta in 1u64..1000,
            m in 1usize..6,
            strategy_ix in 0usize..4,
        ) {
            let kernel = &zoo()[kernel_ix];
            let config = SocConfig::manticore();
            let costs = RuntimeCosts::default();
            let envelope = ContentionEnvelope::default();
            let strategy = OffloadStrategy::all()[strategy_ix];
            let a = bound_offload(kernel.as_ref(), n, m, strategy, &config, &costs, &envelope)
                .expect("boundable");
            let b = bound_offload(kernel.as_ref(), n + delta, m, strategy, &config, &costs, &envelope)
                .expect("boundable");
            prop_assert!(a.is_well_formed());
            prop_assert!(b.is_well_formed());
            prop_assert!(b.total.best >= a.total.best,
                "total best shrank when n grew: {} -> {}", a.total.best, b.total.best);
            prop_assert!(b.total.worst >= a.total.worst,
                "total worst shrank when n grew: {} -> {}", a.total.worst, b.total.worst);
        }
    }
}
