//! TCDM address checks (L010–L012), powered by the interval analysis.
//!
//! Every check fires only when the interval analysis bounds the address:
//! precise preamble loads, scalar-argument reads and SSR base snapshots
//! are checked; loop-carried pointers widen to Top and are skipped.

use mpsoc_isa::{MicroOp, Program};

use crate::cfg::Cfg;
use crate::diag::{DiagCode, Diagnostic};
use crate::interval::{self, Value};
use crate::{Lint, LintContext};

/// Memory/SSR address lint.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemLint;

impl Lint for MemLint {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn run(&self, program: &Program, cx: &LintContext, out: &mut Vec<Diagnostic>) {
        let ops = program.ops();
        if ops.is_empty() {
            return;
        }
        let cfg = Cfg::build(program);
        let states = interval::analyze(program, &cfg);
        let tcdm_bytes = i128::from(cx.tcdm_words) * 8;

        let check_access = |i: usize, addr: Value, bytes: i64, out: &mut Vec<Diagnostic>| {
            let Some((lo, hi)) = addr.bounds() else {
                return;
            };
            if lo < 0 || i128::from(hi) + i128::from(bytes) > tcdm_bytes {
                out.push(Diagnostic::at(
                    DiagCode::TcdmOutOfBounds,
                    i,
                    format!(
                        "{bytes}-byte access at address {} is outside the {}-byte TCDM",
                        if lo == hi {
                            lo.to_string()
                        } else {
                            format!("{lo}..={hi}")
                        },
                        tcdm_bytes
                    ),
                ));
            }
            if let Some(a) = addr.as_exact() {
                if a.rem_euclid(8) != 0 {
                    out.push(Diagnostic::at(
                        DiagCode::Misaligned,
                        i,
                        format!("address {a} is not 8-byte aligned"),
                    ));
                }
            }
        };

        for (i, &op) in ops.iter().enumerate() {
            if !cfg.reachable[i] {
                continue;
            }
            let regs = &states[i];
            match op {
                MicroOp::Fld { rs, offset, .. } | MicroOp::Fsd { rs, offset, .. } => {
                    check_access(i, regs[rs.index()].offset(offset), 8, out);
                }
                MicroOp::FsdPair { rs, offset, .. } => {
                    check_access(i, regs[rs.index()].offset(offset), 16, out);
                }
                MicroOp::SsrCfg {
                    stream,
                    base,
                    stride,
                    count,
                    ..
                } => {
                    if (stream as usize) >= 3 || count == 0 {
                        continue; // L016 / L013: the SSR pass owns these.
                    }
                    let Some(b) = regs[base.index()].as_exact() else {
                        continue;
                    };
                    // Footprint of the whole stream: every address the
                    // unit will touch, first to last element.
                    let last = i128::from(b) + i128::from(stride) * i128::from(count - 1);
                    let (lo, hi) = (i128::from(b).min(last), i128::from(b).max(last));
                    if lo < 0 || hi + 8 > tcdm_bytes {
                        out.push(Diagnostic::at(
                            DiagCode::TcdmOutOfBounds,
                            i,
                            format!(
                                "stream {stream} footprint {lo}..={} leaves the {}-byte TCDM \
                                 (base {b}, stride {stride}, count {count})",
                                hi + 8,
                                tcdm_bytes
                            ),
                        ));
                    }
                    if b.rem_euclid(8) != 0 || stride.rem_euclid(8) != 0 {
                        out.push(Diagnostic::at(
                            DiagCode::Misaligned,
                            i,
                            format!(
                                "stream {stream} base {b} / stride {stride} must be 8-byte \
                                 aligned"
                            ),
                        ));
                    } else if count > 1 && (stride / 8).rem_euclid(i64::from(cx.tcdm_banks)) == 0 {
                        out.push(Diagnostic::at(
                            DiagCode::BankConflictStride,
                            i,
                            format!(
                                "stride {stride} lands every element of stream {stream} in \
                                 the same one of {} TCDM banks",
                                cx.tcdm_banks
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpsoc_isa::{FpReg, IntReg, ProgramBuilder};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        MemLint.run(p, &LintContext::manticore(), &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    const TCDM_BYTES: i64 = 32768 * 8;

    #[test]
    fn in_bounds_aligned_accesses_are_clean() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 1024);
        b.fld(FpReg::new(3), x1, 0);
        b.fsd(FpReg::new(3), x1, 8);
        b.fsd_pair(FpReg::new(3), FpReg::new(3), x1, 16);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn load_past_tcdm_end_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, TCDM_BYTES - 8);
        b.fld(FpReg::new(3), x1, 0); // last word: fine
        b.fld(FpReg::new(4), x1, 8); // one past: L010
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![DiagCode::TcdmOutOfBounds]);
        assert_eq!(diags[0].op, Some(2));
    }

    #[test]
    fn negative_address_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.fld(FpReg::new(3), x1, -8);
        b.halt();
        assert_eq!(
            codes(&lint(&b.build().unwrap())),
            vec![DiagCode::TcdmOutOfBounds]
        );
    }

    #[test]
    fn misaligned_address_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 12);
        b.fld(FpReg::new(3), x1, 0);
        b.halt();
        assert_eq!(
            codes(&lint(&b.build().unwrap())),
            vec![DiagCode::Misaligned]
        );
    }

    #[test]
    fn fsd_pair_needs_sixteen_bytes() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, TCDM_BYTES - 8);
        b.fsd_pair(FpReg::new(3), FpReg::new(4), x1, 0);
        b.halt();
        assert_eq!(
            codes(&lint(&b.build().unwrap())),
            vec![DiagCode::TcdmOutOfBounds]
        );
    }

    #[test]
    fn ssr_footprint_out_of_bounds_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, TCDM_BYTES - 4 * 8);
        b.ssr_cfg(0, x1, 8, 8, false); // 8 elements, only 4 fit
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![DiagCode::TcdmOutOfBounds]);
        assert!(diags[0].message.contains("stream 0"));
    }

    #[test]
    fn misaligned_stride_is_flagged() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 12, 4, false);
        b.halt();
        assert_eq!(
            codes(&lint(&b.build().unwrap())),
            vec![DiagCode::Misaligned]
        );
    }

    #[test]
    fn bank_conflict_stride_is_a_warning() {
        // 32 banks × 8 bytes: a 256-byte stride hits one bank forever.
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 256, 8, false);
        b.halt();
        let diags = lint(&b.build().unwrap());
        assert_eq!(codes(&diags), vec![DiagCode::BankConflictStride]);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn unit_stride_is_not_a_bank_conflict() {
        let mut b = ProgramBuilder::new();
        let x1 = IntReg::new(1);
        b.li(x1, 0);
        b.ssr_cfg(0, x1, 8, 64, false);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }

    #[test]
    fn widened_loop_pointers_are_not_checked() {
        let mut b = ProgramBuilder::new();
        let (x1, x3) = (IntReg::new(1), IntReg::new(3));
        b.li(x1, 0);
        b.li(x3, 1_000_000); // walks far past the TCDM if taken literally
        let top = b.label();
        b.bind(top);
        b.fld(FpReg::new(3), x1, 0);
        b.addi(x1, x1, 8);
        b.addi(x3, x3, -1);
        b.bnez(x3, top);
        b.halt();
        assert!(lint(&b.build().unwrap()).is_empty());
    }
}
