//! The shared main-memory system (HBM-class).

use mpsoc_faults::FaultSite;
use mpsoc_sim::stats::StatsRegistry;
use mpsoc_sim::{Cycle, ThroughputResource, UnitResource};

use crate::{Addr, MemoryError, WordStore};

/// The SoC's shared main memory: data plus a timing model.
///
/// Timing model:
///
/// - **Bandwidth**: all bulk traffic (DMA bursts, host block writes) shares
///   one aggregate [`ThroughputResource`] in words per cycle. With the
///   calibrated 12 words/cycle, a DAXPY of `N` elements moves `3·N` words
///   (x in, y in, y out) in `N/4` cycles — the paper's Eq. 1 data term.
/// - **Latency**: every access additionally pays a fixed pipeline latency.
/// - **Atomics**: read-modify-write operations serialize on a dedicated
///   [`UnitResource`], which is how software-barrier contention grows with
///   the number of clusters in the baseline configuration.
///
/// # Example
///
/// ```
/// use mpsoc_mem::{Addr, MainMemory};
/// use mpsoc_sim::Cycle;
///
/// # fn main() -> Result<(), mpsoc_mem::MemoryError> {
/// let mut mem = MainMemory::new(Addr::new(0x8000_0000), 1024, 12, Cycle::new(20), Cycle::new(4));
/// mem.store_mut().write_f64(Addr::new(0x8000_0000), 3.0)?;
///
/// // A 3072-word burst at 12 words/cycle: 20 + 256 cycles.
/// let done = mem.transfer(Cycle::ZERO, 3072);
/// assert_eq!(done, Cycle::new(276));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    store: WordStore,
    bandwidth: ThroughputResource,
    latency: Cycle,
    atomic_unit: UnitResource,
    atomic_service: Cycle,
    amo_faults: FaultSite,
    stats: StatsRegistry,
}

impl MainMemory {
    /// Creates a main memory.
    ///
    /// * `base`, `words`: geometry of the backing store.
    /// * `words_per_cycle`: aggregate bandwidth shared by all clients.
    /// * `latency`: fixed access latency added to every timed transfer.
    /// * `atomic_service`: occupancy of the atomic unit per AMO.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle` is zero or `base` is unaligned.
    pub fn new(
        base: Addr,
        words: u64,
        words_per_cycle: u64,
        latency: Cycle,
        atomic_service: Cycle,
    ) -> Self {
        MainMemory {
            store: WordStore::new(base, words),
            bandwidth: ThroughputResource::new(words_per_cycle),
            latency,
            atomic_unit: UnitResource::new(),
            atomic_service,
            amo_faults: FaultSite::off(),
            stats: StatsRegistry::new(),
        }
    }

    /// Installs the AMO-drop fault site (fault injection): occurrences
    /// it selects are acknowledged and timed normally but the memory
    /// update is silently lost. The default disarmed site is a single
    /// untaken branch.
    pub fn set_amo_faults(&mut self, site: FaultSite) {
        self.amo_faults = site;
    }

    /// AMO updates dropped by fault injection so far.
    pub fn amo_drops(&self) -> u64 {
        self.amo_faults.fired()
    }

    /// Collected statistics: HBM queueing and atomic-unit contention
    /// under the stable `contention.*` prefix.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    // A bandwidth request whose start slot is already reserved queues
    // behind earlier traffic; `min_slot` is where the client could have
    // started on an idle memory.
    fn note_queueing(&mut self, min_slot: u64) {
        let free = self.bandwidth.next_free_slot();
        if free > min_slot {
            self.stats.incr("contention.hbm.queue_events");
            self.stats.observe(
                "contention.hbm.queue_cycles",
                (free - min_slot) as f64 / self.bandwidth.rate() as f64,
            );
        }
    }

    /// The data backing store.
    pub fn store(&self) -> &WordStore {
        &self.store
    }

    /// Mutable access to the data backing store (test benches and
    /// zero-time initialization).
    pub fn store_mut(&mut self) -> &mut WordStore {
        &mut self.store
    }

    /// Fixed access latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Aggregate bandwidth in words per cycle.
    pub fn words_per_cycle(&self) -> u64 {
        self.bandwidth.rate()
    }

    /// Reserves bandwidth for a `words`-long burst issued at `at`; returns
    /// the completion time (`latency` + queued transfer time).
    ///
    /// The data itself is moved separately via [`MainMemory::store_mut`] /
    /// [`WordStore::copy_words_from`]; decoupling data from timing keeps
    /// the bandwidth accounting independent of the copy direction.
    pub fn transfer(&mut self, at: Cycle, words: u64) -> Cycle {
        if words > 0 {
            self.note_queueing(self.bandwidth.slot_of(at));
        }
        self.bandwidth.acquire(at, words) + self.latency
    }

    /// Total words of bandwidth consumed so far.
    pub fn words_transferred(&self) -> u64 {
        self.bandwidth.items_served()
    }

    /// Bandwidth slot index at the start of cycle `at` (see
    /// [`ThroughputResource::slot_of`]).
    pub fn bandwidth_slot_of(&self, at: Cycle) -> u64 {
        self.bandwidth.slot_of(at)
    }

    /// The next free bandwidth slot: where a transfer requested now would
    /// actually start once queued traffic drains.
    ///
    /// Comparing this against [`MainMemory::bandwidth_slot_of`] *before*
    /// acquiring exposes the queueing delay a client is about to pay —
    /// the same quantity `contention.hbm.queue_cycles` aggregates — so a
    /// concurrent-job SoC can attribute it to the requesting job.
    pub fn next_free_bandwidth_slot(&self) -> u64 {
        self.bandwidth.next_free_slot()
    }

    /// Exact-continuation bandwidth reservation for burst-chained DMA
    /// engines (see [`ThroughputResource::acquire_from_slot`]); returns
    /// `(end_slot, completion_cycle)`. The fixed access latency is *not*
    /// included — DMA engines pay it once per transfer, not per burst.
    pub fn acquire_bandwidth_slots(&mut self, min_slot: u64, words: u64) -> (u64, Cycle) {
        if words > 0 {
            self.note_queueing(min_slot);
        }
        self.bandwidth.acquire_from_slot(min_slot, words)
    }

    /// Performs a timed atomic fetch-add on `addr`, returning the new value
    /// and the completion time. AMOs serialize on the atomic unit, so
    /// concurrent requests queue — exactly the contention the baseline
    /// software barrier suffers.
    ///
    /// # Errors
    ///
    /// Returns an error if `addr` is invalid for the backing store.
    pub fn amo_add(
        &mut self,
        at: Cycle,
        addr: Addr,
        delta: u64,
    ) -> Result<(u64, Cycle), MemoryError> {
        let start = self.atomic_unit.acquire(at, self.atomic_service);
        if start > at {
            self.stats.incr("contention.hbm.amo_conflicts");
            self.stats
                .observe("contention.hbm.amo_wait_cycles", (start - at).as_f64());
        }
        // A dropped AMO is acknowledged with the *stale* value and full
        // timing: the requester cannot tell locally that the update was
        // lost, exactly like a silent datapath fault.
        let value = if self.amo_faults.is_armed() && self.amo_faults.fire() {
            self.stats.incr("faults.amo_drops");
            self.store.read_u64(addr)?
        } else {
            self.store.fetch_add_u64(addr, delta)?
        };
        Ok((value, start + self.atomic_service + self.latency))
    }

    /// Performs a timed uncached single-word read (e.g. the host polling
    /// the software-barrier counter); returns the value and completion time.
    ///
    /// # Errors
    ///
    /// Returns an error if `addr` is invalid for the backing store.
    pub fn read_uncached(&mut self, at: Cycle, addr: Addr) -> Result<(u64, Cycle), MemoryError> {
        self.note_queueing(self.bandwidth.slot_of(at));
        let done = self.bandwidth.acquire(at, 1) + self.latency;
        let value = self.store.read_u64(addr)?;
        Ok((value, done))
    }

    /// Resets the timing state (bandwidth queue and atomic unit) while
    /// keeping the data. Used between repeated experiments on one SoC.
    pub fn reset_timing(&mut self) {
        self.bandwidth.reset();
        self.atomic_unit.reset();
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MainMemory {
        MainMemory::new(
            Addr::new(0x8000_0000),
            4096,
            12,
            Cycle::new(20),
            Cycle::new(4),
        )
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let mut m = mem();
        assert_eq!(m.transfer(Cycle::ZERO, 12), Cycle::new(21));
        // Second burst queues behind the first.
        assert_eq!(m.transfer(Cycle::ZERO, 12), Cycle::new(22));
        assert_eq!(m.words_transferred(), 24);
    }

    #[test]
    fn daxpy_bandwidth_term_matches_eq1() {
        // 3·N words at 12 words/cycle must take N/4 cycles (plus latency).
        let mut m = mem();
        let n = 1024;
        let done = m.transfer(Cycle::ZERO, 3 * n);
        assert_eq!(done, Cycle::new(n / 4 + 20));
    }

    #[test]
    fn amo_serializes_under_contention() {
        let mut m = mem();
        let addr = Addr::new(0x8000_0000);
        let (v1, t1) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        let (v2, t2) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        let (v3, t3) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        assert_eq!((v1, v2, v3), (1, 2, 3));
        // Each atomic occupies the unit for 4 cycles; latency is 20.
        assert_eq!(t1, Cycle::new(24));
        assert_eq!(t2, Cycle::new(28));
        assert_eq!(t3, Cycle::new(32));
    }

    #[test]
    fn uncached_read_returns_current_value() {
        let mut m = mem();
        let addr = Addr::new(0x8000_0008);
        m.store_mut().write_u64(addr, 77).unwrap();
        let (v, t) = m.read_uncached(Cycle::new(100), addr).unwrap();
        assert_eq!(v, 77);
        assert!(t > Cycle::new(100));
    }

    #[test]
    fn contention_counters_track_queueing_and_amo_conflicts() {
        let mut m = mem();
        // Idle memory: no queueing.
        m.transfer(Cycle::ZERO, 12);
        assert_eq!(m.stats().counter("contention.hbm.queue_events"), 0);
        // Same-cycle burst queues behind the first for 12/12 = 1 cycle.
        m.transfer(Cycle::ZERO, 12);
        assert_eq!(m.stats().counter("contention.hbm.queue_events"), 1);
        assert_eq!(
            m.stats().summary("contention.hbm.queue_cycles").max(),
            Some(1.0)
        );

        // Chained slot acquisition behind foreign traffic also counts.
        let (_, _) = m.acquire_bandwidth_slots(0, 12);
        assert_eq!(m.stats().counter("contention.hbm.queue_events"), 2);

        // Concurrent AMOs serialize on the atomic unit.
        let addr = Addr::new(0x8000_0000);
        m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        assert_eq!(m.stats().counter("contention.hbm.amo_conflicts"), 1);
        assert_eq!(
            m.stats().summary("contention.hbm.amo_wait_cycles").count(),
            1
        );

        m.reset_timing();
        assert_eq!(m.stats().counter("contention.hbm.queue_events"), 0);
    }

    #[test]
    fn dropped_amo_keeps_timing_but_loses_the_update() {
        use mpsoc_faults::{FaultKind, FaultPlan, SiteSpec};
        let mut m = mem();
        let mut plan = FaultPlan::with_seed(1);
        plan.amo_drop = SiteSpec::once_at(1); // second AMO faults
        m.set_amo_faults(plan.site(FaultKind::AmoDrop));
        let addr = Addr::new(0x8000_0000);
        let (v1, t1) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        let (v2, t2) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        let (v3, t3) = m.amo_add(Cycle::ZERO, addr, 1).unwrap();
        // The dropped AMO acknowledges the stale value; the next one
        // lands on the un-incremented counter.
        assert_eq!((v1, v2, v3), (1, 1, 2));
        // Timing is identical to the fault-free test above.
        assert_eq!(
            (t1, t2, t3),
            (Cycle::new(24), Cycle::new(28), Cycle::new(32))
        );
        assert_eq!(m.amo_drops(), 1);
        assert_eq!(m.stats().counter("faults.amo_drops"), 1);
        assert_eq!(m.store().read_u64(addr).unwrap(), 2);
    }

    #[test]
    fn amo_on_bad_address_errors() {
        let mut m = mem();
        assert!(m.amo_add(Cycle::ZERO, Addr::new(0x0), 1).is_err());
    }

    #[test]
    fn reset_timing_keeps_data() {
        let mut m = mem();
        let addr = Addr::new(0x8000_0000);
        m.store_mut().write_f64(addr, 9.5).unwrap();
        m.transfer(Cycle::ZERO, 1000);
        m.reset_timing();
        assert_eq!(m.transfer(Cycle::ZERO, 12), Cycle::new(21));
        assert_eq!(m.store().read_f64(addr).unwrap(), 9.5);
    }
}
