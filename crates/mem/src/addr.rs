//! Typed physical addresses.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Size of the native data word in bytes. Everything the accelerator
/// touches is double-precision, so the word is 8 bytes.
pub const WORD_BYTES: u64 = 8;

/// A physical byte address in the SoC address space.
///
/// `Addr` is a transparent newtype over `u64` ([C-NEWTYPE]): it prevents
/// byte addresses, word indices and plain integers from being mixed up in
/// the memory models.
///
/// # Example
///
/// ```
/// use mpsoc_mem::Addr;
///
/// let base = Addr::new(0x8000_0000);
/// let third_word = base.add_words(3);
/// assert_eq!(third_word.as_u64(), 0x8000_0018);
/// assert_eq!(third_word.word_offset_from(base), Some(3));
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Addr(bytes)
    }

    /// The raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` when the address is aligned to the native word size.
    ///
    /// ```
    /// # use mpsoc_mem::Addr;
    /// assert!(Addr::new(16).is_word_aligned());
    /// assert!(!Addr::new(12).is_word_aligned());
    /// ```
    #[inline]
    pub const fn is_word_aligned(self) -> bool {
        self.0 % WORD_BYTES == 0
    }

    /// The address `words` native words beyond `self`.
    #[inline]
    pub const fn add_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }

    /// The address `bytes` bytes beyond `self`.
    #[inline]
    pub const fn add_bytes(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Distance from `base` in whole words, `None` if `self < base` or the
    /// offset is not word-aligned.
    pub fn word_offset_from(self, base: Addr) -> Option<u64> {
        let delta = self.0.checked_sub(base.0)?;
        (delta % WORD_BYTES == 0).then_some(delta / WORD_BYTES)
    }

    /// Byte distance from `base`, `None` if `self < base`.
    pub fn byte_offset_from(self, base: Addr) -> Option<u64> {
        self.0.checked_sub(base.0)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    /// Byte offset addition.
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    /// Byte distance between two addresses.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_arithmetic() {
        let a = Addr::new(0x1000);
        assert_eq!(a.add_words(2), Addr::new(0x1010));
        assert_eq!(a.add_bytes(4), Addr::new(0x1004));
        assert_eq!(a.add_words(2).word_offset_from(a), Some(2));
        assert_eq!(a.add_bytes(4).word_offset_from(a), None);
        assert_eq!(a.word_offset_from(a.add_words(1)), None);
    }

    #[test]
    fn alignment() {
        assert!(Addr::new(0).is_word_aligned());
        assert!(Addr::new(8).is_word_aligned());
        assert!(!Addr::new(7).is_word_aligned());
    }

    #[test]
    fn conversions_and_display() {
        let a = Addr::from(0xdead_beef_u64);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(a.to_string(), "0xdeadbeef");
        assert_eq!(format!("{a:x}"), "deadbeef");
        assert_eq!(format!("{a:X}"), "DEADBEEF");
    }

    #[test]
    fn operators() {
        let a = Addr::new(100);
        assert_eq!(a + 24, Addr::new(124));
        assert_eq!(Addr::new(124) - a, 24);
        assert_eq!(a.byte_offset_from(Addr::new(90)), Some(10));
        assert_eq!(Addr::new(90).byte_offset_from(a), None);
    }
}
