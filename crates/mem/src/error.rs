//! Memory access errors.

use std::error::Error;
use std::fmt;

use crate::Addr;

/// An error produced by the memory models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// The address falls outside the target region.
    OutOfBounds {
        /// The offending address.
        addr: Addr,
        /// Base of the region that was addressed.
        base: Addr,
        /// Size of the region in words.
        words: u64,
    },
    /// The address is not aligned to the native word size.
    Misaligned {
        /// The offending address.
        addr: Addr,
    },
    /// The address does not decode to any mapped device.
    Unmapped {
        /// The offending address.
        addr: Addr,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfBounds { addr, base, words } => write!(
                f,
                "address {addr} outside region [{base}, {})",
                base.add_words(*words)
            ),
            MemoryError::Misaligned { addr } => {
                write!(f, "address {addr} is not 8-byte aligned")
            }
            MemoryError::Unmapped { addr } => {
                write!(f, "address {addr} does not decode to any device")
            }
        }
    }
}

impl Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MemoryError::OutOfBounds {
            addr: Addr::new(0x100),
            base: Addr::new(0x0),
            words: 4,
        };
        assert!(e.to_string().contains("outside region"));
        assert!(MemoryError::Misaligned { addr: Addr::new(3) }
            .to_string()
            .contains("aligned"));
        assert!(MemoryError::Unmapped { addr: Addr::new(3) }
            .to_string()
            .contains("decode"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<MemoryError>();
    }
}
