//! Tightly-coupled data memory (TCDM) of an accelerator cluster.

use mpsoc_sim::{BankedResource, Cycle};
use serde::{Deserialize, Serialize};

use crate::{Addr, MemoryError, WordStore};

/// How TCDM bank conflicts are modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BankMode {
    /// Conflict-free: every access is granted immediately.
    ///
    /// This models the optimized kernels of the paper, whose per-core data
    /// layout is arranged so that the 8 worker cores never collide on the
    /// 32 banks (4 banks per core, stride-1 streams). It is the default
    /// for calibrated experiments.
    #[default]
    Ideal,
    /// Word-interleaved banking with FCFS per-bank arbitration: concurrent
    /// same-bank accesses serialize and count as conflicts. Used by the
    /// banking ablation and stress tests.
    Banked,
}

/// A cluster's TCDM: word data plus per-bank access timing.
///
/// Addresses are *local* word indices (0-based); the SoC layer translates
/// global physical addresses through the
/// [`MemoryMap`](crate::MemoryMap) before calling in here.
///
/// # Example
///
/// ```
/// use mpsoc_mem::{BankMode, Tcdm};
/// use mpsoc_sim::Cycle;
///
/// let mut tcdm = Tcdm::new(1024, 32, BankMode::Banked);
/// tcdm.write_f64(5, 2.0).unwrap();
/// assert_eq!(tcdm.read_f64(5).unwrap(), 2.0);
///
/// // Two same-cycle accesses to word 0 and word 32 hit the same bank:
/// let a = tcdm.access(0, Cycle::ZERO);
/// let b = tcdm.access(32, Cycle::ZERO);
/// assert_eq!(a, Cycle::ZERO);
/// assert_eq!(b, Cycle::new(1));
/// assert_eq!(tcdm.conflicts(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tcdm {
    data: WordStore,
    banks: BankedResource,
    mode: BankMode,
}

impl Tcdm {
    /// Creates a TCDM with `words` words striped over `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `banks` is zero.
    pub fn new(words: u64, banks: usize, mode: BankMode) -> Self {
        assert!(words > 0, "TCDM cannot be empty");
        Tcdm {
            data: WordStore::new(Addr::new(0), words),
            banks: BankedResource::new(banks, Cycle::new(1)),
            mode,
        }
    }

    /// Capacity in words.
    pub fn len_words(&self) -> u64 {
        self.data.len_words()
    }

    /// `true` when the TCDM holds no words (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.bank_count()
    }

    /// The banking mode in effect.
    pub fn mode(&self) -> BankMode {
        self.mode
    }

    /// The bank a local word index maps to (word-interleaved).
    pub fn bank_of(&self, word: u64) -> usize {
        (word % self.banks.bank_count() as u64) as usize
    }

    /// Requests a single-word access at time `at`; returns the grant time.
    /// In [`BankMode::Ideal`] the grant is always immediate.
    pub fn access(&mut self, word: u64, at: Cycle) -> Cycle {
        match self.mode {
            BankMode::Ideal => at,
            BankMode::Banked => {
                let bank = self.bank_of(word);
                self.banks.acquire(bank, at)
            }
        }
    }

    /// Conflicted accesses observed so far (always zero in ideal mode).
    pub fn conflicts(&self) -> u64 {
        self.banks.conflicts()
    }

    /// Reads a double at local word index `word`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the index is out of range.
    pub fn read_f64(&self, word: u64) -> Result<f64, MemoryError> {
        self.data.read_f64(Addr::new(0).add_words(word))
    }

    /// Writes a double at local word index `word`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the index is out of range.
    pub fn write_f64(&mut self, word: u64, value: f64) -> Result<(), MemoryError> {
        self.data.write_f64(Addr::new(0).add_words(word), value)
    }

    /// Reads a raw word at local word index `word`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the index is out of range.
    pub fn read_u64(&self, word: u64) -> Result<u64, MemoryError> {
        self.data.read_u64(Addr::new(0).add_words(word))
    }

    /// Writes a raw word at local word index `word`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the index is out of range.
    pub fn write_u64(&mut self, word: u64, value: u64) -> Result<(), MemoryError> {
        self.data.write_u64(Addr::new(0).add_words(word), value)
    }

    /// Bulk-copies `count` doubles from a main-memory store into local
    /// words starting at `dst_word` (the data half of a DMA-in).
    ///
    /// # Errors
    ///
    /// Propagates range errors from either side.
    pub fn dma_in(
        &mut self,
        main: &WordStore,
        src: Addr,
        dst_word: u64,
        count: u64,
    ) -> Result<(), MemoryError> {
        self.data
            .copy_words_from(main, src, Addr::new(0).add_words(dst_word), count)
    }

    /// Bulk-copies `count` doubles from local words starting at `src_word`
    /// into a main-memory store (the data half of a DMA-out).
    ///
    /// # Errors
    ///
    /// Propagates range errors from either side.
    pub fn dma_out(
        &self,
        main: &mut WordStore,
        src_word: u64,
        dst: Addr,
        count: u64,
    ) -> Result<(), MemoryError> {
        main.copy_words_from(&self.data, Addr::new(0).add_words(src_word), dst, count)
    }

    /// Resets timing state (bank reservations) while keeping data.
    pub fn reset_timing(&mut self) {
        self.banks.reset();
    }

    /// Zeroes all data and resets timing.
    pub fn clear(&mut self) {
        self.data.clear();
        self.banks.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_mode_never_stalls() {
        let mut t = Tcdm::new(64, 32, BankMode::Ideal);
        for w in 0..64 {
            assert_eq!(t.access(w, Cycle::new(5)), Cycle::new(5));
        }
        assert_eq!(t.conflicts(), 0);
    }

    #[test]
    fn banked_mode_serializes_same_bank() {
        let mut t = Tcdm::new(128, 32, BankMode::Banked);
        assert_eq!(t.access(3, Cycle::ZERO), Cycle::ZERO);
        assert_eq!(t.access(35, Cycle::ZERO), Cycle::new(1)); // 35 % 32 == 3
        assert_eq!(t.access(4, Cycle::ZERO), Cycle::ZERO); // different bank
        assert_eq!(t.conflicts(), 1);
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let t = Tcdm::new(128, 32, BankMode::Banked);
        assert_eq!(t.bank_of(0), 0);
        assert_eq!(t.bank_of(31), 31);
        assert_eq!(t.bank_of(32), 0);
        assert_eq!(t.bank_count(), 32);
    }

    #[test]
    fn data_round_trip_and_bounds() {
        let mut t = Tcdm::new(8, 4, BankMode::Ideal);
        t.write_f64(7, 1.5).unwrap();
        assert_eq!(t.read_f64(7).unwrap(), 1.5);
        t.write_u64(0, 42).unwrap();
        assert_eq!(t.read_u64(0).unwrap(), 42);
        assert!(t.read_f64(8).is_err());
        assert!(t.write_f64(8, 0.0).is_err());
        assert_eq!(t.len_words(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn dma_round_trip_through_main_store() {
        let mut main = WordStore::new(Addr::new(0x8000_0000), 16);
        main.write_f64_slice(Addr::new(0x8000_0000), &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        let mut t = Tcdm::new(8, 4, BankMode::Ideal);
        t.dma_in(&main, Addr::new(0x8000_0008), 0, 3).unwrap();
        assert_eq!(t.read_f64(0).unwrap(), 2.0);
        assert_eq!(t.read_f64(2).unwrap(), 4.0);
        t.write_f64(1, 99.0).unwrap();
        t.dma_out(&mut main, 0, Addr::new(0x8000_0040), 3).unwrap();
        assert_eq!(
            main.read_f64_slice(Addr::new(0x8000_0040), 3).unwrap(),
            vec![2.0, 99.0, 4.0]
        );
    }

    #[test]
    fn clear_and_reset() {
        let mut t = Tcdm::new(8, 4, BankMode::Banked);
        t.write_f64(0, 5.0).unwrap();
        t.access(0, Cycle::ZERO);
        t.access(4, Cycle::ZERO);
        assert_eq!(t.conflicts(), 1);
        t.reset_timing();
        assert_eq!(t.conflicts(), 0);
        assert_eq!(t.read_f64(0).unwrap(), 5.0);
        t.clear();
        assert_eq!(t.read_f64(0).unwrap(), 0.0);
    }

    #[test]
    fn default_bank_mode_is_ideal() {
        assert_eq!(BankMode::default(), BankMode::Ideal);
    }
}
