//! The SoC physical address map.
//!
//! Layout (Manticore-inspired, simplified to the devices this study needs):
//!
//! | Region                | Base                                    | Notes |
//! |-----------------------|-----------------------------------------|-------|
//! | Credit-counter unit   | `0x0200_0000`                           | the paper's dedicated synchronization unit |
//! | Cluster TCDMs         | `0x1000_0000 + cluster * 0x0008_0000`   | 256 KiB each (stride leaves room to grow) |
//! | Cluster mailboxes     | `0x1900_0000 + cluster * 0x0000_1000`   | job pointer + wakeup doorbell |
//! | Main memory (HBM)     | `0x8000_0000`                           | shared by host and all clusters |

use serde::{Deserialize, Serialize};

use crate::{Addr, MemoryError};

/// Base address of the credit-counter unit.
pub const CREDIT_BASE: u64 = 0x0200_0000;
/// Base address of cluster 0's TCDM.
pub const TCDM_BASE: u64 = 0x1000_0000;
/// Address stride between consecutive clusters' TCDMs.
pub const TCDM_STRIDE: u64 = 0x0008_0000;
/// Default TCDM capacity in 64-bit words (256 KiB).
pub const TCDM_WORDS_DEFAULT: u64 = 256 * 1024 / 8;
/// Base address of cluster 0's mailbox.
pub const MAILBOX_BASE: u64 = 0x1900_0000;
/// Address stride between consecutive clusters' mailboxes.
pub const MAILBOX_STRIDE: u64 = 0x1000;
/// Base address of main memory.
pub const MAIN_BASE: u64 = 0x8000_0000;

/// Memory-mapped registers of a cluster mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterReg {
    /// Pointer to the job descriptor in main memory (offset `0x0`).
    JobPtr,
    /// Doorbell: writing wakes the cluster controller (offset `0x8`).
    Wakeup,
}

impl ClusterReg {
    /// Byte offset of the register within the mailbox page.
    pub fn offset(self) -> u64 {
        match self {
            ClusterReg::JobPtr => 0x0,
            ClusterReg::Wakeup => 0x8,
        }
    }

    fn decode(offset: u64) -> Option<Self> {
        match offset {
            0x0 => Some(ClusterReg::JobPtr),
            0x8 => Some(ClusterReg::Wakeup),
            _ => None,
        }
    }
}

/// Memory-mapped registers of the credit-counter unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CreditReg {
    /// Threshold at which the completion interrupt fires (offset `0x0`).
    Threshold,
    /// Current credit count, read-only from software (offset `0x8`).
    Count,
    /// Write-to-increment register; the write value is ignored and the
    /// counter bumps by one as a side effect (offset `0x10`).
    Increment,
    /// Writing any value re-arms the unit: clears count and threshold
    /// (offset `0x18`).
    Reset,
}

impl CreditReg {
    /// Byte offset of the register within the unit's page.
    pub fn offset(self) -> u64 {
        match self {
            CreditReg::Threshold => 0x0,
            CreditReg::Count => 0x8,
            CreditReg::Increment => 0x10,
            CreditReg::Reset => 0x18,
        }
    }

    fn decode(offset: u64) -> Option<Self> {
        match offset {
            0x0 => Some(CreditReg::Threshold),
            0x8 => Some(CreditReg::Count),
            0x10 => Some(CreditReg::Increment),
            0x18 => Some(CreditReg::Reset),
            _ => None,
        }
    }
}

/// The device a physical address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Main memory, with the word offset from its base.
    Main {
        /// Word offset from the main-memory base.
        word: u64,
    },
    /// A cluster's TCDM.
    Tcdm {
        /// Cluster index.
        cluster: usize,
        /// Word offset within that TCDM.
        word: u64,
    },
    /// A cluster's mailbox register.
    Mailbox {
        /// Cluster index.
        cluster: usize,
        /// Which register.
        reg: ClusterReg,
    },
    /// A credit-counter unit register.
    Credit {
        /// Which register.
        reg: CreditReg,
    },
}

/// The address map: knows the SoC geometry and decodes addresses.
///
/// # Example
///
/// ```
/// use mpsoc_mem::{MemoryMap, Target, ClusterReg};
///
/// # fn main() -> Result<(), mpsoc_mem::MemoryError> {
/// let map = MemoryMap::new(32, 1 << 20);
/// let doorbell = map.mailbox_reg(3, ClusterReg::Wakeup);
/// assert_eq!(
///     map.decode(doorbell)?,
///     Target::Mailbox { cluster: 3, reg: ClusterReg::Wakeup }
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryMap {
    clusters: usize,
    main_words: u64,
    tcdm_words: u64,
}

impl MemoryMap {
    /// Creates a map for `clusters` clusters and `main_words` words of main
    /// memory, with the default TCDM size.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds the mailbox/TCDM stride
    /// capacity (max 128), or if `main_words` is zero.
    pub fn new(clusters: usize, main_words: u64) -> Self {
        Self::with_tcdm_words(clusters, main_words, TCDM_WORDS_DEFAULT)
    }

    /// Creates a map with an explicit per-cluster TCDM capacity.
    ///
    /// # Panics
    ///
    /// Panics on a zero/oversized geometry (see [`MemoryMap::new`]) or if
    /// the TCDM capacity exceeds the address stride.
    pub fn with_tcdm_words(clusters: usize, main_words: u64, tcdm_words: u64) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(clusters <= 128, "address map supports at most 128 clusters");
        assert!(main_words > 0, "main memory cannot be empty");
        assert!(
            tcdm_words * crate::WORD_BYTES <= TCDM_STRIDE,
            "TCDM capacity exceeds its address stride"
        );
        MemoryMap {
            clusters,
            main_words,
            tcdm_words,
        }
    }

    /// Number of clusters in the map.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Main memory capacity in words.
    pub fn main_words(&self) -> u64 {
        self.main_words
    }

    /// Per-cluster TCDM capacity in words.
    pub fn tcdm_words(&self) -> u64 {
        self.tcdm_words
    }

    /// Base address of main memory.
    pub fn main_base(&self) -> Addr {
        Addr::new(MAIN_BASE)
    }

    /// Base address of `cluster`'s TCDM.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn tcdm_base(&self, cluster: usize) -> Addr {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        Addr::new(TCDM_BASE + cluster as u64 * TCDM_STRIDE)
    }

    /// Address of a mailbox register of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn mailbox_reg(&self, cluster: usize, reg: ClusterReg) -> Addr {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        Addr::new(MAILBOX_BASE + cluster as u64 * MAILBOX_STRIDE + reg.offset())
    }

    /// Address of a credit-counter register.
    pub fn credit_reg(&self, reg: CreditReg) -> Addr {
        Addr::new(CREDIT_BASE + reg.offset())
    }

    /// Decodes a physical address to its target device.
    ///
    /// # Errors
    ///
    /// [`MemoryError::Misaligned`] for non-word-aligned addresses and
    /// [`MemoryError::Unmapped`] for holes in the map.
    pub fn decode(&self, addr: Addr) -> Result<Target, MemoryError> {
        if !addr.is_word_aligned() {
            return Err(MemoryError::Misaligned { addr });
        }
        let a = addr.as_u64();
        if a >= MAIN_BASE {
            let word = (a - MAIN_BASE) / crate::WORD_BYTES;
            if word < self.main_words {
                return Ok(Target::Main { word });
            }
            return Err(MemoryError::Unmapped { addr });
        }
        if a >= MAILBOX_BASE {
            let cluster = ((a - MAILBOX_BASE) / MAILBOX_STRIDE) as usize;
            let offset = (a - MAILBOX_BASE) % MAILBOX_STRIDE;
            if cluster < self.clusters {
                if let Some(reg) = ClusterReg::decode(offset) {
                    return Ok(Target::Mailbox { cluster, reg });
                }
            }
            return Err(MemoryError::Unmapped { addr });
        }
        if a >= TCDM_BASE {
            let cluster = ((a - TCDM_BASE) / TCDM_STRIDE) as usize;
            let offset = (a - TCDM_BASE) % TCDM_STRIDE;
            let word = offset / crate::WORD_BYTES;
            if cluster < self.clusters && word < self.tcdm_words {
                return Ok(Target::Tcdm { cluster, word });
            }
            return Err(MemoryError::Unmapped { addr });
        }
        if a >= CREDIT_BASE {
            if let Some(reg) = CreditReg::decode(a - CREDIT_BASE) {
                return Ok(Target::Credit { reg });
            }
        }
        Err(MemoryError::Unmapped { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        MemoryMap::new(4, 1024)
    }

    #[test]
    fn decode_main_memory() {
        let m = map();
        assert_eq!(
            m.decode(Addr::new(MAIN_BASE)).unwrap(),
            Target::Main { word: 0 }
        );
        assert_eq!(
            m.decode(m.main_base().add_words(1023)).unwrap(),
            Target::Main { word: 1023 }
        );
        assert!(m.decode(m.main_base().add_words(1024)).is_err());
    }

    #[test]
    fn decode_tcdm() {
        let m = map();
        assert_eq!(
            m.decode(m.tcdm_base(2)).unwrap(),
            Target::Tcdm {
                cluster: 2,
                word: 0
            }
        );
        assert_eq!(
            m.decode(m.tcdm_base(2).add_words(5)).unwrap(),
            Target::Tcdm {
                cluster: 2,
                word: 5
            }
        );
        // Beyond the TCDM capacity but within the stride: unmapped.
        let past = m.tcdm_base(0).add_words(m.tcdm_words());
        assert!(m.decode(past).is_err());
        // Cluster out of range: unmapped.
        assert!(m.decode(Addr::new(TCDM_BASE + 4 * TCDM_STRIDE)).is_err());
    }

    #[test]
    fn decode_mailbox_registers() {
        let m = map();
        for cluster in 0..4 {
            assert_eq!(
                m.decode(m.mailbox_reg(cluster, ClusterReg::JobPtr))
                    .unwrap(),
                Target::Mailbox {
                    cluster,
                    reg: ClusterReg::JobPtr
                }
            );
            assert_eq!(
                m.decode(m.mailbox_reg(cluster, ClusterReg::Wakeup))
                    .unwrap(),
                Target::Mailbox {
                    cluster,
                    reg: ClusterReg::Wakeup
                }
            );
        }
        // Unknown register offset.
        assert!(m.decode(Addr::new(MAILBOX_BASE + 0x10)).is_err());
    }

    #[test]
    fn decode_credit_registers() {
        let m = map();
        for reg in [
            CreditReg::Threshold,
            CreditReg::Count,
            CreditReg::Increment,
            CreditReg::Reset,
        ] {
            assert_eq!(m.decode(m.credit_reg(reg)).unwrap(), Target::Credit { reg });
        }
        assert!(m.decode(Addr::new(CREDIT_BASE + 0x20)).is_err());
    }

    #[test]
    fn misaligned_and_holes() {
        let m = map();
        assert!(matches!(
            m.decode(Addr::new(MAIN_BASE + 4)),
            Err(MemoryError::Misaligned { .. })
        ));
        assert!(matches!(
            m.decode(Addr::new(0x0)),
            Err(MemoryError::Unmapped { .. })
        ));
        assert!(matches!(
            m.decode(Addr::new(0x0300_0000)),
            Err(MemoryError::Unmapped { .. })
        ));
    }

    #[test]
    fn geometry_accessors() {
        let m = map();
        assert_eq!(m.clusters(), 4);
        assert_eq!(m.main_words(), 1024);
        assert_eq!(m.tcdm_words(), TCDM_WORDS_DEFAULT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tcdm_base_out_of_range_panics() {
        map().tcdm_base(4);
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn too_many_clusters_panics() {
        let _ = MemoryMap::new(129, 1024);
    }
}
