//! # mpsoc-mem
//!
//! Memory substrate for the `mpsoc-offload` MPSoC simulator:
//!
//! - [`Addr`]: a typed 64-bit physical byte address,
//! - [`WordStore`]: a flat, bounds-checked backing store of 64-bit words
//!   (all data in this system is `f64`/`u64`-sized, matching the
//!   double-precision DAXPY workloads of the paper),
//! - [`MainMemory`]: the shared HBM-class main-memory system with an
//!   aggregate-bandwidth timing model and a serializing atomic unit (the
//!   baseline software barrier increments a counter here),
//! - [`Tcdm`]: a cluster's tightly-coupled data memory with per-bank
//!   cycle-accurate port arbitration,
//! - [`MemoryMap`]: the SoC physical address map and its decoder.
//!
//! Timing and data are deliberately carried by the *same* objects: a DMA
//! transfer both moves real `f64` values and consumes modeled bandwidth,
//! so every experiment doubles as an end-to-end correctness check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod main_mem;
mod map;
mod store;
mod tcdm;

pub use addr::{Addr, WORD_BYTES};
pub use error::MemoryError;
pub use main_mem::MainMemory;
pub use map::{ClusterReg, CreditReg, MemoryMap, Target};
pub use store::WordStore;
pub use tcdm::{BankMode, Tcdm};
