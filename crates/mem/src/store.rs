//! Flat word-granular backing store.

use crate::{Addr, MemoryError};

/// A bounds-checked array of 64-bit words anchored at a base address.
///
/// `WordStore` carries the *data* of a memory; timing is layered on top by
/// [`MainMemory`](crate::MainMemory) and [`Tcdm`](crate::Tcdm). Words can
/// be viewed as raw bits (`u64`) or as doubles (`f64`); the store keeps
/// raw bits internally so integer payloads (descriptors, flags) round-trip
/// exactly.
///
/// # Example
///
/// ```
/// use mpsoc_mem::{Addr, WordStore};
///
/// # fn main() -> Result<(), mpsoc_mem::MemoryError> {
/// let mut store = WordStore::new(Addr::new(0x1000), 16);
/// store.write_f64(Addr::new(0x1008), 2.5)?;
/// assert_eq!(store.read_f64(Addr::new(0x1008))?, 2.5);
/// assert_eq!(store.read_u64(Addr::new(0x1000))?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WordStore {
    base: Addr,
    words: Vec<u64>,
}

impl WordStore {
    /// Creates a zero-initialized store of `words` words based at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn new(base: Addr, words: u64) -> Self {
        assert!(base.is_word_aligned(), "store base must be word-aligned");
        WordStore {
            base,
            words: vec![0; words as usize],
        }
    }

    /// Base address of the store.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Capacity in words.
    pub fn len_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// `true` when the store holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Addr {
        self.base.add_words(self.len_words())
    }

    /// `true` when `addr` lies inside the store.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    fn index(&self, addr: Addr) -> Result<usize, MemoryError> {
        if !addr.is_word_aligned() {
            return Err(MemoryError::Misaligned { addr });
        }
        match addr.word_offset_from(self.base) {
            Some(w) if w < self.len_words() => Ok(w as usize),
            _ => Err(MemoryError::OutOfBounds {
                addr,
                base: self.base,
                words: self.len_words(),
            }),
        }
    }

    /// Reads the raw word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Misaligned`] or [`MemoryError::OutOfBounds`].
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemoryError> {
        Ok(self.words[self.index(addr)?])
    }

    /// Writes the raw word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Misaligned`] or [`MemoryError::OutOfBounds`].
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemoryError> {
        let i = self.index(addr)?;
        self.words[i] = value;
        Ok(())
    }

    /// Reads the word at `addr` as a double.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Misaligned`] or [`MemoryError::OutOfBounds`].
    pub fn read_f64(&self, addr: Addr) -> Result<f64, MemoryError> {
        self.read_u64(addr).map(f64::from_bits)
    }

    /// Writes a double at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Misaligned`] or [`MemoryError::OutOfBounds`].
    pub fn write_f64(&mut self, addr: Addr, value: f64) -> Result<(), MemoryError> {
        self.write_u64(addr, value.to_bits())
    }

    /// Atomically adds `delta` to the raw word at `addr`, returning the
    /// *new* value (matching RISC-V AMO semantics used by the software
    /// barrier).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::Misaligned`] or [`MemoryError::OutOfBounds`].
    pub fn fetch_add_u64(&mut self, addr: Addr, delta: u64) -> Result<u64, MemoryError> {
        let i = self.index(addr)?;
        self.words[i] = self.words[i].wrapping_add(delta);
        Ok(self.words[i])
    }

    /// Copies `values` into consecutive words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if any part of the destination is out of bounds;
    /// nothing is written in that case.
    pub fn write_f64_slice(&mut self, addr: Addr, values: &[f64]) -> Result<(), MemoryError> {
        let start = self.index(addr)?;
        let end_addr = addr.add_words(values.len() as u64);
        if end_addr > self.end() {
            return Err(MemoryError::OutOfBounds {
                addr: end_addr,
                base: self.base,
                words: self.len_words(),
            });
        }
        for (slot, value) in self.words[start..start + values.len()]
            .iter_mut()
            .zip(values)
        {
            *slot = value.to_bits();
        }
        Ok(())
    }

    /// Reads `count` consecutive doubles starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if any part of the source is out of bounds.
    pub fn read_f64_slice(&self, addr: Addr, count: u64) -> Result<Vec<f64>, MemoryError> {
        let start = self.index(addr)?;
        let end_addr = addr.add_words(count);
        if end_addr > self.end() {
            return Err(MemoryError::OutOfBounds {
                addr: end_addr,
                base: self.base,
                words: self.len_words(),
            });
        }
        Ok(self.words[start..start + count as usize]
            .iter()
            .map(|&bits| f64::from_bits(bits))
            .collect())
    }

    /// Copies `count` words from `src` in `from` to `dst` in `self`.
    /// Used by the DMA model to move data between memories.
    ///
    /// # Errors
    ///
    /// Returns an error if either range is out of bounds; the destination
    /// is untouched in that case.
    pub fn copy_words_from(
        &mut self,
        from: &WordStore,
        src: Addr,
        dst: Addr,
        count: u64,
    ) -> Result<(), MemoryError> {
        let src_start = from.index(src)?;
        if src.add_words(count) > from.end() {
            return Err(MemoryError::OutOfBounds {
                addr: src.add_words(count),
                base: from.base,
                words: from.len_words(),
            });
        }
        let dst_start = self.index(dst)?;
        if dst.add_words(count) > self.end() {
            return Err(MemoryError::OutOfBounds {
                addr: dst.add_words(count),
                base: self.base,
                words: self.len_words(),
            });
        }
        let (src_slice, dst_slice) = (
            &from.words[src_start..src_start + count as usize],
            &mut self.words[dst_start..dst_start + count as usize],
        );
        dst_slice.copy_from_slice(src_slice);
        Ok(())
    }

    /// Zeroes the entire store.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> WordStore {
        WordStore::new(Addr::new(0x100), 8)
    }

    #[test]
    fn round_trip_u64_and_f64() {
        let mut s = store();
        s.write_u64(Addr::new(0x100), 0xdead).unwrap();
        assert_eq!(s.read_u64(Addr::new(0x100)).unwrap(), 0xdead);
        s.write_f64(Addr::new(0x108), -1.25).unwrap();
        assert_eq!(s.read_f64(Addr::new(0x108)).unwrap(), -1.25);
        // NaN bit patterns survive because storage is raw bits.
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        s.write_f64(Addr::new(0x110), weird).unwrap();
        assert_eq!(
            s.read_f64(Addr::new(0x110)).unwrap().to_bits(),
            weird.to_bits()
        );
    }

    #[test]
    fn bounds_and_alignment_errors() {
        let mut s = store();
        assert!(matches!(
            s.read_u64(Addr::new(0x0)),
            Err(MemoryError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.read_u64(s.end()),
            Err(MemoryError::OutOfBounds { .. })
        ));
        assert!(matches!(
            s.write_u64(Addr::new(0x104), 1),
            Err(MemoryError::Misaligned { .. })
        ));
    }

    #[test]
    fn contains_and_geometry() {
        let s = store();
        assert_eq!(s.base(), Addr::new(0x100));
        assert_eq!(s.len_words(), 8);
        assert_eq!(s.end(), Addr::new(0x140));
        assert!(s.contains(Addr::new(0x100)));
        assert!(s.contains(Addr::new(0x13f)));
        assert!(!s.contains(Addr::new(0x140)));
        assert!(!s.is_empty());
    }

    #[test]
    fn fetch_add_returns_new_value() {
        let mut s = store();
        assert_eq!(s.fetch_add_u64(Addr::new(0x100), 1).unwrap(), 1);
        assert_eq!(s.fetch_add_u64(Addr::new(0x100), 4).unwrap(), 5);
        assert_eq!(s.read_u64(Addr::new(0x100)).unwrap(), 5);
    }

    #[test]
    fn slice_round_trip() {
        let mut s = store();
        let data = [1.0, 2.0, 3.0];
        s.write_f64_slice(Addr::new(0x110), &data).unwrap();
        assert_eq!(s.read_f64_slice(Addr::new(0x110), 3).unwrap(), data);
    }

    #[test]
    fn slice_overflow_rejected_without_partial_write() {
        let mut s = store();
        let data = vec![9.0; 9];
        assert!(s.write_f64_slice(Addr::new(0x100), &data).is_err());
        // Nothing was written.
        assert_eq!(s.read_u64(Addr::new(0x100)).unwrap(), 0);
        assert!(s.read_f64_slice(Addr::new(0x100), 9).is_err());
    }

    #[test]
    fn copy_words_between_stores() {
        let mut a = WordStore::new(Addr::new(0x0), 4);
        let mut b = WordStore::new(Addr::new(0x1000), 4);
        a.write_f64_slice(Addr::new(0x0), &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        b.copy_words_from(&a, Addr::new(0x8), Addr::new(0x1000), 2)
            .unwrap();
        assert_eq!(b.read_f64_slice(Addr::new(0x1000), 2).unwrap(), [2.0, 3.0]);
        // Out-of-range copies are rejected.
        assert!(b
            .copy_words_from(&a, Addr::new(0x18), Addr::new(0x1000), 2)
            .is_err());
        assert!(b
            .copy_words_from(&a, Addr::new(0x0), Addr::new(0x1018), 2)
            .is_err());
    }

    #[test]
    fn clear_zeroes() {
        let mut s = store();
        s.write_u64(Addr::new(0x100), 7).unwrap();
        s.clear();
        assert_eq!(s.read_u64(Addr::new(0x100)).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_base_panics() {
        let _ = WordStore::new(Addr::new(0x101), 4);
    }
}
