//! Property tests for the memory substrate: data round-trips and the
//! address map's encode/decode inverse.

use proptest::prelude::*;

use mpsoc_mem::{Addr, ClusterReg, CreditReg, MemoryMap, Target, WordStore};

proptest! {
    /// Random sequences of writes read back the last value written.
    #[test]
    fn store_reads_last_write(
        writes in prop::collection::vec((0u64..64, any::<u64>()), 1..200),
    ) {
        let base = Addr::new(0x8000_0000);
        let mut store = WordStore::new(base, 64);
        let mut shadow = [0u64; 64];
        for &(word, value) in &writes {
            store.write_u64(base.add_words(word), value).unwrap();
            shadow[word as usize] = value;
        }
        for (word, &expected) in shadow.iter().enumerate() {
            prop_assert_eq!(store.read_u64(base.add_words(word as u64)).unwrap(), expected);
        }
    }

    /// f64 values round-trip bit-exactly, including NaN payloads.
    #[test]
    fn f64_round_trip_is_bit_exact(bits in any::<u64>()) {
        let base = Addr::new(0);
        let mut store = WordStore::new(base, 1);
        let value = f64::from_bits(bits);
        store.write_f64(base, value).unwrap();
        prop_assert_eq!(store.read_f64(base).unwrap().to_bits(), bits);
    }

    /// Slice writes followed by slice reads are the identity.
    #[test]
    fn slice_round_trip(
        values in prop::collection::vec(-1e12f64..1e12, 1..64),
        offset in 0u64..32,
    ) {
        let base = Addr::new(0x1000);
        let mut store = WordStore::new(base, 128);
        let at = base.add_words(offset);
        store.write_f64_slice(at, &values).unwrap();
        let back = store.read_f64_slice(at, values.len() as u64).unwrap();
        prop_assert_eq!(back, values);
    }

    /// Every address constructed from the map decodes back to its device.
    #[test]
    fn map_decode_inverts_encode(
        clusters in 1usize..=64,
        cluster_pick in 0usize..64,
        word in 0u64..1024,
    ) {
        let map = MemoryMap::new(clusters, 1 << 16);
        let cluster = cluster_pick % clusters;

        prop_assert_eq!(
            map.decode(map.main_base().add_words(word)).unwrap(),
            Target::Main { word }
        );
        prop_assert_eq!(
            map.decode(map.tcdm_base(cluster).add_words(word % map.tcdm_words())).unwrap(),
            Target::Tcdm { cluster, word: word % map.tcdm_words() }
        );
        for reg in [ClusterReg::JobPtr, ClusterReg::Wakeup] {
            prop_assert_eq!(
                map.decode(map.mailbox_reg(cluster, reg)).unwrap(),
                Target::Mailbox { cluster, reg }
            );
        }
        for reg in [CreditReg::Threshold, CreditReg::Count, CreditReg::Increment, CreditReg::Reset] {
            prop_assert_eq!(
                map.decode(map.credit_reg(reg)).unwrap(),
                Target::Credit { reg }
            );
        }
    }

    /// Fetch-add sequences match a shadow accumulator.
    #[test]
    fn fetch_add_matches_shadow(deltas in prop::collection::vec(0u64..1000, 1..100)) {
        let base = Addr::new(0);
        let mut store = WordStore::new(base, 1);
        let mut shadow = 0u64;
        for &d in &deltas {
            shadow = shadow.wrapping_add(d);
            prop_assert_eq!(store.fetch_add_u64(base, d).unwrap(), shadow);
        }
    }

    /// Out-of-range accesses never panic — they error.
    #[test]
    fn out_of_range_is_an_error_not_a_panic(word in 64u64..10_000) {
        let base = Addr::new(0);
        let store = WordStore::new(base, 64);
        prop_assert!(store.read_u64(base.add_words(word)).is_err());
    }
}
