//! Property tests for the interconnect: mask algebra, multicast
//! constancy and unicast serialization.

use proptest::prelude::*;

use mpsoc_noc::{ClusterMask, Interconnect, NocConfig};
use mpsoc_sim::Cycle;

proptest! {
    /// Collecting indices into a mask and iterating back is the identity
    /// (after dedup/sort).
    #[test]
    fn mask_collect_iter_round_trip(indices in prop::collection::vec(0usize..64, 0..64)) {
        let mask: ClusterMask = indices.iter().copied().collect();
        let mut expected = indices.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(mask.iter().collect::<Vec<_>>(), expected.clone());
        prop_assert_eq!(mask.count(), expected.len());
        for &i in &expected {
            prop_assert!(mask.contains(i));
        }
    }

    /// Mask set algebra behaves like sets.
    #[test]
    fn mask_set_algebra(
        a in prop::collection::vec(0usize..64, 0..32),
        b in prop::collection::vec(0usize..64, 0..32),
    ) {
        use std::collections::BTreeSet;
        let ma: ClusterMask = a.iter().copied().collect();
        let mb: ClusterMask = b.iter().copied().collect();
        let sa: BTreeSet<usize> = a.into_iter().collect();
        let sb: BTreeSet<usize> = b.into_iter().collect();
        let union: Vec<usize> = sa.union(&sb).copied().collect();
        let inter: Vec<usize> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(ma.union(mb).iter().collect::<Vec<_>>(), union);
        prop_assert_eq!(ma.intersection(mb).iter().collect::<Vec<_>>(), inter);
        let diff: Vec<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(ma.without(mb).iter().collect::<Vec<_>>(), diff);
    }

    /// Subtraction laws that quarantine re-planning relies on: the
    /// survivors and the removed set partition the original mask, and
    /// subtracting twice changes nothing.
    #[test]
    fn mask_without_partitions(
        a in prop::collection::vec(0usize..64, 0..32),
        b in prop::collection::vec(0usize..64, 0..32),
    ) {
        let ma: ClusterMask = a.into_iter().collect();
        let mb: ClusterMask = b.into_iter().collect();
        let survivors = ma.without(mb);
        prop_assert!(survivors.intersection(mb).is_empty());
        prop_assert_eq!(survivors.union(ma.intersection(mb)), ma);
        prop_assert_eq!(survivors.without(mb), survivors);
        prop_assert_eq!(survivors.count() + ma.intersection(mb).count(), ma.count());
    }

    /// Multicast delivery time is the same no matter how many clusters
    /// are selected — the central claim of the hardware extension.
    #[test]
    fn multicast_cost_is_constant_in_fanout(
        clusters in 2usize..=64,
        pick in prop::collection::vec(0usize..64, 1..64),
    ) {
        let mask: ClusterMask = pick.into_iter().map(|p| p % clusters).collect();
        let mut single = Interconnect::new(NocConfig::manticore(), clusters);
        let mut multi = Interconnect::new(NocConfig::manticore(), clusters);
        let one = single.host_multicast(Cycle::ZERO, ClusterMask::single(mask.iter().next().unwrap()));
        let many = multi.host_multicast(Cycle::ZERO, mask);
        prop_assert_eq!(one.injected, many.injected);
        prop_assert_eq!(one.last_delivery(), many.last_delivery());
        prop_assert_eq!(many.delivered.len(), mask.count());
    }

    /// Sequential unicast dispatch cost grows linearly: the k-th store is
    /// injected exactly k×inject_cycles after the first.
    #[test]
    fn unicast_injection_is_linear(clusters in 2usize..=64) {
        let cfg = NocConfig::manticore();
        let mut noc = Interconnect::new(cfg, clusters);
        let inject = cfg.inject_cycles.as_u64();
        for k in 0..clusters {
            let d = noc.host_unicast(Cycle::ZERO, k);
            prop_assert_eq!(d.injected.as_u64(), (k as u64 + 1) * inject);
        }
    }

    /// Upstream completion stores to a shared device serialize at its
    /// ingress: the k-th simultaneous arrival is delayed k cycles.
    #[test]
    fn upstream_ingress_serializes(clusters in 2usize..=64) {
        let cfg = NocConfig::manticore();
        let mut noc = Interconnect::new(cfg, clusters);
        let mut last = Cycle::ZERO;
        for k in 0..clusters {
            let t = noc.cluster_upstream(Cycle::ZERO, k);
            if k > 0 {
                prop_assert_eq!(t, last + cfg.ingress_cycles);
            }
            last = t;
        }
    }

    /// The credit sideband does NOT serialize simultaneous arrivals.
    #[test]
    fn credit_sideband_is_contention_free(clusters in 2usize..=64) {
        let mut noc = Interconnect::new(NocConfig::manticore(), clusters);
        let times: Vec<Cycle> = (0..clusters)
            .map(|k| noc.credit_upstream(Cycle::ZERO, k))
            .collect();
        prop_assert!(times.windows(2).all(|w| w[0] == w[1]));
    }
}
