//! Cluster selection masks for multicast.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A set of accelerator clusters, as a bitmask (bit `i` = cluster `i`).
///
/// This is the value the host writes to the multicast address decoder to
/// select the offload targets. Up to 64 clusters are supported — twice the
/// largest configuration in the paper (32 clusters / 288 cores).
///
/// # Example
///
/// ```
/// use mpsoc_noc::ClusterMask;
///
/// let first_four = ClusterMask::first(4);
/// assert_eq!(first_four.count(), 4);
/// assert!(first_four.contains(3));
/// assert!(!first_four.contains(4));
///
/// let custom: ClusterMask = [0, 2, 5].into_iter().collect();
/// assert_eq!(custom.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ClusterMask(u64);

impl ClusterMask {
    /// The empty set.
    pub const EMPTY: ClusterMask = ClusterMask(0);

    /// Creates a mask from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        ClusterMask(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// A mask selecting clusters `0..count`.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn first(count: usize) -> Self {
        assert!(count <= 64, "at most 64 clusters are supported");
        if count == 64 {
            ClusterMask(u64::MAX)
        } else {
            ClusterMask((1u64 << count) - 1)
        }
    }

    /// A mask selecting only `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster >= 64`.
    pub fn single(cluster: usize) -> Self {
        assert!(cluster < 64, "cluster index out of range");
        ClusterMask(1u64 << cluster)
    }

    /// A mask selecting clusters `start..start + count` — the natural
    /// shape of a tenant partition (e.g. the upper half of the machine
    /// while another tenant holds the lower half).
    ///
    /// # Panics
    ///
    /// Panics if `start + count > 64`.
    pub fn range(start: usize, count: usize) -> Self {
        assert!(start + count <= 64, "at most 64 clusters are supported");
        ClusterMask(Self::first(count).0 << start)
    }

    /// Whether `cluster` is selected.
    pub fn contains(self, cluster: usize) -> bool {
        cluster < 64 && (self.0 >> cluster) & 1 == 1
    }

    /// Adds `cluster` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `cluster >= 64`.
    pub fn insert(&mut self, cluster: usize) {
        assert!(cluster < 64, "cluster index out of range");
        self.0 |= 1u64 << cluster;
    }

    /// Removes `cluster` from the set.
    pub fn remove(&mut self, cluster: usize) {
        if cluster < 64 {
            self.0 &= !(1u64 << cluster);
        }
    }

    /// Number of selected clusters.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when no cluster is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Index of the highest selected cluster, `None` when empty.
    pub fn highest(self) -> Option<usize> {
        (!self.is_empty()).then(|| 63 - self.0.leading_zeros() as usize)
    }

    /// Iterates over the selected cluster indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(idx)
            }
        })
    }

    /// Set union.
    pub fn union(self, other: ClusterMask) -> ClusterMask {
        ClusterMask(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: ClusterMask) -> ClusterMask {
        ClusterMask(self.0 & other.0)
    }

    /// Set subtraction: the clusters in `self` but not in `other` — the
    /// surviving partition after quarantining `other`.
    pub fn without(self, other: ClusterMask) -> ClusterMask {
        ClusterMask(self.0 & !other.0)
    }
}

impl FromIterator<usize> for ClusterMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut mask = ClusterMask::EMPTY;
        for cluster in iter {
            mask.insert(cluster);
        }
        mask
    }
}

impl Extend<usize> for ClusterMask {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for cluster in iter {
            self.insert(cluster);
        }
    }
}

impl fmt::Display for ClusterMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, cluster) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{cluster}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Binary for ClusterMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_builds_prefix_masks() {
        assert_eq!(ClusterMask::first(0), ClusterMask::EMPTY);
        assert_eq!(ClusterMask::first(1).bits(), 0b1);
        assert_eq!(ClusterMask::first(4).bits(), 0b1111);
        assert_eq!(ClusterMask::first(64).bits(), u64::MAX);
    }

    #[test]
    fn range_builds_partition_masks() {
        assert_eq!(ClusterMask::range(0, 4), ClusterMask::first(4));
        assert_eq!(
            ClusterMask::range(2, 2).iter().collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(ClusterMask::range(16, 16).count(), 16);
        assert_eq!(
            ClusterMask::range(0, 16).union(ClusterMask::range(16, 16)),
            ClusterMask::first(32)
        );
        assert_eq!(ClusterMask::range(63, 1).bits(), 1u64 << 63);
        assert_eq!(ClusterMask::range(5, 0), ClusterMask::EMPTY);
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = ClusterMask::EMPTY;
        m.insert(5);
        m.insert(0);
        assert!(m.contains(0));
        assert!(m.contains(5));
        assert!(!m.contains(1));
        m.remove(5);
        assert!(!m.contains(5));
        m.remove(63); // no-op, doesn't panic
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn iter_ascending() {
        let m: ClusterMask = [7, 1, 31].into_iter().collect();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 7, 31]);
        assert_eq!(m.highest(), Some(31));
        assert_eq!(ClusterMask::EMPTY.highest(), None);
    }

    #[test]
    fn set_operations() {
        let a = ClusterMask::first(4);
        let b: ClusterMask = [2, 3, 4, 5].into_iter().collect();
        assert_eq!(a.union(b).count(), 6);
        assert_eq!(a.intersection(b).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(a.without(b).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(b.without(a).iter().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn without_subtracts() {
        let all = ClusterMask::first(8);
        assert_eq!(all.without(ClusterMask::EMPTY), all);
        assert_eq!(all.without(all), ClusterMask::EMPTY);
        assert_eq!(ClusterMask::EMPTY.without(all), ClusterMask::EMPTY);
        // Subtracting a foreign set is a no-op.
        assert_eq!(all.without(ClusterMask::range(8, 4)), all);
        let quarantined = ClusterMask::single(3);
        let survivors = all.without(quarantined);
        assert_eq!(survivors.count(), 7);
        assert!(!survivors.contains(3));
    }

    #[test]
    fn extend_and_display() {
        let mut m = ClusterMask::single(2);
        m.extend([4usize, 6]);
        assert_eq!(m.to_string(), "{2,4,6}");
        assert_eq!(format!("{m:b}"), "1010100");
        assert_eq!(ClusterMask::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        let _ = ClusterMask::single(64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn first_too_large_panics() {
        let _ = ClusterMask::first(65);
    }
}
