//! # mpsoc-noc
//!
//! Host↔cluster interconnect model for the `mpsoc-offload` MPSoC
//! simulator, including the paper's key hardware extension: **multicast**
//! from the host to a set of accelerator clusters.
//!
//! The interconnect is a fan-out tree (system crossbar → quadrant
//! switches → clusters, as in Manticore). Two dispatch primitives are
//! offered:
//!
//! - [`Interconnect::host_unicast`]: one posted store to one cluster. The
//!   host's injection port is occupied per store, so dispatching a job to
//!   `M` clusters costs `M` injections — the linear overhead of the
//!   baseline runtime.
//! - [`Interconnect::host_multicast`]: one posted store replicated by the
//!   switches toward every cluster in a [`ClusterMask`]. The host pays a
//!   single injection and the replication happens in parallel in the
//!   fabric, so the cost is constant in `M` — the paper's extension.
//!
//! Completion traffic (cluster → credit unit / main memory) and host
//! round-trip reads (the baseline's polling loop) are also modeled here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod interconnect;
mod mask;

pub use config::NocConfig;
pub use interconnect::{Delivery, Interconnect, MulticastDelivery};
pub use mask::ClusterMask;
