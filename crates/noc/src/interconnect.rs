//! The interconnect timing engine.

use mpsoc_faults::OutageWindow;
use mpsoc_sim::stats::StatsRegistry;
use mpsoc_sim::{Cycle, UnitResource};

use crate::{ClusterMask, NocConfig};

/// Outcome of a unicast posted store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the initiator's injection port is free again (a posted store
    /// releases the initiator here, before delivery).
    pub injected: Cycle,
    /// When the payload is visible at the destination.
    pub delivered: Cycle,
}

/// Outcome of a multicast posted store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastDelivery {
    /// When the initiator's injection port is free again.
    pub injected: Cycle,
    /// Per-target delivery times, ascending by cluster index.
    pub delivered: Vec<(usize, Cycle)>,
}

impl MulticastDelivery {
    /// The latest delivery time across all targets (offload-critical path).
    pub fn last_delivery(&self) -> Option<Cycle> {
        self.delivered.iter().map(|&(_, t)| t).max()
    }
}

/// The host↔cluster interconnect: a fan-out tree with per-port FCFS
/// arbitration and an optional multicast capability.
///
/// # Example
///
/// ```
/// use mpsoc_noc::{ClusterMask, Interconnect, NocConfig};
/// use mpsoc_sim::Cycle;
///
/// let mut noc = Interconnect::new(NocConfig::manticore(), 32);
///
/// // Baseline: two sequential unicasts occupy the host port back-to-back.
/// let a = noc.host_unicast(Cycle::ZERO, 0);
/// let b = noc.host_unicast(Cycle::ZERO, 1);
/// assert!(b.injected > a.injected);
///
/// // Extension: one multicast reaches all 32 clusters with one injection.
/// let mc = noc.host_multicast(Cycle::new(100), ClusterMask::first(32));
/// assert_eq!(mc.delivered.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: NocConfig,
    clusters: usize,
    levels: u32,
    host_inject: UnitResource,
    cluster_ingress: Vec<UnitResource>,
    host_ingress: UnitResource,
    outages: Vec<OutageWindow>,
    outage_deferrals: u64,
    stats: StatsRegistry,
}

impl Interconnect {
    /// Creates an interconnect spanning `clusters` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds 64 (the multicast mask
    /// width).
    pub fn new(cfg: NocConfig, clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(clusters <= 64, "at most 64 clusters are supported");
        let levels = cfg.levels(clusters);
        Interconnect {
            cfg,
            clusters,
            levels,
            host_inject: UnitResource::new(),
            cluster_ingress: vec![UnitResource::new(); clusters],
            host_ingress: UnitResource::new(),
            outages: Vec::new(),
            outage_deferrals: 0,
            stats: StatsRegistry::new(),
        }
    }

    /// Installs transient link-outage windows (fault injection).
    /// Deliveries whose arrival falls inside a window are deferred until
    /// the link is back up; an empty set restores fault-free behavior.
    pub fn set_outages(&mut self, outages: Vec<OutageWindow>) {
        self.outages = outages;
    }

    /// Deliveries deferred by outage windows so far.
    pub fn outage_deferrals(&self) -> u64 {
        self.outage_deferrals
    }

    /// Applies outage windows to a delivery time: if `at` falls inside
    /// any window, the link holds the flit and replays it at the latest
    /// covering window's end. With no outages installed this is a single
    /// untaken branch.
    fn through_outages(&mut self, at: Cycle) -> Cycle {
        if self.outages.is_empty() {
            return at;
        }
        let mut t = at;
        let mut deferred = false;
        // A deferral can land inside a later window; iterate to a fixed
        // point (windows are finitely many and strictly ordered by end).
        loop {
            match self.outages.iter().filter_map(|w| w.defer(t)).max() {
                Some(later) if later > t => {
                    t = later;
                    deferred = true;
                }
                _ => break,
            }
        }
        if deferred {
            self.outage_deferrals += 1;
            self.stats.incr("faults.noc_outage_deferrals");
            self.stats
                .observe("faults.noc_outage_delay", t.saturating_sub(at).as_f64());
        }
        t
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of endpoints.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Tree depth in switch levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Collected statistics.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    fn one_way(&self) -> Cycle {
        self.cfg.hop_latency * u64::from(self.levels)
    }

    // A port grant later than the request means another store held the
    // port: count it under the stable `contention.*` prefix so schedulers
    // can price cross-tenant interference.
    fn note_contention(&mut self, requested: Cycle, granted: Cycle) {
        if granted > requested {
            self.stats.incr("contention.noc.grant_conflicts");
            self.stats.observe(
                "contention.noc.stall_cycles",
                granted.saturating_sub(requested).as_f64(),
            );
        }
    }

    /// Issues a posted store from the host to one cluster.
    ///
    /// The host's injection port serializes stores, so a dispatch loop
    /// over `M` clusters pays `M × inject_cycles` at the source alone.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn host_unicast(&mut self, at: Cycle, cluster: usize) -> Delivery {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        let start = self.host_inject.acquire(at, self.cfg.inject_cycles);
        self.note_contention(at, start);
        let injected = start + self.cfg.inject_cycles;
        let arrival = injected + self.one_way();
        let granted = self.cluster_ingress[cluster].acquire(arrival, self.cfg.ingress_cycles);
        self.note_contention(arrival, granted);
        let delivered = self.through_outages(granted + self.cfg.ingress_cycles);
        self.stats.incr("noc.unicast_stores");
        Delivery {
            injected,
            delivered,
        }
    }

    /// Issues a single posted store replicated to every cluster in `mask`.
    ///
    /// The host pays one injection; switches replicate the flit downward
    /// in parallel, adding `replicate_cycles` per level. The cost is
    /// therefore constant in the number of selected clusters — this is the
    /// multicast extension of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects a cluster outside this interconnect or is
    /// empty.
    pub fn host_multicast(&mut self, at: Cycle, mask: ClusterMask) -> MulticastDelivery {
        assert!(!mask.is_empty(), "multicast mask must select a cluster");
        assert!(
            mask.highest().expect("non-empty") < self.clusters,
            "mask selects cluster outside the interconnect"
        );
        let start = self.host_inject.acquire(at, self.cfg.inject_cycles);
        self.note_contention(at, start);
        let injected = start + self.cfg.inject_cycles;
        let arrival =
            injected + self.one_way() + self.cfg.replicate_cycles * u64::from(self.levels);
        let mut delivered = Vec::with_capacity(mask.count());
        for cluster in mask.iter() {
            let granted = self.cluster_ingress[cluster].acquire(arrival, self.cfg.ingress_cycles);
            self.note_contention(arrival, granted);
            let at = self.through_outages(granted + self.cfg.ingress_cycles);
            delivered.push((cluster, at));
        }
        self.stats.incr("noc.multicast_stores");
        self.stats
            .observe("noc.multicast_fanout", mask.count() as f64);
        MulticastDelivery {
            injected,
            delivered,
        }
    }

    /// Issues a posted store from a cluster toward a shared device at the
    /// root of the tree (credit unit, main-memory controller). Returns the
    /// arrival time at the device's ingress, where simultaneous arrivals
    /// from different clusters serialize.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn cluster_upstream(&mut self, at: Cycle, cluster: usize) -> Cycle {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        let arrival = at + self.one_way();
        let granted = self.host_ingress.acquire(arrival, self.cfg.ingress_cycles);
        self.note_contention(arrival, granted);
        self.stats.incr("noc.upstream_stores");
        self.through_outages(granted + self.cfg.ingress_cycles)
    }

    /// Latency of a non-posted host read of a shared device at the tree
    /// root (e.g. the software-barrier counter in main memory), excluding
    /// the device's own service time: request down, response up.
    pub fn host_read_latency(&self) -> Cycle {
        self.one_way() * 2
    }

    /// Issues a completion credit from a cluster to the dedicated
    /// synchronization unit over its sideband. Unlike
    /// [`Interconnect::cluster_upstream`], concurrent credits do **not**
    /// serialize: the unit's increment logic is an adder tree that
    /// absorbs one credit per cluster per cycle, so the cost is constant
    /// in the number of clusters — part of the paper's credit-counter
    /// co-design.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn credit_upstream(&mut self, at: Cycle, cluster: usize) -> Cycle {
        assert!(cluster < self.clusters, "cluster {cluster} out of range");
        self.stats.incr("noc.credit_stores");
        let arrival = at + self.one_way() + self.cfg.ingress_cycles;
        self.through_outages(arrival)
    }

    /// Resets all port reservations and statistics (between experiments).
    /// Installed outage windows stay in force; the deferral count resets
    /// with the other statistics.
    pub fn reset(&mut self) {
        self.host_inject.reset();
        self.host_ingress.reset();
        for port in &mut self.cluster_ingress {
            port.reset();
        }
        self.outage_deferrals = 0;
        self.stats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> Interconnect {
        Interconnect::new(NocConfig::manticore(), 32)
    }

    #[test]
    fn unicast_latency_decomposition() {
        let mut n = noc();
        // inject 2 + 3 levels × hop 3 + ingress 1 = 12.
        let d = n.host_unicast(Cycle::ZERO, 7);
        assert_eq!(d.injected, Cycle::new(2));
        assert_eq!(d.delivered, Cycle::new(12));
    }

    #[test]
    fn sequential_unicasts_serialize_at_injection() {
        let mut n = noc();
        let times: Vec<Delivery> = (0..4).map(|c| n.host_unicast(Cycle::ZERO, c)).collect();
        // Injection port frees at 2, 4, 6, 8.
        let injected: Vec<u64> = times.iter().map(|d| d.injected.as_u64()).collect();
        assert_eq!(injected, vec![2, 4, 6, 8]);
        // Deliveries to distinct clusters do not contend at the edge.
        let delivered: Vec<u64> = times.iter().map(|d| d.delivered.as_u64()).collect();
        assert_eq!(delivered, vec![12, 14, 16, 18]);
    }

    #[test]
    fn multicast_cost_is_constant_in_fanout() {
        for m in [1usize, 2, 8, 32] {
            let mut n = noc();
            let d = n.host_multicast(Cycle::ZERO, ClusterMask::first(m));
            assert_eq!(d.injected, Cycle::new(2), "fanout {m}");
            // inject 2 + 3×3 hops + 3×1 replication + 1 ingress = 15.
            assert_eq!(d.last_delivery(), Some(Cycle::new(15)), "fanout {m}");
            assert_eq!(d.delivered.len(), m);
        }
    }

    #[test]
    fn multicast_targets_match_mask() {
        let mut n = noc();
        let mask: ClusterMask = [3usize, 9, 20].into_iter().collect();
        let d = n.host_multicast(Cycle::ZERO, mask);
        let targets: Vec<usize> = d.delivered.iter().map(|&(c, _)| c).collect();
        assert_eq!(targets, vec![3, 9, 20]);
    }

    #[test]
    fn upstream_stores_serialize_at_device_ingress() {
        let mut n = noc();
        let t0 = n.cluster_upstream(Cycle::ZERO, 0);
        let t1 = n.cluster_upstream(Cycle::ZERO, 1);
        let t2 = n.cluster_upstream(Cycle::ZERO, 2);
        // All arrive at cycle 9; ingress grants 1/cycle.
        assert_eq!(t0, Cycle::new(10));
        assert_eq!(t1, Cycle::new(11));
        assert_eq!(t2, Cycle::new(12));
    }

    #[test]
    fn small_socs_have_shallower_trees() {
        let mut small = Interconnect::new(NocConfig::manticore(), 4);
        assert_eq!(small.levels(), 1);
        let d = small.host_unicast(Cycle::ZERO, 0);
        // inject 2 + 1×3 + 1 = 6.
        assert_eq!(d.delivered, Cycle::new(6));
        assert_eq!(small.host_read_latency(), Cycle::new(6));
    }

    #[test]
    fn stats_are_collected() {
        let mut n = noc();
        n.host_unicast(Cycle::ZERO, 0);
        n.host_multicast(Cycle::ZERO, ClusterMask::first(8));
        n.cluster_upstream(Cycle::ZERO, 1);
        assert_eq!(n.stats().counter("noc.unicast_stores"), 1);
        assert_eq!(n.stats().counter("noc.multicast_stores"), 1);
        assert_eq!(n.stats().counter("noc.upstream_stores"), 1);
        assert_eq!(n.stats().summary("noc.multicast_fanout").mean(), Some(8.0));
        n.reset();
        assert_eq!(n.stats().counter("noc.unicast_stores"), 0);
    }

    #[test]
    fn grant_conflicts_are_counted_under_contention_prefix() {
        let mut n = noc();
        // A lone store sees an idle port: no conflicts.
        n.host_unicast(Cycle::ZERO, 0);
        assert_eq!(n.stats().counter("contention.noc.grant_conflicts"), 0);
        // Three more stores at the same cycle queue behind it at injection.
        for c in 1..4 {
            n.host_unicast(Cycle::ZERO, c);
        }
        assert_eq!(n.stats().counter("contention.noc.grant_conflicts"), 3);
        let stalls = n.stats().summary("contention.noc.stall_cycles");
        assert_eq!(stalls.count(), 3);
        // Stalls grow by inject_cycles (2) per queued store: 2, 4, 6.
        assert_eq!(stalls.min(), Some(2.0));
        assert_eq!(stalls.max(), Some(6.0));

        // Simultaneous upstream stores serialize at the device ingress.
        let mut n = noc();
        n.cluster_upstream(Cycle::ZERO, 0);
        n.cluster_upstream(Cycle::ZERO, 1);
        assert_eq!(n.stats().counter("contention.noc.grant_conflicts"), 1);
    }

    #[test]
    fn outage_windows_defer_deliveries() {
        let mut n = noc();
        // Fault-free baseline: delivery at 12 (see unicast test above).
        let baseline = n.host_unicast(Cycle::ZERO, 7).delivered;
        assert_eq!(baseline, Cycle::new(12));

        // An outage covering the arrival defers it to the window's end.
        let mut n = noc();
        n.set_outages(vec![OutageWindow { start: 10, end: 40 }]);
        let d = n.host_unicast(Cycle::ZERO, 7);
        assert_eq!(d.delivered, Cycle::new(40));
        assert_eq!(n.outage_deferrals(), 1);
        assert_eq!(n.stats().counter("faults.noc_outage_deferrals"), 1);

        // A deferral that lands inside a second window chains through it.
        let mut n = noc();
        n.set_outages(vec![
            OutageWindow { start: 10, end: 40 },
            OutageWindow { start: 40, end: 55 },
        ]);
        assert_eq!(n.host_unicast(Cycle::ZERO, 7).delivered, Cycle::new(55));

        // Outside any window: byte-identical to the fault-free path.
        let mut n = noc();
        n.set_outages(vec![OutageWindow {
            start: 500,
            end: 600,
        }]);
        assert_eq!(n.host_unicast(Cycle::ZERO, 7).delivered, baseline);
        assert_eq!(n.outage_deferrals(), 0);

        // The credit sideband and upstream path are covered too.
        let mut n = noc();
        n.set_outages(vec![OutageWindow { start: 0, end: 30 }]);
        assert_eq!(n.credit_upstream(Cycle::ZERO, 0), Cycle::new(30));
        assert_eq!(n.cluster_upstream(Cycle::ZERO, 0), Cycle::new(30));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unicast_out_of_range_panics() {
        noc().host_unicast(Cycle::ZERO, 32);
    }

    #[test]
    #[should_panic(expected = "outside the interconnect")]
    fn multicast_outside_panics() {
        noc().host_multicast(Cycle::ZERO, ClusterMask::single(40));
    }

    #[test]
    #[should_panic(expected = "must select")]
    fn empty_multicast_panics() {
        noc().host_multicast(Cycle::ZERO, ClusterMask::EMPTY);
    }
}
