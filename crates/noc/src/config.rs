//! Interconnect configuration.

use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Latency and topology parameters of the host↔cluster interconnect.
///
/// The defaults are the calibrated Manticore-class values used by every
/// experiment in this reproduction (see `DESIGN.md`, "Calibration
/// targets"). With radix 4 and 32 clusters the tree has 3 levels, so a
/// posted store reaches a cluster `inject + 3 × hop` cycles after issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Fan-out of each switch level (≥ 2).
    pub radix: usize,
    /// Latency of one switch traversal (one tree level).
    pub hop_latency: Cycle,
    /// Cycles the host's injection port is occupied per posted store.
    pub inject_cycles: Cycle,
    /// Extra cycles per level for multicast replication in a switch.
    pub replicate_cycles: Cycle,
    /// Cycles a destination ingress port is occupied per delivery
    /// (serializes simultaneous arrivals at one device).
    pub ingress_cycles: Cycle,
}

impl NocConfig {
    /// The calibrated Manticore-class configuration.
    pub fn manticore() -> Self {
        NocConfig {
            radix: 4,
            hop_latency: Cycle::new(3),
            inject_cycles: Cycle::new(2),
            replicate_cycles: Cycle::new(1),
            ingress_cycles: Cycle::new(1),
        }
    }

    /// Number of switch levels needed to reach `clusters` endpoints.
    ///
    /// Always at least 1 (even a single cluster goes through the system
    /// crossbar).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or `radix < 2`.
    ///
    /// # Example
    ///
    /// ```
    /// use mpsoc_noc::NocConfig;
    ///
    /// let cfg = NocConfig::manticore();
    /// assert_eq!(cfg.levels(1), 1);
    /// assert_eq!(cfg.levels(4), 1);
    /// assert_eq!(cfg.levels(16), 2);
    /// assert_eq!(cfg.levels(32), 3);
    /// ```
    pub fn levels(&self, clusters: usize) -> u32 {
        assert!(clusters > 0, "need at least one cluster");
        assert!(self.radix >= 2, "radix must be at least 2");
        let mut levels = 1u32;
        let mut reach = self.radix;
        while reach < clusters {
            reach *= self.radix;
            levels += 1;
        }
        levels
    }

    /// One-way latency through `levels(clusters)` switch hops.
    pub fn one_way(&self, clusters: usize) -> Cycle {
        self.hop_latency * u64::from(self.levels(clusters))
    }

    /// Round-trip latency for a non-posted access (request + response).
    pub fn round_trip(&self, clusters: usize) -> Cycle {
        self.one_way(clusters) * 2
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::manticore()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manticore_defaults() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.radix, 4);
        assert_eq!(cfg.hop_latency, Cycle::new(3));
    }

    #[test]
    fn levels_cover_radix_powers() {
        let cfg = NocConfig::manticore();
        assert_eq!(cfg.levels(2), 1);
        assert_eq!(cfg.levels(5), 2);
        assert_eq!(cfg.levels(17), 3);
        assert_eq!(cfg.levels(64), 3);
        assert_eq!(cfg.levels(65), 4);
    }

    #[test]
    fn latency_helpers() {
        let cfg = NocConfig::manticore();
        assert_eq!(cfg.one_way(32), Cycle::new(9));
        assert_eq!(cfg.round_trip(32), Cycle::new(18));
        assert_eq!(cfg.one_way(1), Cycle::new(3));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        NocConfig::manticore().levels(0);
    }

    #[test]
    #[should_panic(expected = "radix")]
    fn bad_radix_panics() {
        let mut cfg = NocConfig::manticore();
        cfg.radix = 1;
        cfg.levels(4);
    }
}
