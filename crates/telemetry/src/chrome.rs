//! Chrome trace-event JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Each hardware [`Unit`] gets its own named track (`pid`/`tid` pair plus
//! metadata records); span events become `"B"`/`"E"` pairs and instants
//! become thread-scoped `"i"` events. Timestamps are raw simulator
//! cycles written as the `ts` field, so durations in the UI are
//! proportional to cycles (at the 1 GHz reference clock, 1 cycle = 1 ns).
//!
//! Output is deterministic: events sort stably by time and the builder
//! uses insertion-ordered JSON objects, so equal traces serialize to
//! byte-identical text — the property the determinism tests pin down.

use std::collections::BTreeSet;

use serde::Value;

use crate::event::{Mark, TraceEvent};
use crate::recorder::EventTrace;
use crate::Unit;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_owned())
}

fn process_name(pid: u64) -> &'static str {
    if pid == 2 {
        "sched"
    } else {
        "soc"
    }
}

/// Builds the Chrome trace-event JSON document for `trace` as a
/// [`Value`] tree (see [`chrome_trace_json`] for the serialized form).
pub fn chrome_trace_value(trace: &EventTrace) -> Value {
    let mut records: Vec<Value> = Vec::new();

    // One named track per unit that actually emitted events; BTreeSet
    // gives a stable track order.
    let units: BTreeSet<Unit> = trace.events().iter().map(|e| e.unit).collect();
    let pids: BTreeSet<u64> = units.iter().map(Unit::pid).collect();
    for pid in pids {
        records.push(obj(vec![
            ("name", str_value("process_name")),
            ("ph", str_value("M")),
            ("pid", Value::U64(pid)),
            ("args", obj(vec![("name", str_value(process_name(pid)))])),
        ]));
    }
    for unit in &units {
        records.push(obj(vec![
            ("name", str_value("thread_name")),
            ("ph", str_value("M")),
            ("pid", Value::U64(unit.pid())),
            ("tid", Value::U64(unit.tid())),
            ("args", obj(vec![("name", str_value(&unit.track_name()))])),
        ]));
    }

    // Stable sort by time: handlers may record a span begin whose start
    // lies after events recorded later, and B/E pairs on a track must be
    // time-ordered for the importer.
    let mut events: Vec<&TraceEvent> = trace.events().iter().collect();
    events.sort_by_key(|e| e.time);
    for event in events {
        let ph = match event.mark {
            Mark::Begin => "B",
            Mark::End => "E",
            Mark::Instant => "i",
        };
        let mut entry = vec![
            ("name", str_value(event.kind.name())),
            ("cat", str_value(process_name(event.unit.pid()))),
            ("ph", str_value(ph)),
            ("ts", Value::U64(event.time.as_u64())),
            ("pid", Value::U64(event.unit.pid())),
            ("tid", Value::U64(event.unit.tid())),
        ];
        if event.mark == Mark::Instant {
            entry.push(("s", str_value("t")));
        }
        let mut args = Vec::new();
        if event.span != 0 {
            args.push(("span", Value::U64(event.span)));
        }
        if event.arg != 0 {
            args.push(("arg", Value::U64(event.arg)));
        }
        // Job attribution from the concurrent-job SoC; omitted when
        // untagged so single-job traces export byte-identically.
        if event.job != 0 {
            args.push(("job", Value::U64(event.job)));
        }
        if !args.is_empty() {
            entry.push(("args", obj(args)));
        }
        records.push(obj(entry));
    }

    obj(vec![
        ("displayTimeUnit", str_value("ns")),
        ("traceEvents", Value::Array(records)),
    ])
}

/// Serializes `trace` as pretty-printed Chrome trace-event JSON.
pub fn chrome_trace_json(trace: &EventTrace) -> String {
    serde_json::to_string_pretty(&chrome_trace_value(trace))
        .expect("trace values contain no non-finite floats")
}

/// The synthetic `pid` profile-tree tracks export under (the cycle
/// exporter uses 1 for the SoC and 2 for the scheduler).
const PROFILE_PID: u64 = 3;

/// Builds a Chrome trace-event document for a wall-clock
/// [`ProfileReport`](mpsoc_sim::profile::ProfileReport) as complete
/// (`"X"`) events: each tree node becomes one slice whose duration is
/// its inclusive wall time, children nested inside their parent by
/// synthetic timestamps (sites aggregate many calls, so slice *offsets*
/// are schematic while widths are real nanoseconds).
pub fn profile_chrome_trace_value(report: &mpsoc_sim::profile::ProfileReport) -> Value {
    let mut records: Vec<Value> = vec![
        obj(vec![
            ("name", str_value("process_name")),
            ("ph", str_value("M")),
            ("pid", Value::U64(PROFILE_PID)),
            ("args", obj(vec![("name", str_value("profiler"))])),
        ]),
        obj(vec![
            ("name", str_value("thread_name")),
            ("ph", str_value("M")),
            ("pid", Value::U64(PROFILE_PID)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("name", str_value("wall-clock tree"))])),
        ]),
    ];
    // Pre-order emission yields non-decreasing `ts`: a child starts at
    // its parent's cursor, and each sibling starts where the previous
    // sibling's subtree ended.
    fn emit(nodes: &[mpsoc_sim::profile::ProfileNode], start: u64, records: &mut Vec<Value>) {
        let mut cursor = start;
        for node in nodes {
            records.push(obj(vec![
                ("name", str_value(&node.name)),
                ("cat", str_value("profile")),
                ("ph", str_value("X")),
                ("ts", Value::U64(cursor)),
                ("dur", Value::U64(node.total_ns)),
                ("pid", Value::U64(PROFILE_PID)),
                ("tid", Value::U64(0)),
                (
                    "args",
                    obj(vec![
                        ("calls", Value::U64(node.calls)),
                        ("self_ns", Value::U64(node.self_ns)),
                    ]),
                ),
            ]));
            emit(&node.children, cursor, records);
            cursor += node.total_ns;
        }
    }
    emit(&report.roots, 0, &mut records);
    obj(vec![
        ("displayTimeUnit", str_value("ns")),
        ("traceEvents", Value::Array(records)),
    ])
}

/// Serializes a profile report as pretty-printed Chrome trace JSON.
pub fn profile_chrome_trace_json(report: &mpsoc_sim::profile::ProfileReport) -> String {
    serde_json::to_string_pretty(&profile_chrome_trace_value(report))
        .expect("profile values contain no non-finite floats")
}

/// What [`validate_chrome_trace`] found in a well-formed trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Non-metadata events in the document.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks seen.
    pub tracks: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num(value: &Value) -> Option<u64> {
    match value {
        Value::U64(u) => Some(*u),
        Value::I64(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Schema-checks Chrome trace-event JSON text: a `traceEvents` array
/// whose entries carry `name`/`ph`, numeric `ts`/`pid`/`tid` on
/// non-metadata events, known phase codes, time-ordered events and
/// balanced `B`/`E` pairs per track.
///
/// # Errors
///
/// Returns a description of the first schema violation (or parse error).
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Value::Object(entries) = &root else {
        return Err("top level is not an object".to_owned());
    };
    let Some(Value::Array(records)) = field(entries, "traceEvents") else {
        return Err("missing `traceEvents` array".to_owned());
    };

    let mut events = 0usize;
    let mut spans = 0usize;
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut open: Vec<((u64, u64), u64)> = Vec::new(); // (track, span)
    let mut last_ts = 0u64;
    for (i, record) in records.iter().enumerate() {
        let Value::Object(entry) = record else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let Some(Value::Str(_)) = field(entry, "name") else {
            return Err(format!("traceEvents[{i}] has no string `name`"));
        };
        let Some(Value::Str(ph)) = field(entry, "ph") else {
            return Err(format!("traceEvents[{i}] has no string `ph`"));
        };
        match ph.as_str() {
            "M" => continue,
            "B" | "E" | "i" | "X" => {}
            other => return Err(format!("traceEvents[{i}] has unknown phase `{other}`")),
        }
        let ts = field(entry, "ts")
            .and_then(num)
            .ok_or_else(|| format!("traceEvents[{i}] has no numeric `ts`"))?;
        let pid = field(entry, "pid")
            .and_then(num)
            .ok_or_else(|| format!("traceEvents[{i}] has no numeric `pid`"))?;
        let tid = field(entry, "tid")
            .and_then(num)
            .ok_or_else(|| format!("traceEvents[{i}] has no numeric `tid`"))?;
        if ts < last_ts {
            return Err(format!(
                "traceEvents[{i}] goes back in time ({ts} < {last_ts})"
            ));
        }
        last_ts = ts;
        tracks.insert((pid, tid));
        events += 1;
        let span = field(entry, "args")
            .and_then(|args| match args {
                Value::Object(inner) => field(inner, "span").and_then(num),
                _ => None,
            })
            .unwrap_or(0);
        match ph.as_str() {
            "B" => open.push(((pid, tid), span)),
            "E" => {
                let Some(at) = open
                    .iter()
                    .rposition(|&(t, s)| t == (pid, tid) && s == span)
                else {
                    return Err(format!(
                        "traceEvents[{i}] closes span {span} on ({pid},{tid}) that is not open"
                    ));
                };
                open.remove(at);
                spans += 1;
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        return Err(format!("{} span(s) never closed: {open:?}", open.len()));
    }
    Ok(ChromeTraceSummary {
        events,
        tracks: tracks.len(),
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use mpsoc_sim::Cycle;

    fn sample_trace() -> EventTrace {
        let mut t = EventTrace::enabled(64);
        t.instant(Cycle::new(50), Unit::Host, EventKind::DispatchStart, 0);
        t.instant(Cycle::new(90), Unit::Cluster(0), EventKind::DispatchEnd, 0);
        let dma = t.begin(Cycle::new(95), Unit::ClusterDma(0), EventKind::DmaIn);
        t.end(Cycle::new(300), Unit::ClusterDma(0), EventKind::DmaIn, dma);
        let cmp = t.begin(Cycle::new(300), Unit::ClusterCores(0), EventKind::Compute);
        t.end(
            Cycle::new(700),
            Unit::ClusterCores(0),
            EventKind::Compute,
            cmp,
        );
        t.instant(
            Cycle::new(710),
            Unit::CreditUnit,
            EventKind::CreditReturn,
            1,
        );
        t
    }

    #[test]
    fn export_validates_and_counts() {
        let json = chrome_trace_json(&sample_trace());
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.events, 7);
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.tracks, 5);
        assert!(json.contains("\"displayTimeUnit\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"cluster0.dma\""));
    }

    #[test]
    fn job_tags_export_only_when_set() {
        let untagged = chrome_trace_json(&sample_trace());
        assert!(!untagged.contains("\"job\""));

        let mut t = EventTrace::enabled(16);
        t.set_job(2);
        let s = t.begin(Cycle::new(10), Unit::ClusterDma(1), EventKind::DmaIn);
        t.end(Cycle::new(20), Unit::ClusterDma(1), EventKind::DmaIn, s);
        let tagged = chrome_trace_json(&t);
        assert!(tagged.contains("\"job\": 2"));
        validate_chrome_trace(&tagged).expect("tagged trace stays schema-valid");
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample_trace());
        let b = chrome_trace_json(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_order_recording_still_exports_sorted() {
        let mut t = EventTrace::enabled(16);
        // A DMA span whose begin lies in the future relative to the next
        // recorded instant — the exporter must sort by time.
        let s = t.begin(Cycle::new(200), Unit::ClusterDma(0), EventKind::DmaOut);
        t.instant(Cycle::new(100), Unit::Host, EventKind::BarrierPoll, 0);
        t.end(Cycle::new(240), Unit::ClusterDma(0), EventKind::DmaOut, s);
        let json = chrome_trace_json(&t);
        validate_chrome_trace(&json).expect("sorted output validates");
    }

    #[test]
    fn profile_export_nests_and_validates() {
        use mpsoc_sim::profile::{ProfileNode, ProfileReport};
        let report = ProfileReport {
            roots: vec![ProfileNode {
                name: "run".into(),
                calls: 2,
                total_ns: 1000,
                self_ns: 400,
                children: vec![
                    ProfileNode {
                        name: "dispatch".into(),
                        calls: 8,
                        total_ns: 350,
                        self_ns: 350,
                        children: vec![],
                    },
                    ProfileNode {
                        name: "retire".into(),
                        calls: 8,
                        total_ns: 250,
                        self_ns: 250,
                        children: vec![],
                    },
                ],
            }],
        };
        let json = profile_chrome_trace_json(&report);
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.events, 3, "one X slice per tree node");
        assert!(json.contains("\"dur\": 1000"));
        assert!(json.contains("\"calls\": 8"));
        // The second child starts where the first ended, inside the parent.
        assert!(json.contains("\"ts\": 350"));
        assert_eq!(json, profile_chrome_trace_json(&report), "deterministic");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{}]}").is_err());
        let missing_ts = r#"{"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "tid": 1}]}"#;
        assert!(validate_chrome_trace(missing_ts)
            .unwrap_err()
            .contains("ts"));
        let unbalanced = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "ts": 1, "pid": 1, "tid": 1, "args": {"span": 5}}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("never closed"));
        let backwards = r#"{"traceEvents": [
            {"name": "a", "ph": "i", "ts": 10, "pid": 1, "tid": 1, "s": "t"},
            {"name": "b", "ph": "i", "ts": 5, "pid": 1, "tid": 1, "s": "t"}
        ]}"#;
        assert!(validate_chrome_trace(backwards)
            .unwrap_err()
            .contains("back in time"));
    }
}
