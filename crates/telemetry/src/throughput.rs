//! Simulated-cycles-per-wall-second accounting: the simulator's own
//! headline speed metric.
//!
//! A cycle-accurate simulator's performance is the ratio between the
//! time it models and the time it takes: *simulated cycles per wall
//! second*. The [`ThroughputMeter`] pairs those two domains per named
//! component (a backend, a subsystem, a study cell) without ever letting
//! wall time leak back into the cycle domain — the meter is observation
//! only, so metered runs stay byte-identical to unmetered ones.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use mpsoc_telemetry::throughput::ThroughputMeter;
//!
//! let mut meter = ThroughputMeter::new();
//! meter.record("cosim", 2_000_000, Duration::from_millis(100));
//! meter.record("cosim", 1_000_000, Duration::from_millis(50));
//! let rows = meter.report();
//! assert_eq!(rows[0].sim_cycles, 3_000_000);
//! assert!((rows[0].cycles_per_wall_second - 2.0e7).abs() < 1.0e3);
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// One component's throughput over everything recorded for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Component name (sorted in [`ThroughputMeter::report`] output).
    pub component: String,
    /// Total simulated cycles attributed to the component.
    pub sim_cycles: u64,
    /// Total wall-clock seconds spent producing them.
    pub wall_seconds: f64,
    /// `sim_cycles / wall_seconds` (0 when no wall time was recorded).
    pub cycles_per_wall_second: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    sim_cycles: u64,
    wall: Duration,
}

/// Accumulates `(simulated cycles, wall time)` pairs per component.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    cells: BTreeMap<String, Cell>,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Adds `sim_cycles` simulated in `wall` to `component`'s account.
    pub fn record(&mut self, component: &str, sim_cycles: u64, wall: Duration) {
        let cell = self.cells.entry(component.to_owned()).or_default();
        cell.sim_cycles += sim_cycles;
        cell.wall += wall;
    }

    /// Runs `f`, attributing its wall time and returned cycle count to
    /// `component`; yields the closure's payload.
    pub fn measure<T>(&mut self, component: &str, f: impl FnOnce() -> (u64, T)) -> T {
        let start = std::time::Instant::now();
        let (cycles, value) = f();
        self.record(component, cycles, start.elapsed());
        value
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Per-component rows, name-sorted (deterministic shape; the
    /// wall-clock figures belong in `BENCH_*` side artifacts only).
    pub fn report(&self) -> Vec<ThroughputRow> {
        self.cells
            .iter()
            .map(|(component, cell)| {
                let wall_seconds = cell.wall.as_secs_f64();
                ThroughputRow {
                    component: component.clone(),
                    sim_cycles: cell.sim_cycles,
                    wall_seconds,
                    cycles_per_wall_second: if wall_seconds > 0.0 {
                        cell.sim_cycles as f64 / wall_seconds
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component_and_sorts() {
        let mut m = ThroughputMeter::new();
        m.record("b", 100, Duration::from_secs(1));
        m.record("a", 50, Duration::from_secs(2));
        m.record("b", 300, Duration::from_secs(1));
        let rows = m.report();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].component, "a");
        assert_eq!(rows[1].sim_cycles, 400);
        assert_eq!(rows[1].cycles_per_wall_second, 200.0);
    }

    #[test]
    fn zero_wall_time_reports_zero_rate_not_nan() {
        let mut m = ThroughputMeter::new();
        m.record("instant", 500, Duration::ZERO);
        let rows = m.report();
        assert_eq!(rows[0].cycles_per_wall_second, 0.0);
    }

    #[test]
    fn measure_attributes_closure_cycles() {
        let mut m = ThroughputMeter::new();
        let out = m.measure("cell", || (1234, "payload"));
        assert_eq!(out, "payload");
        let rows = m.report();
        assert_eq!(rows[0].sim_cycles, 1234);
        assert!(rows[0].wall_seconds >= 0.0);
    }

    #[test]
    fn rows_round_trip_through_serde() {
        let mut m = ThroughputMeter::new();
        m.record("x", 10, Duration::from_millis(5));
        let rows = m.report();
        let json = serde_json::to_string(&rows).expect("serialize");
        let back: Vec<ThroughputRow> = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, rows);
    }
}
