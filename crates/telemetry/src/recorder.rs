//! The bounded typed-event collector with span bookkeeping.

use std::collections::VecDeque;

use mpsoc_sim::Cycle;
use serde::{Serialize, Value};

use crate::event::{EventKind, Mark, TraceEvent};
use crate::Unit;

/// A bounded ring buffer of [`TraceEvent`]s plus a deterministic span-ID
/// allocator.
///
/// Like [`mpsoc_sim::trace::Tracer`], the disabled path is a single
/// branch and every hot-path helper returns immediately, so hardware
/// models can call these hooks unconditionally. Span IDs start at 1 and
/// increase in allocation order (0 means "no span"), so traces of equal
/// runs are identical event-for-event.
///
/// # Example
///
/// ```
/// use mpsoc_sim::Cycle;
/// use mpsoc_telemetry::{EventKind, EventTrace, Mark, Unit};
///
/// let mut t = EventTrace::enabled(64);
/// let span = t.begin(Cycle::new(3), Unit::ClusterCores(0), EventKind::Compute);
/// t.instant(Cycle::new(5), Unit::CreditUnit, EventKind::CreditReturn, 1);
/// t.end(Cycle::new(9), Unit::ClusterCores(0), EventKind::Compute, span);
/// assert_eq!(t.events().len(), 3);
/// assert_eq!(t.events()[0].mark, Mark::Begin);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    next_span: u64,
    current_job: u64,
}

impl EventTrace {
    /// Creates a trace that keeps the most recent `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        EventTrace {
            enabled: true,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            next_span: 1,
            current_job: 0,
        }
    }

    /// Creates a no-op trace.
    pub fn disabled() -> Self {
        EventTrace::default()
    }

    /// `true` when events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the ambient job ID stamped onto subsequently recorded events
    /// (via [`EventTrace::begin`], [`EventTrace::end`] and
    /// [`EventTrace::instant`]). Zero — the default — means "untagged";
    /// a concurrent-job SoC sets this before delivering each event to
    /// attribute the resulting trace records to the owning tenant.
    pub fn set_job(&mut self, job: u64) {
        self.current_job = job;
    }

    /// The ambient job ID in effect (zero when untagged).
    pub fn current_job(&self) -> u64 {
        self.current_job
    }

    /// Records a fully-formed event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Opens a span of `kind` on `unit` at `time`; returns the span ID to
    /// pass to [`EventTrace::end`]. Returns 0 without recording when
    /// disabled.
    pub fn begin(&mut self, time: Cycle, unit: Unit, kind: EventKind) -> u64 {
        if !self.enabled {
            return 0;
        }
        let span = self.next_span;
        self.next_span += 1;
        self.record(TraceEvent {
            time,
            unit,
            kind,
            mark: Mark::Begin,
            span,
            arg: 0,
            job: self.current_job,
        });
        span
    }

    /// Closes span `span` of `kind` on `unit` at `time` (no-op when
    /// disabled or `span` is 0).
    pub fn end(&mut self, time: Cycle, unit: Unit, kind: EventKind, span: u64) {
        if !self.enabled || span == 0 {
            return;
        }
        self.record(TraceEvent {
            time,
            unit,
            kind,
            mark: Mark::End,
            span,
            arg: 0,
            job: self.current_job,
        });
    }

    /// Records an instantaneous event with payload `arg` (no-op when
    /// disabled).
    pub fn instant(&mut self, time: Cycle, unit: Unit, kind: EventKind, arg: u64) {
        if !self.enabled {
            return;
        }
        self.record(TraceEvent {
            time,
            unit,
            kind,
            mark: Mark::Instant,
            span: 0,
            arg,
            job: self.current_job,
        });
    }

    /// The collected events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events discarded because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all collected events and resets the span allocator, so a
    /// cleared trace re-records identically.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.next_span = if self.enabled { 1 } else { 0 };
        self.current_job = 0;
    }

    /// Renders the events as a multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

// Hand-written: the ring buffer flattens to an oldest-first array.
impl Serialize for EventTrace {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_owned(), Value::Bool(self.enabled)),
            ("capacity".to_owned(), Value::U64(self.capacity as u64)),
            ("dropped".to_owned(), Value::U64(self.dropped)),
            (
                "events".to_owned(),
                Value::Array(self.events.iter().map(Serialize::serialize).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert_and_allocates_no_spans() {
        let mut t = EventTrace::disabled();
        let span = t.begin(Cycle::new(1), Unit::Host, EventKind::Wake);
        assert_eq!(span, 0);
        t.end(Cycle::new(2), Unit::Host, EventKind::Wake, span);
        t.instant(Cycle::new(3), Unit::Host, EventKind::Irq, 0);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn span_ids_are_sequential_from_one() {
        let mut t = EventTrace::enabled(16);
        let a = t.begin(Cycle::new(1), Unit::Cluster(0), EventKind::Wake);
        let b = t.begin(Cycle::new(2), Unit::Cluster(1), EventKind::Wake);
        assert_eq!((a, b), (1, 2));
        t.end(Cycle::new(5), Unit::Cluster(0), EventKind::Wake, a);
        let marks: Vec<Mark> = t.events().iter().map(|e| e.mark).collect();
        assert_eq!(marks, vec![Mark::Begin, Mark::Begin, Mark::End]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = EventTrace::enabled(2);
        for i in 0..5u64 {
            t.instant(Cycle::new(i), Unit::Noc, EventKind::NocStall, i);
        }
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].arg, 3);
        assert_eq!(t.events()[1].arg, 4);
        assert!(t.render().contains("3 earlier events dropped"));
    }

    #[test]
    fn clear_resets_span_allocator_for_reproducible_reruns() {
        let mut t = EventTrace::enabled(16);
        let first = t.begin(Cycle::new(1), Unit::Host, EventKind::Wake);
        t.clear();
        let again = t.begin(Cycle::new(1), Unit::Host, EventKind::Wake);
        assert_eq!(first, again);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ambient_job_id_tags_events_until_changed() {
        let mut t = EventTrace::enabled(16);
        t.instant(Cycle::new(1), Unit::Host, EventKind::Irq, 0);
        t.set_job(7);
        let span = t.begin(Cycle::new(2), Unit::Cluster(0), EventKind::Wake);
        t.end(Cycle::new(3), Unit::Cluster(0), EventKind::Wake, span);
        t.set_job(0);
        t.instant(Cycle::new(4), Unit::Host, EventKind::Irq, 0);
        let jobs: Vec<u64> = t.events().iter().map(|e| e.job).collect();
        assert_eq!(jobs, vec![0, 7, 7, 0]);
        t.clear();
        assert_eq!(t.current_job(), 0, "clear resets the ambient job");
    }

    #[test]
    fn serializes_events_and_drop_count() {
        let mut t = EventTrace::enabled(1);
        t.instant(Cycle::new(1), Unit::Host, EventKind::Irq, 0);
        t.instant(Cycle::new(2), Unit::CreditUnit, EventKind::CreditReturn, 9);
        let json = serde_json::to_string(&t).expect("serialize");
        assert!(json.contains("\"dropped\":1"));
        assert!(json.contains("CreditReturn"));
        assert!(!json.contains("Irq"));
    }
}
