//! Structured telemetry for the MPSoC simulator: typed trace events with
//! span semantics, per-offload phase attribution against the paper's
//! Eq. 1 terms, and a Chrome trace-event JSON exporter loadable in
//! Perfetto or `chrome://tracing`.
//!
//! The free-form [`mpsoc_sim::trace::Tracer`] remains for human-readable
//! logs; this crate is the machine-readable layer on top of the same
//! hardware models. An [`EventTrace`] collects [`TraceEvent`]s — each
//! carrying a hardware [`Unit`], an [`EventKind`], a [`Mark`]
//! (begin/end/instant) and a span ID — with the same single-branch
//! zero-cost-when-disabled discipline as `Tracer`.
//!
//! # Example
//!
//! ```
//! use mpsoc_sim::Cycle;
//! use mpsoc_telemetry::{EventKind, EventTrace, Unit};
//!
//! let mut trace = EventTrace::enabled(1024);
//! let span = trace.begin(Cycle::new(10), Unit::ClusterDma(0), EventKind::DmaIn);
//! trace.end(Cycle::new(74), Unit::ClusterDma(0), EventKind::DmaIn, span);
//! let json = mpsoc_telemetry::chrome_trace_json(&trace);
//! assert!(mpsoc_telemetry::validate_chrome_trace(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod fleet;
pub mod phase;
pub mod recorder;
pub mod throughput;

/// The wall-clock scoped self-profiler (RAII guards, per-site call
/// tree, collapsed-stack export). Lives in `mpsoc-sim` so the lowest
/// layers can host profiling sites without a dependency cycle;
/// re-exported here because this crate owns its export surface
/// ([`chrome::profile_chrome_trace_json`] and friends).
pub use mpsoc_sim::profile;

pub use chrome::{
    chrome_trace_json, profile_chrome_trace_json, profile_chrome_trace_value,
    validate_chrome_trace, ChromeTraceSummary,
};
pub use event::{EventKind, Mark, TraceEvent, Unit};
pub use fleet::{aggregate_registries, merge_histograms, FleetView};
pub use mpsoc_sim::profile::{ProfileNode, ProfileReport, SiteTotal};
pub use mpsoc_sim::stats::{Histogram, StatsRegistry, Summary};
pub use phase::{ModelTerms, PhaseBreakdown, ResidualAudit, TermResidual};
pub use recorder::EventTrace;
pub use throughput::{ThroughputMeter, ThroughputRow};
