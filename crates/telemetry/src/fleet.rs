//! Fleet-level statistics aggregation: merging per-shard histograms and
//! stat registries into global views.
//!
//! A sharded serving front-end runs many independent SoC instances, each
//! with its own [`StatsRegistry`] and latency [`Histogram`]s. Global
//! SLOs (fleet p50/p99) need those merged — and because the histograms
//! are log-bucketed with bounded relative error, merging bucket counts
//! is *exact*: the merged histogram equals the histogram that would have
//! been recorded by one central observer.
//!
//! Two aggregation shapes are provided:
//!
//! - [`merge_histograms`] — fold any number of per-shard histograms into
//!   one (for a single series, e.g. completion latency).
//! - [`aggregate_registries`] — fold whole registries: counters add,
//!   summaries and histograms merge. With [`FleetView::with_shards`],
//!   the per-shard registries are additionally kept under
//!   `shard<i>.`-prefixed names next to the merged globals, so one
//!   report can answer both "what is fleet p99" and "which shard is the
//!   straggler".

use mpsoc_sim::stats::{Histogram, StatsRegistry};

/// Merges an iterator of histograms into one.
///
/// The result is identical to recording every underlying sample into a
/// single histogram (bucket counts add; min/max/count/sum combine), so
/// fleet quantiles carry the same 1/16 relative-error bound as per-shard
/// ones.
///
/// # Example
///
/// ```
/// use mpsoc_sim::stats::Histogram;
/// use mpsoc_telemetry::fleet::merge_histograms;
///
/// let mut a = Histogram::new();
/// let mut b = Histogram::new();
/// (1..=50u64).for_each(|v| a.record(v));
/// (51..=100u64).for_each(|v| b.record(v));
/// let global = merge_histograms([&a, &b]);
/// assert_eq!(global.count(), 100);
/// ```
pub fn merge_histograms<'a, I>(shards: I) -> Histogram
where
    I: IntoIterator<Item = &'a Histogram>,
{
    let mut merged = Histogram::new();
    for h in shards {
        merged.merge(h);
    }
    merged
}

/// Merges an iterator of registries into one: counters add, summaries
/// and histograms merge (see [`StatsRegistry::merge`]).
pub fn aggregate_registries<'a, I>(shards: I) -> StatsRegistry
where
    I: IntoIterator<Item = &'a StatsRegistry>,
{
    let mut merged = StatsRegistry::new();
    for r in shards {
        merged.merge(r);
    }
    merged
}

/// A fleet-wide statistics view: the merged global registry, optionally
/// with every shard's registry preserved under a `shard<i>.` prefix.
#[derive(Debug, Clone, Default)]
pub struct FleetView {
    global: StatsRegistry,
}

impl FleetView {
    /// The merged-globals-only view of `shards`.
    pub fn new<'a, I>(shards: I) -> Self
    where
        I: IntoIterator<Item = &'a StatsRegistry>,
    {
        FleetView {
            global: aggregate_registries(shards),
        }
    }

    /// A view that keeps per-shard breakdowns: every counter, summary
    /// and histogram of shard `i` reappears under the name
    /// `shard<i>.<name>`, next to the merged un-prefixed globals.
    pub fn with_shards<'a, I>(shards: I) -> Self
    where
        I: IntoIterator<Item = &'a StatsRegistry>,
    {
        let mut global = StatsRegistry::new();
        for (i, shard) in shards.into_iter().enumerate() {
            global.merge(shard);
            for (name, value) in shard.counters() {
                global.add(&format!("shard{i}.{name}"), value);
            }
            for (name, summary) in shard.summaries() {
                global.merge_summary_named(&format!("shard{i}.{name}"), summary);
            }
            for (name, histogram) in shard.histograms() {
                global.merge_histogram_named(&format!("shard{i}.{name}"), histogram);
            }
        }
        FleetView { global }
    }

    /// The aggregated registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.global
    }

    /// Fleet-wide quantile of the histogram series `name` (un-prefixed:
    /// the merged global), `None` when the series is empty or absent.
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        let h = self.global.histogram(name);
        h.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_histogram_equals_central_recording() {
        let mut shards = vec![Histogram::new(); 4];
        let mut central = Histogram::new();
        for v in 0..4000u64 {
            shards[(v % 4) as usize].record(v * 3 + 1);
            central.record(v * 3 + 1);
        }
        let merged = merge_histograms(shards.iter());
        assert_eq!(merged, central);
        assert_eq!(merged.p50(), central.p50());
        assert_eq!(merged.p99(), central.p99());
    }

    #[test]
    fn merging_no_shards_is_empty() {
        assert_eq!(merge_histograms([]).count(), 0);
        assert_eq!(aggregate_registries([]).counters().count(), 0);
    }

    #[test]
    fn merged_quantiles_see_the_straggler_shard() {
        // Three fast shards and one slow one: the fleet p99 must come
        // from the slow shard's tail even though 3/4 of samples are fast.
        let mut fast = Histogram::new();
        (0..300).for_each(|_| fast.record(10));
        let mut slow = Histogram::new();
        (0..100).for_each(|_| slow.record(10_000));
        let global = merge_histograms([&fast, &fast, &fast, &slow]);
        assert_eq!(global.count(), 1000);
        assert!(
            global.p99().unwrap() >= 9_000,
            "tail must survive the merge"
        );
        assert_eq!(global.p50(), Some(10));
    }

    #[test]
    fn registries_aggregate_counters_and_series() {
        let mut a = StatsRegistry::new();
        a.add("serve.accepted", 10);
        a.observe("serve.latency", 100.0);
        let mut b = StatsRegistry::new();
        b.add("serve.accepted", 5);
        b.add("serve.rejected", 2);
        b.observe("serve.latency", 300.0);
        let merged = aggregate_registries([&a, &b]);
        assert_eq!(merged.counter("serve.accepted"), 15);
        assert_eq!(merged.counter("serve.rejected"), 2);
        assert_eq!(merged.summary("serve.latency").count(), 2);
        assert_eq!(merged.histogram("serve.latency").count(), 2);
    }

    #[test]
    fn fleet_view_keeps_per_shard_breakdowns() {
        let mut a = StatsRegistry::new();
        a.add("jobs", 3);
        a.observe("latency", 50.0);
        let mut b = StatsRegistry::new();
        b.add("jobs", 7);
        b.observe("latency", 5000.0);
        let view = FleetView::with_shards([&a, &b]);
        assert_eq!(view.stats().counter("jobs"), 10);
        assert_eq!(view.stats().counter("shard0.jobs"), 3);
        assert_eq!(view.stats().counter("shard1.jobs"), 7);
        assert_eq!(view.stats().histogram("latency").count(), 2);
        assert_eq!(view.stats().histogram("shard1.latency").count(), 1);
        assert_eq!(
            view.quantile("latency", 0.99).unwrap(),
            view.stats().histogram("latency").p99().unwrap()
        );
        assert_eq!(view.quantile("missing", 0.5), None);
    }
}
