//! The typed event vocabulary: hardware units, event kinds and marks.
//!
//! Every event is `Copy` and allocation-free so the recording hot path
//! costs one branch plus a ring-buffer push; unit and kind names are
//! materialized only at export time.

use std::fmt;

use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// A hardware (or scheduler) unit that events are attributed to; each
/// unit becomes one track in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Unit {
    /// The host core issuing offloads.
    Host,
    /// The system interconnect.
    Noc,
    /// Main (HBM) memory and its atomic unit.
    MainMem,
    /// The hardware credit counter used for offload completion.
    CreditUnit,
    /// Control state of cluster `0`-based index (wake-up, descriptor fetch).
    Cluster(u32),
    /// The DMA engine of a cluster.
    ClusterDma(u32),
    /// The worker cores of a cluster.
    ClusterCores(u32),
    /// The multi-tenant scheduler's serial host server.
    SchedHost,
    /// A carved cluster partition, anchored at its lowest cluster index.
    Partition(u32),
}

impl Unit {
    /// A stable, human-readable track name (`"cluster3.dma"` etc.).
    pub fn track_name(&self) -> String {
        match self {
            Unit::Host => "host".to_owned(),
            Unit::Noc => "noc".to_owned(),
            Unit::MainMem => "main_mem".to_owned(),
            Unit::CreditUnit => "credit".to_owned(),
            Unit::Cluster(c) => format!("cluster{c}"),
            Unit::ClusterDma(c) => format!("cluster{c}.dma"),
            Unit::ClusterCores(c) => format!("cluster{c}.cores"),
            Unit::SchedHost => "sched.host".to_owned(),
            Unit::Partition(c) => format!("partition{c}"),
        }
    }

    /// Process ID for timeline export: SoC units and scheduler units are
    /// separate process groups.
    pub fn pid(&self) -> u64 {
        match self {
            Unit::SchedHost | Unit::Partition(_) => 2,
            _ => 1,
        }
    }

    /// A stable per-unit thread ID for timeline export: one thread per
    /// track, clusters interleave three tracks each.
    pub fn tid(&self) -> u64 {
        match self {
            Unit::Host => 1,
            Unit::Noc => 2,
            Unit::MainMem => 3,
            Unit::CreditUnit => 4,
            Unit::Cluster(c) => 10 + 3 * u64::from(*c),
            Unit::ClusterDma(c) => 11 + 3 * u64::from(*c),
            Unit::ClusterCores(c) => 12 + 3 * u64::from(*c),
            Unit::SchedHost => 1,
            Unit::Partition(c) => 10 + u64::from(*c),
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.track_name())
    }
}

/// What happened. Span kinds come in begin/end pairs (see [`Mark`]);
/// the rest are instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// Host issued a dispatch store into the NoC (instant, host track).
    DispatchStart,
    /// Dispatch store delivered to the cluster mailbox (instant).
    DispatchEnd,
    /// Cluster wake-up from doorbell to running (span).
    Wake,
    /// Job-descriptor fetch from main memory (span).
    DescFetch,
    /// DMA transfer of operands into the TCDM (span).
    DmaIn,
    /// Cluster cores computing a stage (span).
    Compute,
    /// DMA transfer of results back to main memory (span).
    DmaOut,
    /// Host armed the credit counter (instant).
    CreditArm,
    /// A completion credit arrived at the credit unit (instant).
    CreditReturn,
    /// Completion interrupt delivered to the host (instant).
    Irq,
    /// A cluster's barrier AMO arrived at main memory (instant).
    BarrierArrive,
    /// Host polled the barrier word; `arg` is the value read (instant).
    BarrierPoll,
    /// A NoC port grant was delayed by contention; `arg` is the stall
    /// in cycles (instant).
    NocStall,
    /// TCDM bank conflicts detected while a stage computed; `arg` is the
    /// conflict count (instant).
    TcdmConflict,
    /// An HBM bandwidth request queued behind other traffic; `arg` is
    /// the queueing delay in cycles (instant).
    HbmQueue,
    /// A job entered the multi-tenant scheduler (instant, `arg` = job id).
    JobArrive,
    /// Time a job spent queued before placement (span, `arg` = job id).
    QueueWait,
    /// A job's offload occupied its partition (span, `arg` = job id).
    Offload,
    /// A job ran on the scheduler's host server (span, `arg` = job id).
    HostRun,
    /// Admission rejected a job (instant, `arg` = job id).
    Reject,
    /// Fault injection struck a hardware point (instant; `arg` encodes
    /// the fault kind, the `job` tag names the victim).
    FaultInject,
    /// The host watchdog expired waiting for a completion (instant,
    /// `arg` = the cycle budget that was exceeded).
    WatchdogFire,
    /// The runtime re-dispatched a faulted job (instant, `arg` = the
    /// retry attempt number).
    Redispatch,
    /// A cluster was quarantined after repeated fault implication
    /// (instant, `arg` = the cluster index).
    Quarantine,
}

impl EventKind {
    /// A stable, human-readable name used in timeline export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DispatchStart => "dispatch_start",
            EventKind::DispatchEnd => "dispatch_end",
            EventKind::Wake => "wake",
            EventKind::DescFetch => "desc_fetch",
            EventKind::DmaIn => "dma_in",
            EventKind::Compute => "compute",
            EventKind::DmaOut => "dma_out",
            EventKind::CreditArm => "credit_arm",
            EventKind::CreditReturn => "credit_return",
            EventKind::Irq => "irq",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::BarrierPoll => "barrier_poll",
            EventKind::NocStall => "noc_stall",
            EventKind::TcdmConflict => "tcdm_conflict",
            EventKind::HbmQueue => "hbm_queue",
            EventKind::JobArrive => "job_arrive",
            EventKind::QueueWait => "queue_wait",
            EventKind::Offload => "offload",
            EventKind::HostRun => "host_run",
            EventKind::Reject => "reject",
            EventKind::FaultInject => "fault_inject",
            EventKind::WatchdogFire => "watchdog_fire",
            EventKind::Redispatch => "redispatch",
            EventKind::Quarantine => "quarantine",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mark {
    /// Opens the span identified by the event's `span` field.
    Begin,
    /// Closes the matching `Begin` with the same `span` ID.
    End,
    /// Instantaneous event; `span` is zero.
    Instant,
}

/// One typed trace event. `Copy`, no heap data: recording is a branch
/// plus a ring push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: Cycle,
    /// Unit the event belongs to (its timeline track).
    pub unit: Unit,
    /// What happened.
    pub kind: EventKind,
    /// Begin/end/instant.
    pub mark: Mark,
    /// Span ID pairing `Begin` with `End`; zero for instants.
    pub span: u64,
    /// Kind-specific payload (stall cycles, conflict count, job id, ...).
    pub arg: u64,
    /// The concurrent-SoC job the event is attributed to; zero means
    /// "untagged" (single-job runs and scheduler-side events), so legacy
    /// traces render and export byte-identically.
    pub job: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = match self.mark {
            Mark::Begin => "B",
            Mark::End => "E",
            Mark::Instant => "i",
        };
        write!(
            f,
            "[{:>10}] {:<16} {} {}",
            self.time.as_u64(),
            self.unit.track_name(),
            mark,
            self.kind.name()
        )?;
        if self.span != 0 {
            write!(f, " span={}", self.span)?;
        }
        if self.arg != 0 {
            write!(f, " arg={}", self.arg)?;
        }
        if self.job != 0 {
            write!(f, " job={}", self.job)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_names_are_stable_and_distinct() {
        let units = [
            Unit::Host,
            Unit::Noc,
            Unit::MainMem,
            Unit::CreditUnit,
            Unit::Cluster(3),
            Unit::ClusterDma(3),
            Unit::ClusterCores(3),
            Unit::SchedHost,
            Unit::Partition(2),
        ];
        let names: Vec<String> = units.iter().map(Unit::track_name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
        assert_eq!(Unit::ClusterDma(3).track_name(), "cluster3.dma");
    }

    #[test]
    fn tids_are_unique_within_a_pid() {
        let mut soc: Vec<(u64, u64)> = Vec::new();
        for c in 0..16u32 {
            soc.push((Unit::Cluster(c).pid(), Unit::Cluster(c).tid()));
            soc.push((Unit::ClusterDma(c).pid(), Unit::ClusterDma(c).tid()));
            soc.push((Unit::ClusterCores(c).pid(), Unit::ClusterCores(c).tid()));
        }
        for u in [Unit::Host, Unit::Noc, Unit::MainMem, Unit::CreditUnit] {
            soc.push((u.pid(), u.tid()));
        }
        let mut dedup = soc.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), soc.len());
    }

    #[test]
    fn display_is_greppable() {
        let e = TraceEvent {
            time: Cycle::new(42),
            unit: Unit::ClusterDma(1),
            kind: EventKind::DmaIn,
            mark: Mark::Begin,
            span: 7,
            arg: 0,
            job: 0,
        };
        let s = e.to_string();
        assert!(s.contains("cluster1.dma"));
        assert!(s.contains("dma_in"));
        assert!(s.contains("span=7"));
        assert!(!s.contains("job="), "untagged events omit the job field");

        let tagged = TraceEvent { job: 3, ..e };
        assert!(tagged.to_string().contains("job=3"));
    }
}
