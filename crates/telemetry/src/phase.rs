//! Phase attribution: folding an offload run into per-phase cycle counts
//! and auditing them against the paper's Eq. 1 terms.
//!
//! The offload pipeline is a chain of milestones — last dispatch store
//! delivered, last DMA-in finished, last compute finished, last DMA-out
//! finished, completion observed by the host. Attribution clamps the
//! milestones into non-decreasing order and takes consecutive
//! differences, so the five phases **always sum exactly** to the
//! end-to-end runtime: every cycle lands in exactly one phase, and a
//! phase whose milestone never occurred (e.g. no DMA-out in a load-only
//! job) gets zero cycles with the remainder attributed to the next
//! phase.

use mpsoc_sim::Cycle;
use serde::{Deserialize, Serialize};

use crate::event::{EventKind, Mark, TraceEvent};

/// Per-offload cycle attribution over the five pipeline phases.
///
/// Invariant: `dispatch + dma_in + compute + dma_out + sync` equals the
/// end-to-end runtime passed to the constructor (see [`PhaseBreakdown::total`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Cycles from offload start until the last dispatch store was
    /// delivered (host marshalling + doorbell propagation).
    pub dispatch: u64,
    /// Cycles until the last operand DMA into a TCDM finished.
    pub dma_in: u64,
    /// Cycles until the last cluster finished computing.
    pub compute: u64,
    /// Cycles until the last result DMA back to main memory finished.
    pub dma_out: u64,
    /// Remaining cycles: completion signalling (credits/barrier), host
    /// wake-up and result combination.
    pub sync: u64,
}

impl PhaseBreakdown {
    /// Attributes `total` end-to-end cycles over the phases given the
    /// four interior milestones (absolute times). Milestones are clamped
    /// into non-decreasing order and to `total`, so the phases sum
    /// exactly to `total`.
    pub fn from_milestones(
        dispatch_done: Cycle,
        dma_in_done: Cycle,
        compute_done: Cycle,
        dma_out_done: Cycle,
        total: Cycle,
    ) -> Self {
        let total = total.as_u64();
        let m1 = dispatch_done.as_u64().min(total);
        let m2 = dma_in_done.as_u64().clamp(m1, total);
        let m3 = compute_done.as_u64().clamp(m2, total);
        let m4 = dma_out_done.as_u64().clamp(m3, total);
        PhaseBreakdown {
            dispatch: m1,
            dma_in: m2 - m1,
            compute: m3 - m2,
            dma_out: m4 - m3,
            sync: total - m4,
        }
    }

    /// Folds a typed event trace into a breakdown: each milestone is the
    /// latest matching event (`DispatchEnd` instants; `End` marks of
    /// `DmaIn`/`Compute`/`DmaOut` spans). Agrees with
    /// [`PhaseBreakdown::from_milestones`] when the trace is complete.
    pub fn attribute<'a, I>(events: I, total: Cycle) -> Self
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let mut dispatch_done = Cycle::ZERO;
        let mut dma_in_done = Cycle::ZERO;
        let mut compute_done = Cycle::ZERO;
        let mut dma_out_done = Cycle::ZERO;
        for event in events {
            let slot = match (event.kind, event.mark) {
                (EventKind::DispatchEnd, Mark::Instant) => &mut dispatch_done,
                (EventKind::DmaIn, Mark::End) => &mut dma_in_done,
                (EventKind::Compute, Mark::End) => &mut compute_done,
                (EventKind::DmaOut, Mark::End) => &mut dma_out_done,
                _ => continue,
            };
            if event.time > *slot {
                *slot = event.time;
            }
        }
        PhaseBreakdown::from_milestones(
            dispatch_done,
            dma_in_done,
            compute_done,
            dma_out_done,
            total,
        )
    }

    /// Sum of all phases — equal to the end-to-end runtime by
    /// construction.
    pub fn total(&self) -> u64 {
        self.dispatch + self.dma_in + self.compute + self.dma_out + self.sync
    }

    /// Cycles not spent computing (the paper's "offload overhead").
    pub fn overhead(&self) -> u64 {
        self.total() - self.compute
    }
}

/// The three coefficients of the paper's Eq. 1 runtime model
/// `t̂ = c0 + c_mem·N + c_comp·N/M`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelTerms {
    /// Constant offload overhead (dispatch + completion), cycles.
    pub c0: f64,
    /// Per-element data-movement cost, cycles/element.
    pub c_mem: f64,
    /// Per-element compute cost at one cluster, cycles/element.
    pub c_comp: f64,
}

impl ModelTerms {
    /// The paper's calibrated DAXPY coefficients:
    /// `367 + N/4 + 2.6·N/(8·M)`.
    pub fn paper() -> Self {
        ModelTerms {
            c0: 367.0,
            c_mem: 0.25,
            c_comp: 2.6 / 8.0,
        }
    }

    /// Predicted end-to-end runtime for `n` elements on `m` clusters.
    pub fn predict(&self, n: u64, m: u64) -> f64 {
        let n = n as f64;
        self.c0 + self.c_mem * n + self.c_comp * n / (m.max(1) as f64)
    }
}

/// One row of the model-residual audit: a measured phase group against
/// its Eq. 1 term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermResidual {
    /// Which term (`"overhead"`, `"data_movement"`, `"compute"`).
    pub term: String,
    /// Phases folded into this term.
    pub phases: String,
    /// Measured cycles.
    pub measured: f64,
    /// Eq. 1 prediction for the term.
    pub predicted: f64,
    /// `measured - predicted`.
    pub residual: f64,
}

/// A per-term comparison of a measured [`PhaseBreakdown`] against Eq. 1:
/// `dispatch + sync` vs `c0`, `dma_in + dma_out` vs `c_mem·N`, and
/// `compute` vs `c_comp·N/M`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualAudit {
    /// Problem size the offload ran.
    pub n: u64,
    /// Number of clusters used.
    pub m: u64,
    /// Per-term rows, in Eq. 1 order.
    pub terms: Vec<TermResidual>,
    /// Measured end-to-end cycles (sum of all phases).
    pub measured_total: f64,
    /// Eq. 1 end-to-end prediction.
    pub predicted_total: f64,
}

impl ResidualAudit {
    /// Audits `phases` for a run of `n` elements on `m` clusters against
    /// `model`.
    pub fn new(phases: &PhaseBreakdown, n: u64, m: u64, model: &ModelTerms) -> Self {
        let m_eff = m.max(1);
        let rows = [
            (
                "overhead",
                "dispatch+sync",
                (phases.dispatch + phases.sync) as f64,
                model.c0,
            ),
            (
                "data_movement",
                "dma_in+dma_out",
                (phases.dma_in + phases.dma_out) as f64,
                model.c_mem * n as f64,
            ),
            (
                "compute",
                "compute",
                phases.compute as f64,
                model.c_comp * n as f64 / m_eff as f64,
            ),
        ];
        ResidualAudit {
            n,
            m,
            terms: rows
                .into_iter()
                .map(|(term, phases, measured, predicted)| TermResidual {
                    term: term.to_owned(),
                    phases: phases.to_owned(),
                    measured,
                    predicted,
                    residual: measured - predicted,
                })
                .collect(),
            measured_total: phases.total() as f64,
            predicted_total: model.predict(n, m),
        }
    }

    /// Renders the audit as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "residuals vs Eq.1 (N={}, M={}):\n  {:<14} {:<15} {:>10} {:>10} {:>10}\n",
            self.n, self.m, "term", "phases", "measured", "predicted", "residual"
        );
        for row in &self.terms {
            out.push_str(&format!(
                "  {:<14} {:<15} {:>10.0} {:>10.1} {:>+10.1}\n",
                row.term, row.phases, row.measured, row.predicted, row.residual
            ));
        }
        out.push_str(&format!(
            "  {:<14} {:<15} {:>10.0} {:>10.1} {:>+10.1}\n",
            "total",
            "",
            self.measured_total,
            self.predicted_total,
            self.measured_total - self.predicted_total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Unit;
    use crate::EventTrace;

    #[test]
    fn phases_sum_exactly_even_with_unordered_milestones() {
        let cases = [
            (100u64, 250u64, 900u64, 1000u64, 1100u64),
            (0, 0, 0, 0, 50),
            (80, 40, 30, 20, 100), // out of order: later milestones clamp
            (200, 300, 400, 500, 450),
        ];
        for (m1, m2, m3, m4, total) in cases {
            let p = PhaseBreakdown::from_milestones(
                Cycle::new(m1),
                Cycle::new(m2),
                Cycle::new(m3),
                Cycle::new(m4),
                Cycle::new(total),
            );
            assert_eq!(p.total(), total, "{p:?}");
        }
    }

    #[test]
    fn attribution_from_trace_matches_milestones() {
        let mut t = EventTrace::enabled(64);
        t.instant(Cycle::new(90), Unit::Cluster(0), EventKind::DispatchEnd, 0);
        t.instant(Cycle::new(110), Unit::Cluster(1), EventKind::DispatchEnd, 0);
        for (c, dma_in_end, compute_end, dma_out_end) in
            [(0u32, 300u64, 700u64, 860u64), (1, 350, 720, 900)]
        {
            let s = t.begin(Cycle::new(120), Unit::ClusterDma(c), EventKind::DmaIn);
            t.end(
                Cycle::new(dma_in_end),
                Unit::ClusterDma(c),
                EventKind::DmaIn,
                s,
            );
            let s = t.begin(
                Cycle::new(dma_in_end),
                Unit::ClusterCores(c),
                EventKind::Compute,
            );
            t.end(
                Cycle::new(compute_end),
                Unit::ClusterCores(c),
                EventKind::Compute,
                s,
            );
            let s = t.begin(
                Cycle::new(compute_end),
                Unit::ClusterDma(c),
                EventKind::DmaOut,
            );
            t.end(
                Cycle::new(dma_out_end),
                Unit::ClusterDma(c),
                EventKind::DmaOut,
                s,
            );
        }
        let total = Cycle::new(1000);
        let folded = PhaseBreakdown::attribute(t.events(), total);
        let direct = PhaseBreakdown::from_milestones(
            Cycle::new(110),
            Cycle::new(350),
            Cycle::new(720),
            Cycle::new(900),
            total,
        );
        assert_eq!(folded, direct);
        assert_eq!(folded.total(), 1000);
        assert_eq!(folded.sync, 100);
        assert_eq!(folded.overhead(), 1000 - folded.compute);
    }

    #[test]
    fn missing_phase_collapses_to_zero() {
        let t = EventTrace::enabled(4);
        let p = PhaseBreakdown::attribute(t.events(), Cycle::new(500));
        assert_eq!(
            p,
            PhaseBreakdown {
                dispatch: 0,
                dma_in: 0,
                compute: 0,
                dma_out: 0,
                sync: 500
            }
        );
    }

    #[test]
    fn paper_terms_reproduce_eq1() {
        let m = ModelTerms::paper();
        // 367 + 1024/4 + 2.6*1024/(8*8) = 367 + 256 + 41.6
        let t = m.predict(1024, 8);
        assert!((t - 664.6).abs() < 1e-9, "{t}");
    }

    #[test]
    fn residual_audit_terms_cover_all_phases() {
        let phases = PhaseBreakdown {
            dispatch: 120,
            dma_in: 150,
            compute: 40,
            dma_out: 140,
            sync: 250,
        };
        let audit = ResidualAudit::new(&phases, 1024, 8, &ModelTerms::paper());
        let measured_sum: f64 = audit.terms.iter().map(|t| t.measured).sum();
        assert_eq!(measured_sum, phases.total() as f64);
        assert_eq!(audit.measured_total, 700.0);
        let overhead = &audit.terms[0];
        assert_eq!(overhead.term, "overhead");
        assert_eq!(overhead.measured, 370.0);
        assert_eq!(overhead.predicted, 367.0);
        assert!((overhead.residual - 3.0).abs() < 1e-9);
        let table = audit.render();
        assert!(table.contains("data_movement"));
        assert!(table.contains("total"));
    }
}
