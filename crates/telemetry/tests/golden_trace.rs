//! Golden-file test: the Chrome trace exporter's exact output format is
//! pinned down byte-for-byte, so any unintended change to the schema
//! (field order, metadata records, phase codes, timestamps) fails here.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mpsoc-telemetry --test golden_trace
//! ```

use mpsoc_sim::Cycle;
use mpsoc_telemetry::{chrome_trace_json, validate_chrome_trace, EventKind, EventTrace, Unit};

/// A miniature but representative offload trace: host dispatch, one
/// cluster's wake/fetch/DMA/compute spans, a NoC stall and the credit
/// return — every mark kind and both pid groups.
fn golden_input() -> EventTrace {
    let mut t = EventTrace::enabled(64);
    t.instant(Cycle::new(12), Unit::Host, EventKind::DispatchStart, 0);
    t.instant(Cycle::new(14), Unit::Noc, EventKind::NocStall, 2);
    t.instant(Cycle::new(43), Unit::Cluster(0), EventKind::DispatchEnd, 0);
    let wake = t.begin(Cycle::new(43), Unit::Cluster(0), EventKind::Wake);
    t.end(Cycle::new(63), Unit::Cluster(0), EventKind::Wake, wake);
    let fetch = t.begin(Cycle::new(63), Unit::Cluster(0), EventKind::DescFetch);
    t.end(
        Cycle::new(110),
        Unit::Cluster(0),
        EventKind::DescFetch,
        fetch,
    );
    let dma = t.begin(Cycle::new(115), Unit::ClusterDma(0), EventKind::DmaIn);
    t.end(Cycle::new(320), Unit::ClusterDma(0), EventKind::DmaIn, dma);
    let comp = t.begin(Cycle::new(325), Unit::ClusterCores(0), EventKind::Compute);
    t.instant(
        Cycle::new(325),
        Unit::ClusterCores(0),
        EventKind::TcdmConflict,
        3,
    );
    t.end(
        Cycle::new(510),
        Unit::ClusterCores(0),
        EventKind::Compute,
        comp,
    );
    let out = t.begin(Cycle::new(512), Unit::ClusterDma(0), EventKind::DmaOut);
    t.end(Cycle::new(575), Unit::ClusterDma(0), EventKind::DmaOut, out);
    t.instant(
        Cycle::new(590),
        Unit::CreditUnit,
        EventKind::CreditReturn,
        0,
    );
    t.instant(Cycle::new(600), Unit::Host, EventKind::Irq, 0);
    // A scheduler-side track exercises the second pid group.
    t.instant(Cycle::new(0), Unit::SchedHost, EventKind::JobArrive, 7);
    let off = t.begin(Cycle::new(5), Unit::Partition(0), EventKind::Offload);
    t.end(Cycle::new(610), Unit::Partition(0), EventKind::Offload, off);
    t
}

#[test]
fn exporter_output_matches_golden_file() {
    let json = chrome_trace_json(&golden_input());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/offload.trace.json"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        json, golden,
        "Chrome trace output drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_passes_schema_validation() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/offload.trace.json"
    );
    let golden = std::fs::read_to_string(path).expect("golden file present");
    let summary = validate_chrome_trace(&golden).expect("golden trace is schema-valid");
    assert_eq!(summary.spans, 6);
    assert!(summary.tracks >= 7);
    assert!(summary.events > summary.spans * 2);
}
