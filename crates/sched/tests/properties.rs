//! Property tests for the scheduler: allocator partition invariants and
//! end-to-end determinism.

use proptest::prelude::*;

use mpsoc_noc::ClusterMask;
use mpsoc_sched::{
    Allocator, ArrivalPattern, Engine, FifoFirstFit, ModelGuided, ModelTable, ServiceBackend,
    Workload,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random carve/release interleavings never violate the partition
    /// invariants: outstanding partitions are pairwise disjoint, stay
    /// within `0..total`, and with the free set exactly tile the
    /// machine.
    #[test]
    fn allocator_partitions_stay_disjoint(
        total in 1usize..=64,
        ops in prop::collection::vec((any::<u8>(), any::<u8>()), 1..120),
    ) {
        let mut allocator = Allocator::new(total);
        let mut outstanding: Vec<ClusterMask> = Vec::new();
        for (op, arg) in ops {
            if op % 3 == 0 && !outstanding.is_empty() {
                // Release one outstanding partition.
                let mask = outstanding.remove(arg as usize % outstanding.len());
                allocator.release(mask);
            } else {
                // Carve 1..=total clusters; failure is only legal when
                // the request exceeds the free count.
                let m = 1 + arg as usize % total;
                let free_before = allocator.free_count();
                match allocator.carve(m) {
                    Some(mask) => {
                        prop_assert_eq!(mask.count(), m);
                        prop_assert!(mask.highest().unwrap() < total);
                        for held in &outstanding {
                            prop_assert!(mask.intersection(*held).is_empty());
                        }
                        outstanding.push(mask);
                    }
                    None => prop_assert!(m > free_before),
                }
            }
            // Free ∪ outstanding tiles the machine exactly.
            let mut union = allocator.free_mask();
            let mut held_total = 0;
            for held in &outstanding {
                prop_assert!(held.intersection(allocator.free_mask()).is_empty());
                union = union.union(*held);
                held_total += held.count();
            }
            prop_assert_eq!(union, ClusterMask::first(total));
            prop_assert_eq!(held_total + allocator.free_count(), total);
        }
    }

    /// The engine never double-books: every admitted job completes, and
    /// simultaneously-running offloads (overlapping time intervals)
    /// always held disjoint partitions of the machine.
    #[test]
    fn engine_never_overbooks_clusters(seed in any::<u64>(), clusters in 1usize..=32) {
        let table = ModelTable::paper_defaults();
        let workload = Workload::balanced(
            30,
            seed,
            ArrivalPattern::Poisson { mean_interarrival: 800.0 },
        );
        let jobs = workload.generate(&table);
        let mut engine = Engine::new(table.clone(), clusters, ServiceBackend::analytic(table));
        let report = engine.run(&jobs, &mut ModelGuided).expect("run");
        prop_assert_eq!(report.records.len(), jobs.len());
        let running: Vec<(u64, u64, usize)> = report
            .records
            .iter()
            .filter_map(|r| match r.outcome {
                mpsoc_sched::JobOutcome::Offloaded { start, finish, m } => {
                    Some((start, finish, m))
                }
                _ => None,
            })
            .collect();
        // Peak concurrency occurs at some interval start: at every
        // start, the partitions of all intervals containing it must fit
        // the machine.
        for &(s1, f1, m1) in &running {
            prop_assert!(f1 > s1);
            prop_assert!(m1 >= 1 && m1 <= clusters);
            let concurrent: usize = running
                .iter()
                .filter(|&&(s2, f2, _)| s2 <= s1 && s1 < f2)
                .map(|&(_, _, m2)| m2)
                .sum();
            prop_assert!(
                concurrent <= clusters,
                "{} clusters busy on a {}-cluster machine", concurrent, clusters
            );
        }
    }
}

/// Two runs with the same seed serialize to byte-identical JSON — the
/// acceptance bar for scheduler determinism.
#[test]
fn identical_seeds_give_byte_identical_reports() {
    let run = || {
        let table = ModelTable::paper_defaults();
        let workload = Workload::balanced(
            60,
            0xFEED,
            ArrivalPattern::Bursty {
                burst: 6,
                mean_gap: 4000.0,
            },
        );
        let jobs = workload.generate(&table);
        let mut engine = Engine::new(table.clone(), 16, ServiceBackend::analytic(table));
        let report = engine.run(&jobs, &mut ModelGuided).expect("run");
        serde_json::to_string_pretty(&report).expect("serialize")
    };
    assert_eq!(run(), run());
}

/// Same determinism bar for the measured backend: the SoC simulator
/// itself is deterministic, so two fresh engines agree byte-for-byte.
#[test]
fn measured_backend_is_deterministic_too() {
    let run = || {
        let table = ModelTable::paper_defaults();
        let workload = Workload::balanced(
            12,
            0xACE,
            ArrivalPattern::Poisson {
                mean_interarrival: 1500.0,
            },
        );
        let jobs = workload.generate(&table);
        let offloader =
            mpsoc_offload::Offloader::new(mpsoc_soc::SocConfig::with_clusters(8)).expect("soc");
        let mut engine = Engine::new(table, 8, ServiceBackend::measured(offloader, 0xACE));
        let report = engine.run(&jobs, &mut FifoFirstFit).expect("run");
        serde_json::to_string_pretty(&report).expect("serialize")
    };
    assert_eq!(run(), run());
}
